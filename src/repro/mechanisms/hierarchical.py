"""The hierarchical mechanism of Hay et al. [10].

The mechanism measures the interval tree over a one-dimensional domain with
Laplace noise calibrated to the tree height (every record contributes to one
interval per level).  A range query is then answered by decomposing it into
``O(branching · log k)`` disjoint tree intervals and summing their noisy
counts, giving ``O(log^3 k / ε²)`` error per range query — comparable to
Privelet.  The paper cites it both as a building block and as the source of
the consistency idea reused by the Blowfish mechanisms (Section 5.4.2).

This implementation follows the basic mechanism: noisy tree counts plus
greedy query decomposition; the (optional) least-squares consistency step
lives in :mod:`repro.postprocess.hierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.rng import RandomState
from ..exceptions import MechanismError
from .base import MatrixLike, Mechanism, laplace_noise


@dataclass(frozen=True)
class TreeNode:
    """One node (interval) of the hierarchical decomposition."""

    lower: int
    upper: int  # exclusive
    level: int
    index: int  # position in the measurement vector

    @property
    def width(self) -> int:
        """Number of leaf cells covered by the node."""
        return self.upper - self.lower


def build_interval_tree(size: int, branching: int = 2) -> List[TreeNode]:
    """Enumerate the nodes of a ``branching``-ary interval tree over ``size`` cells."""
    if size <= 0:
        raise MechanismError(f"size must be positive, got {size}")
    if branching < 2:
        raise MechanismError(f"branching must be at least 2, got {branching}")
    nodes: List[TreeNode] = []
    frontier: List[Tuple[int, int]] = [(0, size)]
    level = 0
    index = 0
    while frontier:
        next_frontier: List[Tuple[int, int]] = []
        for lower, upper in frontier:
            nodes.append(TreeNode(lower=lower, upper=upper, level=level, index=index))
            index += 1
            if upper - lower > 1:
                width = upper - lower
                step = int(np.ceil(width / branching))
                start = lower
                while start < upper:
                    end = min(start + step, upper)
                    next_frontier.append((start, end))
                    start = end
        frontier = next_frontier
        level += 1
    return nodes


class HierarchicalMechanism(Mechanism):
    """Noisy interval-tree counts with greedy range-query decomposition.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    size:
        Domain size ``k``.
    branching:
        Tree fan-out (2 reproduces the classic H2 mechanism).
    sensitivity_multiplier:
        1 for unbounded DP (default), 2 for bounded DP, or the policy-specific
        multiplier when run on transformed instances.

    Notes
    -----
    Only 0/1 (counting) workload rows whose support is a contiguous range are
    answered through the tree decomposition; any other row falls back to the
    exact dot product with the noisy leaf estimates, which is still private
    because the leaves are part of the measured tree.
    """

    name = "Hierarchical"
    data_dependent = False

    def __init__(
        self,
        epsilon: float,
        size: int,
        branching: int = 2,
        sensitivity_multiplier: float = 1.0,
    ) -> None:
        super().__init__(epsilon)
        self._size = int(size)
        self._branching = int(branching)
        if sensitivity_multiplier <= 0:
            raise MechanismError(
                f"sensitivity_multiplier must be positive, got {sensitivity_multiplier}"
            )
        self._multiplier = float(sensitivity_multiplier)
        self._nodes = build_interval_tree(self._size, self._branching)
        self._levels = 1 + max(node.level for node in self._nodes)
        self._children: Dict[int, List[int]] = self._link_children()

    def _link_children(self) -> Dict[int, List[int]]:
        children: Dict[int, List[int]] = {node.index: [] for node in self._nodes}
        by_level: Dict[int, List[TreeNode]] = {}
        for node in self._nodes:
            by_level.setdefault(node.level, []).append(node)
        for level, nodes in by_level.items():
            for node in nodes:
                for candidate in by_level.get(level + 1, []):
                    if node.lower <= candidate.lower and candidate.upper <= node.upper:
                        children[node.index].append(candidate.index)
        return children

    # ------------------------------------------------------------- properties
    @property
    def size(self) -> int:
        """Domain size ``k``."""
        return self._size

    @property
    def nodes(self) -> List[TreeNode]:
        """All tree nodes in measurement order."""
        return list(self._nodes)

    @property
    def sensitivity(self) -> float:
        """Noise-calibration sensitivity: ``multiplier * number_of_levels``."""
        return self._multiplier * float(self._levels)

    # ------------------------------------------------------------ measurement
    def measure(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        """Noisy counts of every tree node (a single ε-DP release)."""
        vector = np.asarray(vector, dtype=np.float64).ravel()
        if vector.shape[0] != self._size:
            raise MechanismError(
                f"Expected a vector with {self._size} cells, got {vector.shape[0]}"
            )
        prefix = np.concatenate([[0.0], np.cumsum(vector)])
        true_counts = np.array(
            [prefix[node.upper] - prefix[node.lower] for node in self._nodes]
        )
        scale = self.sensitivity / self.epsilon
        return true_counts + laplace_noise(scale, true_counts.shape[0], random_state)

    def decompose_range(self, lower: int, upper: int) -> List[int]:
        """Greedy decomposition of the half-open range ``[lower, upper)`` into node indices."""
        if not 0 <= lower <= upper <= self._size:
            raise MechanismError(f"Invalid range [{lower}, {upper}) for size {self._size}")
        result: List[int] = []

        def visit(node_index: int) -> None:
            node = self._nodes[node_index]
            if node.upper <= lower or node.lower >= upper:
                return
            if lower <= node.lower and node.upper <= upper:
                result.append(node_index)
                return
            for child in self._children[node_index]:
                visit(child)

        visit(0)
        return result

    # ------------------------------------------------------------------- API
    def answer_matrix(
        self,
        matrix: MatrixLike,
        vector: np.ndarray,
        random_state: RandomState = None,
    ) -> np.ndarray:
        noisy_counts = self.measure(vector, random_state)
        leaf_estimates = self._leaf_estimates(noisy_counts)
        dense = (
            np.asarray(matrix.todense()) if sp.issparse(matrix) else np.asarray(matrix)
        )
        answers = np.zeros(dense.shape[0], dtype=np.float64)
        for query_index in range(dense.shape[0]):
            row = dense[query_index]
            answers[query_index] = self._answer_row(row, noisy_counts, leaf_estimates)
        return answers

    def _answer_row(
        self, row: np.ndarray, noisy_counts: np.ndarray, leaf_estimates: np.ndarray
    ) -> float:
        support = np.nonzero(row)[0]
        is_contiguous_counting = (
            support.size > 0
            and np.all(np.isclose(row[support], 1.0))
            and support[-1] - support[0] + 1 == support.size
        )
        if is_contiguous_counting:
            node_indices = self.decompose_range(int(support[0]), int(support[-1]) + 1)
            return float(sum(noisy_counts[i] for i in node_indices))
        return float(row @ leaf_estimates)

    def _leaf_estimates(self, noisy_counts: np.ndarray) -> np.ndarray:
        estimates = np.zeros(self._size, dtype=np.float64)
        for node in self._nodes:
            if node.width == 1:
                estimates[node.lower] = noisy_counts[node.index]
        return estimates
