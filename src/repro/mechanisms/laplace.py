"""The Laplace mechanism (Dwork et al., Theorem 2.1 of the paper).

Two flavours are provided:

* :class:`LaplaceMechanism` — perturbs the workload answers directly with
  noise calibrated to the workload's L1 sensitivity;
* :class:`LaplaceHistogram` — perturbs every histogram cell (the identity
  strategy) and answers any workload from the noisy histogram.  This is the
  data-independent baseline the paper calls simply "Laplace" for the Hist
  workload.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..core.rng import RandomState
from ..core.sensitivity import bounded_sensitivity, unbounded_sensitivity
from ..core.workload import Workload
from .base import HistogramMechanism, MatrixLike, Mechanism, NoiseModel, laplace_noise


class LaplaceMechanism(Mechanism):
    """Answer a workload by adding Laplace noise calibrated to its sensitivity.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    sensitivity:
        Optional explicit L1 sensitivity.  When omitted it is computed from
        the workload matrix at answering time: the unbounded-DP sensitivity
        (max column L1 norm) by default, or the bounded-DP sensitivity when
        ``bounded=True``.
    bounded:
        Calibrate to bounded (replace-one) neighbors instead of unbounded
        (add/remove-one) neighbors.

    Notes
    -----
    ``ERROR = 2 q Δ² / ε²`` (Theorem 2.1).  Because the noise does not depend
    on the data, this mechanism is data independent and therefore transfers to
    any Blowfish policy through Theorem 4.1 once the sensitivity is replaced
    by the policy-specific sensitivity.
    """

    name = "Laplace"
    data_dependent = False

    def __init__(
        self,
        epsilon: float,
        sensitivity: Optional[float] = None,
        bounded: bool = False,
    ) -> None:
        super().__init__(epsilon)
        if sensitivity is not None and sensitivity < 0:
            raise ValueError(f"sensitivity must be non-negative, got {sensitivity}")
        self._sensitivity = None if sensitivity is None else float(sensitivity)
        self._bounded = bool(bounded)

    def sensitivity_for(self, matrix: MatrixLike) -> float:
        """Sensitivity used for a given workload matrix."""
        if self._sensitivity is not None:
            return self._sensitivity
        if self._bounded:
            return bounded_sensitivity(matrix)
        return unbounded_sensitivity(matrix)

    def answer_matrix(
        self,
        matrix: MatrixLike,
        vector: np.ndarray,
        random_state: RandomState = None,
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        true_answers = (
            np.asarray(matrix @ vector).ravel()
            if sp.issparse(matrix)
            else np.asarray(matrix, dtype=np.float64) @ vector
        )
        scale = self.sensitivity_for(matrix) / self.epsilon
        return true_answers + laplace_noise(scale, true_answers.shape[0], random_state)

    def expected_error_per_query(self, matrix: MatrixLike) -> float:
        """Expected per-query squared error ``2 Δ² / ε²``."""
        scale = self.sensitivity_for(matrix) / self.epsilon
        return 2.0 * scale**2

    def noise_model(self, workload: Workload) -> NoiseModel:
        """I.i.d. per-row Laplace noise: a diagonal factor basis."""
        std = np.sqrt(2.0) * self.sensitivity_for(workload.matrix) / self.epsilon
        stds = np.full(workload.num_queries, std)
        return NoiseModel(stds=stds, basis=sp.diags(stds, format="csr"))


class LaplaceHistogram(HistogramMechanism):
    """Perturb each histogram cell with Laplace noise (the identity strategy).

    Parameters
    ----------
    epsilon:
        Privacy budget.
    sensitivity:
        L1 sensitivity of the histogram map.  The default of 1 is correct for
        unbounded DP; pass 2 for bounded DP, or the policy-specific value when
        running on a transformed instance.
    """

    name = "LaplaceHistogram"
    data_dependent = False

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        super().__init__(epsilon)
        if sensitivity < 0:
            raise ValueError(f"sensitivity must be non-negative, got {sensitivity}")
        self._sensitivity = float(sensitivity)

    @property
    def sensitivity(self) -> float:
        """Sensitivity used to scale the per-cell noise."""
        return self._sensitivity

    def estimate_vector(
        self, vector: np.ndarray, random_state: RandomState = None
    ) -> np.ndarray:
        vector = np.asarray(vector, dtype=np.float64).ravel()
        scale = self._sensitivity / self.epsilon
        return vector + laplace_noise(scale, vector.shape[0], random_state)

    def expected_error_per_cell(self) -> float:
        """Expected squared error per histogram cell ``2 Δ² / ε²``."""
        return 2.0 * (self._sensitivity / self.epsilon) ** 2

    def noise_std_per_cell(self, num_cells: int) -> np.ndarray:
        """Every cell carries Laplace(Δ/ε) noise: std ``√2 Δ / ε``."""
        return np.full(num_cells, np.sqrt(2.0) * self._sensitivity / self.epsilon)
