"""The exponential mechanism (McSherry–Talwar).

The paper uses the exponential mechanism in the proof of the negative result
(Theorem 4.4 / Appendix C): on a policy graph with no isometric L1 embedding,
an exponential mechanism whose score is the (negative) graph distance is
Blowfish private but cannot be re-expressed as a differentially private
mechanism on any transformed instance.  The library ships a general
implementation plus the specific graph-distance instantiation used by that
argument and by the tests.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core.rng import RandomState, ensure_rng
from ..exceptions import MechanismError
from ..policy.graph import PolicyGraph
from ..policy.metric import graph_distance_matrix
from .base import check_epsilon


class ExponentialMechanism:
    """Select one of finitely many candidates with probability ``∝ exp(ε·score/2Δ)``.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    candidates:
        The finite output range.
    score:
        ``score(database, candidate)`` — higher is better.
    score_sensitivity:
        The maximum change of the score between neighboring databases
        (whatever the neighbor notion being targeted is); the standard
        exponential-mechanism guarantee then follows.
    """

    name = "Exponential"
    data_dependent = True

    def __init__(
        self,
        epsilon: float,
        candidates: Sequence[object],
        score: Callable[[object, object], float],
        score_sensitivity: float,
    ) -> None:
        self._epsilon = check_epsilon(epsilon)
        if not candidates:
            raise MechanismError("The candidate set must be non-empty")
        if score_sensitivity <= 0:
            raise MechanismError(
                f"score_sensitivity must be positive, got {score_sensitivity}"
            )
        self._candidates = list(candidates)
        self._score = score
        self._score_sensitivity = float(score_sensitivity)

    @property
    def epsilon(self) -> float:
        """Privacy budget ``ε``."""
        return self._epsilon

    def probabilities(self, database: object) -> np.ndarray:
        """Output distribution over the candidates for a given database."""
        scores = np.array(
            [self._score(database, candidate) for candidate in self._candidates],
            dtype=np.float64,
        )
        logits = self._epsilon * scores / (2.0 * self._score_sensitivity)
        logits -= logits.max()
        weights = np.exp(logits)
        return weights / weights.sum()

    def sample(self, database: object, random_state: RandomState = None) -> object:
        """Sample one candidate according to the exponential-mechanism distribution."""
        rng = ensure_rng(random_state)
        probabilities = self.probabilities(database)
        index = rng.choice(len(self._candidates), p=probabilities)
        return self._candidates[int(index)]


def graph_distance_exponential_mechanism(
    policy: PolicyGraph, epsilon: float
) -> ExponentialMechanism:
    """The mechanism from the proof of Theorem 4.4.

    Databases are single domain values (singleton databases); the mechanism
    outputs a domain value ``y`` with probability proportional to
    ``exp(-ε · dist_G(x, y))``.  Because changing the input across one policy
    edge changes every distance by at most 1, the mechanism satisfies
    ``(ε, G)``-Blowfish privacy; its output probabilities *scale with the
    graph metric*, which is exactly what breaks any attempted L1 re-encoding
    on non-embeddable graphs (e.g. cycles).

    The score sensitivity is set to 1/2 so that the standard ``ε/(2Δ)``
    exponent equals the paper's ``-ε · dist``.
    """
    distances = graph_distance_matrix(policy)
    if not np.all(np.isfinite(distances)):
        raise MechanismError(
            "The graph-distance exponential mechanism requires a connected policy"
        )
    candidates = list(range(policy.domain.size))

    def score(database: object, candidate: object) -> float:
        return -float(distances[int(database), int(candidate)])

    return ExponentialMechanism(
        epsilon=epsilon,
        candidates=candidates,
        score=score,
        score_sensitivity=0.5,
    )
