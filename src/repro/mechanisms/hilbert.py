"""Hilbert curve ordering for two-dimensional domains.

DAWA is a one-dimensional algorithm; to apply it to two-dimensional histograms
(the Twitter grids of Section 6) the cells are linearised along a Hilbert
space-filling curve, which keeps spatially close cells close in the ordering
and therefore preserves the "smooth regions become long constant runs"
structure the data-aware partitioning exploits.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import MechanismError


def _rotate(n: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Rotate/flip a quadrant appropriately (standard Hilbert-curve helper)."""
    if ry == 0:
        if rx == 1:
            x = n - 1 - x
            y = n - 1 - y
        x, y = y, x
    return x, y


def hilbert_index(order: int, x: int, y: int) -> int:
    """Hilbert-curve index of cell ``(x, y)`` on a ``2^order x 2^order`` grid."""
    n = 1 << order
    if not (0 <= x < n and 0 <= y < n):
        raise MechanismError(f"Cell ({x}, {y}) outside the 2^{order} grid")
    rx = ry = 0
    d = 0
    s = n // 2
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        x, y = _rotate(s, x, y, rx, ry)
        s //= 2
    return d


def hilbert_order(shape: Tuple[int, int]) -> np.ndarray:
    """Permutation of flat (row-major) cell indices along a Hilbert curve.

    Works for any rectangular shape by embedding it in the smallest enclosing
    power-of-two square and keeping only the in-bounds cells, preserving the
    curve order.  Returns an array ``perm`` such that ``vector[perm]`` lists
    the cells in Hilbert order.
    """
    if len(shape) != 2:
        raise MechanismError("hilbert_order expects a 2-D shape")
    rows, cols = int(shape[0]), int(shape[1])
    if rows <= 0 or cols <= 0:
        raise MechanismError(f"Invalid shape {shape}")
    side = max(rows, cols)
    order = max(1, int(np.ceil(np.log2(side)))) if side > 1 else 0
    n = 1 << order
    keys = np.empty(rows * cols, dtype=np.int64)
    for r in range(rows):
        for c in range(cols):
            keys[r * cols + c] = hilbert_index(order, r, c) if order > 0 else 0
    return np.argsort(keys, kind="stable")


def ordering_for_shape(shape: Tuple[int, ...]) -> np.ndarray:
    """Best available linearisation for an arbitrary histogram shape.

    Two-dimensional shapes get the Hilbert ordering; anything else falls back
    to the identity (row-major) ordering.
    """
    size = int(np.prod(shape))
    if len(shape) == 2 and shape[0] > 1 and shape[1] > 1:
        return hilbert_order((int(shape[0]), int(shape[1])))
    return np.arange(size, dtype=np.int64)
