"""Least-squares inference over noisy linear measurements.

Several mechanisms release noisy answers ``y ≈ A x`` to a strategy ``A`` and
then infer a consistent estimate of ``x`` (or of a derived workload) by
ordinary least squares.  The matrix mechanism, the hierarchical mechanism with
consistency, and the Blowfish strategies that measure overlapping edge-ranges
all reduce to this primitive.  Post-processing never consumes privacy budget.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np
import scipy.linalg
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from scipy.sparse.csgraph import connected_components

from ..exceptions import ReproError


def least_squares_estimate(
    measurement_matrix: sp.spmatrix | np.ndarray,
    noisy_measurements: np.ndarray,
    regulariser: float = 0.0,
) -> np.ndarray:
    """Minimum-norm least-squares solution of ``A x ≈ y``.

    Parameters
    ----------
    measurement_matrix:
        The strategy ``A`` (``p x k``).
    noisy_measurements:
        The noisy answers ``y`` (length ``p``).
    regulariser:
        Optional Tikhonov damping; 0 gives the plain pseudo-inverse solution.
    """
    noisy_measurements = np.asarray(noisy_measurements, dtype=np.float64).ravel()
    if sp.issparse(measurement_matrix):
        matrix = sp.csr_matrix(measurement_matrix)
    else:
        matrix = sp.csr_matrix(np.asarray(measurement_matrix, dtype=np.float64))
    if matrix.shape[0] != noisy_measurements.shape[0]:
        raise ReproError(
            f"Measurement matrix has {matrix.shape[0]} rows but {noisy_measurements.shape[0]} "
            "measurements were provided"
        )
    result = spla.lsqr(
        matrix, noisy_measurements, damp=float(regulariser), atol=1e-12, btol=1e-12
    )
    return np.asarray(result[0]).ravel()


def weighted_least_squares_estimate(
    measurement_matrix: sp.spmatrix | np.ndarray,
    noisy_measurements: np.ndarray,
    variances: np.ndarray,
) -> np.ndarray:
    """*Weighted* least squares with per-measurement variances.

    Measurements taken with different noise scales (e.g. different ε shares)
    are weighted by inverse variance before solving.  The covariance model is
    **diagonal** — every measurement is treated as independent.  For
    measurements with correlated errors (shared noise draws), use
    :func:`generalised_least_squares_estimate`, which accepts a full
    covariance and degenerates to this solver when it is diagonal.
    """
    variances = np.asarray(variances, dtype=np.float64).ravel()
    noisy_measurements = np.asarray(noisy_measurements, dtype=np.float64).ravel()
    if noisy_measurements.size == 0:
        raise ReproError(
            "Cannot solve a weighted least squares over zero measurements: "
            "the measurement stack is empty"
        )
    if np.any(variances <= 0):
        raise ReproError("All measurement variances must be strictly positive")
    if variances.shape != noisy_measurements.shape:
        raise ReproError("variances must have one entry per measurement")
    weights = 1.0 / np.sqrt(variances)
    if sp.issparse(measurement_matrix):
        matrix = sp.csr_matrix(measurement_matrix)
    else:
        matrix = sp.csr_matrix(np.asarray(measurement_matrix, dtype=np.float64))
    scaled_matrix = sp.diags(weights) @ matrix
    scaled_measurements = weights * noisy_measurements
    result = spla.lsqr(scaled_matrix, scaled_measurements, atol=1e-12, btol=1e-12)
    return np.asarray(result[0]).ravel()


def generalised_least_squares_estimate(
    measurement_matrix: sp.spmatrix | np.ndarray,
    noisy_measurements: np.ndarray,
    covariance: Union[sp.spmatrix, np.ndarray],
) -> np.ndarray:
    """Generalised least squares under a full measurement covariance.

    Solves ``argmin_x (y - A x)ᵀ Σ⁻¹ (y - A x)`` — the variance-optimal
    (BLUE) estimate when measurement errors are correlated, e.g. noisy
    answers that share a mechanism noise draw.  ``Σ`` is whitened per
    *correlation component* (connected component of its sparsity graph):
    uncorrelated rows are simply scaled by their inverse standard deviation,
    correlated blocks go through a dense Cholesky factor, and the whitened
    system is solved with the same LSQR configuration as
    :func:`weighted_least_squares_estimate`.

    When ``Σ`` is exactly diagonal this routes through
    :func:`weighted_least_squares_estimate` with ``diag(Σ)``, so the two
    solvers are **bit-identical** on independent measurements — the
    degeneration the serving engine's consolidation relies on.

    A rank-deficient correlated block (fully redundant measurements, e.g.
    two workloads answered from one shared histogram estimate) is handled by
    an escalating diagonal ridge before failing with :class:`ReproError`.
    """
    noisy_measurements = np.asarray(noisy_measurements, dtype=np.float64).ravel()
    if noisy_measurements.size == 0:
        raise ReproError(
            "Cannot solve a generalised least squares over zero measurements: "
            "the measurement stack is empty"
        )
    if sp.issparse(measurement_matrix):
        matrix = sp.csr_matrix(measurement_matrix)
    else:
        matrix = sp.csr_matrix(np.asarray(measurement_matrix, dtype=np.float64))
    if matrix.shape[0] != noisy_measurements.shape[0]:
        raise ReproError(
            f"Measurement matrix has {matrix.shape[0]} rows but "
            f"{noisy_measurements.shape[0]} measurements were provided"
        )
    if sp.issparse(covariance):
        cov = sp.csr_matrix(covariance)
    else:
        cov = sp.csr_matrix(np.asarray(covariance, dtype=np.float64))
    if cov.shape != (noisy_measurements.shape[0],) * 2:
        raise ReproError(
            f"Covariance has shape {cov.shape}; expected square of side "
            f"{noisy_measurements.shape[0]}"
        )
    diagonal = cov.diagonal()
    if np.any(diagonal <= 0) or not np.all(np.isfinite(diagonal)):
        raise ReproError("All measurement variances must be strictly positive")
    off_diagonal = cov - sp.diags(diagonal)
    off_diagonal.eliminate_zeros()
    if off_diagonal.nnz == 0:
        # Diagonal covariance: independent measurements.  Route through the
        # weighted solver so the two are bit-identical in this case.
        return weighted_least_squares_estimate(matrix, noisy_measurements, diagonal)

    whitener = _covariance_whitener(cov, diagonal)
    result = spla.lsqr(
        whitener @ matrix, whitener @ noisy_measurements, atol=1e-12, btol=1e-12
    )
    return np.asarray(result[0]).ravel()


def _covariance_whitener(cov: sp.csr_matrix, diagonal: np.ndarray) -> sp.csr_matrix:
    """Block-diagonal ``L⁻¹`` with ``Σ = L Lᵀ`` per correlation component."""
    _, labels = connected_components(cov, directed=False)
    order = np.argsort(labels, kind="stable")
    boundaries = np.flatnonzero(np.diff(labels[order])) + 1
    rows: list = []
    cols: list = []
    data: list = []
    for component in np.split(order, boundaries):
        if component.size == 1:
            index = int(component[0])
            rows.append(np.array([index]))
            cols.append(np.array([index]))
            data.append(np.array([1.0 / np.sqrt(diagonal[index])]))
            continue
        block = np.asarray(cov[np.ix_(component, component)].todense())
        inverse_factor = _inverse_cholesky(block)
        grid_rows, grid_cols = np.meshgrid(component, component, indexing="ij")
        rows.append(grid_rows.ravel())
        cols.append(grid_cols.ravel())
        data.append(inverse_factor.ravel())
    size = cov.shape[0]
    return sp.csr_matrix(
        (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
        shape=(size, size),
    )


def _inverse_cholesky(block: np.ndarray) -> np.ndarray:
    """``L⁻¹`` of one dense covariance block, ridging rank deficiency away.

    Fully redundant correlated measurements (two workloads answered from one
    shared noisy histogram) make the block exactly singular; an escalating
    relative ridge keeps the whitening defined while perturbing well-posed
    blocks by at most one part in 10¹².
    """
    scale = float(np.max(np.abs(np.diag(block)))) or 1.0
    for ridge in (0.0, 1e-12, 1e-9, 1e-6):
        try:
            factor = np.linalg.cholesky(block + ridge * scale * np.eye(block.shape[0]))
        except np.linalg.LinAlgError:
            continue
        return scipy.linalg.solve_triangular(
            factor, np.eye(block.shape[0]), lower=True
        )
    raise ReproError(
        "Measurement covariance is not positive definite (a correlated block "
        "failed Cholesky factorisation even after ridging)"
    )


def project_non_negative(values: np.ndarray) -> np.ndarray:
    """Clamp an estimated histogram at zero (counts cannot be negative)."""
    return np.maximum(np.asarray(values, dtype=np.float64), 0.0)


def round_to_integers(values: np.ndarray) -> np.ndarray:
    """Round an estimated histogram to integers (counts are integral)."""
    return np.rint(np.asarray(values, dtype=np.float64))


def rescale_to_total(values: np.ndarray, total: Optional[float]) -> np.ndarray:
    """Rescale a non-negative estimate so that it sums to a known total.

    Useful when the database size ``n`` is public (bounded policies), in which
    case matching it is free post-processing.
    """
    values = project_non_negative(values)
    if total is None:
        return values
    current = float(values.sum())
    if values.size == 0:
        return values
    # A vanishing (e.g. denormal) current total would make the ratio overflow;
    # treat it the same as an all-zero estimate and fall back to uniform.
    ratio = float(total) / current if current > 0 else np.inf
    if not np.isfinite(ratio):
        return np.full_like(values, float(total) / values.size)
    return values * ratio
