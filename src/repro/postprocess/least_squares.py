"""Least-squares inference over noisy linear measurements.

Several mechanisms release noisy answers ``y ≈ A x`` to a strategy ``A`` and
then infer a consistent estimate of ``x`` (or of a derived workload) by
ordinary least squares.  The matrix mechanism, the hierarchical mechanism with
consistency, and the Blowfish strategies that measure overlapping edge-ranges
all reduce to this primitive.  Post-processing never consumes privacy budget.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..exceptions import ReproError


def least_squares_estimate(
    measurement_matrix: sp.spmatrix | np.ndarray,
    noisy_measurements: np.ndarray,
    regulariser: float = 0.0,
) -> np.ndarray:
    """Minimum-norm least-squares solution of ``A x ≈ y``.

    Parameters
    ----------
    measurement_matrix:
        The strategy ``A`` (``p x k``).
    noisy_measurements:
        The noisy answers ``y`` (length ``p``).
    regulariser:
        Optional Tikhonov damping; 0 gives the plain pseudo-inverse solution.
    """
    noisy_measurements = np.asarray(noisy_measurements, dtype=np.float64).ravel()
    if sp.issparse(measurement_matrix):
        matrix = sp.csr_matrix(measurement_matrix)
    else:
        matrix = sp.csr_matrix(np.asarray(measurement_matrix, dtype=np.float64))
    if matrix.shape[0] != noisy_measurements.shape[0]:
        raise ReproError(
            f"Measurement matrix has {matrix.shape[0]} rows but {noisy_measurements.shape[0]} "
            "measurements were provided"
        )
    result = spla.lsqr(
        matrix, noisy_measurements, damp=float(regulariser), atol=1e-12, btol=1e-12
    )
    return np.asarray(result[0]).ravel()


def weighted_least_squares_estimate(
    measurement_matrix: sp.spmatrix | np.ndarray,
    noisy_measurements: np.ndarray,
    variances: np.ndarray,
) -> np.ndarray:
    """Generalised least squares with per-measurement variances.

    Measurements taken with different noise scales (e.g. different ε shares)
    should be weighted by inverse variance before solving.
    """
    variances = np.asarray(variances, dtype=np.float64).ravel()
    noisy_measurements = np.asarray(noisy_measurements, dtype=np.float64).ravel()
    if np.any(variances <= 0):
        raise ReproError("All measurement variances must be strictly positive")
    if variances.shape != noisy_measurements.shape:
        raise ReproError("variances must have one entry per measurement")
    weights = 1.0 / np.sqrt(variances)
    if sp.issparse(measurement_matrix):
        matrix = sp.csr_matrix(measurement_matrix)
    else:
        matrix = sp.csr_matrix(np.asarray(measurement_matrix, dtype=np.float64))
    scaled_matrix = sp.diags(weights) @ matrix
    scaled_measurements = weights * noisy_measurements
    result = spla.lsqr(scaled_matrix, scaled_measurements, atol=1e-12, btol=1e-12)
    return np.asarray(result[0]).ravel()


def project_non_negative(values: np.ndarray) -> np.ndarray:
    """Clamp an estimated histogram at zero (counts cannot be negative)."""
    return np.maximum(np.asarray(values, dtype=np.float64), 0.0)


def round_to_integers(values: np.ndarray) -> np.ndarray:
    """Round an estimated histogram to integers (counts are integral)."""
    return np.rint(np.asarray(values, dtype=np.float64))


def rescale_to_total(values: np.ndarray, total: Optional[float]) -> np.ndarray:
    """Rescale a non-negative estimate so that it sums to a known total.

    Useful when the database size ``n`` is public (bounded policies), in which
    case matching it is free post-processing.
    """
    values = project_non_negative(values)
    if total is None:
        return values
    current = float(values.sum())
    if values.size == 0:
        return values
    # A vanishing (e.g. denormal) current total would make the ratio overflow;
    # treat it the same as an all-zero estimate and fall back to uniform.
    ratio = float(total) / current if current > 0 else np.inf
    if not np.isfinite(ratio):
        return np.full_like(values, float(total) / values.size)
    return values * ratio
