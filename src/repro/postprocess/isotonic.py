"""Isotonic (monotone) consistency via the pool-adjacent-violators algorithm.

Section 5.4.2 of the paper observes that when the policy is the line graph,
the transformed database ``x_G`` is the vector of prefix sums and is therefore
*non-decreasing*.  Projecting the noisy estimate onto the monotone cone (the
"ConsistentEst" post-processing, following Hay et al. [10]) never increases
the L2 error and collapses it on sparse data, where many prefix sums are
equal.  The projection is computed with the classic pool-adjacent-violators
algorithm (PAVA), which runs in linear time.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ReproError


def isotonic_regression(
    values: np.ndarray, weights: Optional[np.ndarray] = None, increasing: bool = True
) -> np.ndarray:
    """Weighted L2 projection of ``values`` onto the monotone cone.

    Parameters
    ----------
    values:
        The noisy sequence to make monotone.
    weights:
        Optional positive weights (all ones by default).
    increasing:
        Project onto non-decreasing sequences (default) or non-increasing
        ones.

    Returns
    -------
    numpy.ndarray
        The closest (weighted L2) monotone sequence.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return values.copy()
    if weights is None:
        weights = np.ones_like(values)
    else:
        weights = np.asarray(weights, dtype=np.float64).ravel()
        if weights.shape != values.shape:
            raise ReproError("weights must have the same shape as values")
        if np.any(weights <= 0):
            raise ReproError("weights must be strictly positive")

    if not increasing:
        return isotonic_regression(values[::-1], weights[::-1], increasing=True)[::-1]

    # Pool adjacent violators: maintain a stack of blocks (mean, weight, count).
    block_means: list[float] = []
    block_weights: list[float] = []
    block_counts: list[int] = []
    for value, weight in zip(values, weights):
        block_means.append(float(value))
        block_weights.append(float(weight))
        block_counts.append(1)
        while len(block_means) > 1 and block_means[-2] > block_means[-1]:
            merged_weight = block_weights[-2] + block_weights[-1]
            merged_mean = (
                block_means[-2] * block_weights[-2] + block_means[-1] * block_weights[-1]
            ) / merged_weight
            merged_count = block_counts[-2] + block_counts[-1]
            for stack in (block_means, block_weights, block_counts):
                stack.pop()
                stack.pop()
            block_means.append(merged_mean)
            block_weights.append(merged_weight)
            block_counts.append(merged_count)

    result = np.empty_like(values)
    position = 0
    for mean, count in zip(block_means, block_counts):
        result[position : position + count] = mean
        position += count
    return result


def consistent_prefix_sums(
    noisy_prefix_sums: np.ndarray,
    total: Optional[float] = None,
    non_negative: bool = True,
) -> np.ndarray:
    """Post-process noisy prefix sums into a consistent, monotone estimate.

    This is the "ConsistentEst" step used by the Blowfish mechanisms on line
    (and line-spanner) policies:

    1. project onto non-decreasing sequences (PAVA);
    2. optionally clamp below at 0 (counts cannot be negative);
    3. optionally clamp above at the publicly known database size ``total``.
    """
    estimate = isotonic_regression(noisy_prefix_sums, increasing=True)
    if non_negative:
        estimate = np.maximum(estimate, 0.0)
    if total is not None:
        estimate = np.minimum(estimate, float(total))
        # Clamping can only break monotonicity at the ends, where min/max with a
        # constant preserves order, so the estimate is still non-decreasing.
    return estimate


def distinct_block_count(values: np.ndarray, tolerance: float = 1e-9) -> int:
    """Number of constant blocks in a (monotone) sequence.

    Hay et al.'s analysis bounds the post-consistency error by the number of
    *distinct* values in the true sequence; for prefix sums that number equals
    the number of non-zero histogram cells (Section 5.4.2).  The helper is
    used by the tests and the ablation benchmarks.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        return 0
    changes = np.abs(np.diff(values)) > tolerance
    return int(changes.sum()) + 1
