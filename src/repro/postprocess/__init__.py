"""Free (budget-less) post-processing: consistency and least-squares inference."""

from .hierarchy import consistent_leaf_estimates, consistent_tree_counts
from .isotonic import consistent_prefix_sums, distinct_block_count, isotonic_regression
from .least_squares import (
    generalised_least_squares_estimate,
    least_squares_estimate,
    project_non_negative,
    rescale_to_total,
    round_to_integers,
    weighted_least_squares_estimate,
)

__all__ = [
    "consistent_leaf_estimates",
    "consistent_prefix_sums",
    "consistent_tree_counts",
    "distinct_block_count",
    "generalised_least_squares_estimate",
    "isotonic_regression",
    "least_squares_estimate",
    "project_non_negative",
    "rescale_to_total",
    "round_to_integers",
    "weighted_least_squares_estimate",
]
