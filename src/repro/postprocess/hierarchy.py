"""Hierarchical consistency (Hay et al. [10]).

The hierarchical mechanism measures every node of an interval tree; the true
counts satisfy the constraint "parent = sum of children".  Enforcing the
constraint by (weighted) least squares is free post-processing and reduces the
variance of every released count — this is the "boosting accuracy through
consistency" technique the paper builds on for its own consistency step
(Section 5.4.2).

The implementation here performs the exact two-pass algorithm of Hay et al.
for uniform noise across levels: an upward pass producing the best subtree
estimate of every node, then a downward pass distributing the residual between
a parent and its children.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..exceptions import ReproError
from ..mechanisms.hierarchical import TreeNode, build_interval_tree


def consistent_tree_counts(
    nodes: List[TreeNode], noisy_counts: np.ndarray, branching: int = 2
) -> np.ndarray:
    """Enforce parent-equals-sum-of-children consistency on noisy tree counts.

    Parameters
    ----------
    nodes:
        The tree nodes, as produced by
        :func:`repro.mechanisms.hierarchical.build_interval_tree`.
    noisy_counts:
        Noisy count per node (same order as ``nodes``).
    branching:
        Fan-out used to build the tree (needed for the averaging weights).

    Returns
    -------
    numpy.ndarray
        Consistent counts, one per node, in the same order.
    """
    noisy_counts = np.asarray(noisy_counts, dtype=np.float64).ravel()
    if noisy_counts.shape[0] != len(nodes):
        raise ReproError(
            f"Expected {len(nodes)} noisy counts, got {noisy_counts.shape[0]}"
        )

    children: Dict[int, List[int]] = {node.index: [] for node in nodes}
    by_level: Dict[int, List[TreeNode]] = {}
    for node in nodes:
        by_level.setdefault(node.level, []).append(node)
    max_level = max(by_level)
    for level in range(max_level):
        for node in by_level[level]:
            for candidate in by_level.get(level + 1, []):
                if node.lower <= candidate.lower and candidate.upper <= node.upper:
                    children[node.index].append(candidate.index)

    # Upward pass: z[v] = weighted average of the node's own noisy count and
    # the sum of its children's subtree estimates.
    z = noisy_counts.copy()
    height_of: Dict[int, int] = {}

    def subtree_height(index: int) -> int:
        if index in height_of:
            return height_of[index]
        kids = children[index]
        value = 0 if not kids else 1 + max(subtree_height(kid) for kid in kids)
        height_of[index] = value
        return value

    order_bottom_up = sorted(range(len(nodes)), key=lambda i: subtree_height(i))
    for index in order_bottom_up:
        kids = children[index]
        if not kids:
            continue
        height = subtree_height(index)
        weight = (branching**height - branching ** (height - 1)) / (branching**height - 1)
        z[index] = weight * noisy_counts[index] + (1.0 - weight) * sum(
            z[kid] for kid in kids
        )

    # Downward pass: distribute the residual between each parent and its children.
    consistent = z.copy()
    order_top_down = sorted(range(len(nodes)), key=lambda i: nodes[i].level)
    for index in order_top_down:
        kids = children[index]
        if not kids:
            continue
        residual = consistent[index] - sum(z[kid] for kid in kids)
        share = residual / len(kids)
        for kid in kids:
            consistent[kid] = z[kid] + share
    return consistent


def consistent_leaf_estimates(
    size: int, noisy_counts: np.ndarray, branching: int = 2
) -> np.ndarray:
    """Convenience wrapper returning only the (consistent) leaf counts."""
    nodes = build_interval_tree(size, branching)
    consistent = consistent_tree_counts(nodes, noisy_counts, branching)
    leaves = np.zeros(size, dtype=np.float64)
    for node in nodes:
        if node.width == 1:
            leaves[node.lower] = consistent[node.index]
    return leaves
