"""Policy metrics and L1 embeddings (Sections 3 and 4.3).

A policy graph induces a metric on databases: moving one record from value
``u`` to value ``v`` costs ``dist_G(u, v)`` (the shortest-path distance),
and the privacy guarantee degrades by ``exp(ε · dist_G(u, v))`` (Equation 1
of the paper).  Transformational equivalence for *all* mechanisms requires an
isometric embedding of this graph metric into L1 (Definition 4.2 and
Theorem 4.4); trees always admit one (the path-coordinate embedding built
from ``P_G``) whereas cycles do not.

This module provides the graph metric, the database metric, and stretch/
shrink diagnostics for candidate vertex embeddings.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import networkx as nx
import numpy as np

from ..core.database import Database
from ..exceptions import PolicyError
from .graph import PolicyGraph, Vertex, is_bottom
from .transform import PolicyTransform


def graph_distance_matrix(policy: PolicyGraph, include_bottom: bool = False) -> np.ndarray:
    """All-pairs shortest-path distances between domain vertices.

    Disconnected pairs get ``numpy.inf``.  Quadratic in the domain size, so
    intended for the small policies used in tests and in the lower-bound
    experiments.
    """
    graph = policy.to_networkx()
    size = policy.domain.size
    nodes = list(range(size)) + (["bottom"] if include_bottom and policy.has_bottom else [])
    index_of = {node: index for index, node in enumerate(nodes)}
    distances = np.full((len(nodes), len(nodes)), np.inf)
    np.fill_diagonal(distances, 0.0)
    for source, lengths in nx.all_pairs_shortest_path_length(graph):
        if source not in index_of:
            continue
        i = index_of[source]
        for target, length in lengths.items():
            if target in index_of:
                distances[i, index_of[target]] = float(length)
    return distances


def policy_distance(policy: PolicyGraph, u: Vertex, v: Vertex) -> float:
    """Shortest-path distance ``dist_G(u, v)`` between two domain values."""
    return policy.shortest_path_length(u, v)


def database_distance(
    policy: PolicyGraph, first: Database, second: Database
) -> float:
    """Policy-induced distance between two databases of equal size.

    The distance is the minimum total ``dist_G`` cost of moving records so
    that ``first`` becomes ``second`` — an earth-mover distance with the
    policy metric as ground cost, computed with a min-cost-flow.  Databases of
    different sizes are at infinite distance unless the policy has ``⊥``
    (records can then be added/removed at cost ``dist_G(u, ⊥)``), which the
    flow handles through a virtual node.
    """
    if first.domain != second.domain or first.domain != policy.domain:
        raise PolicyError("Databases and policy must share a domain")
    difference = second.counts - first.counts
    imbalance = float(difference.sum())
    if abs(imbalance) > 1e-9 and not policy.has_bottom:
        return float("inf")

    graph = policy.to_networkx().copy()
    flow_graph = nx.DiGraph()
    for u, v in graph.edges():
        flow_graph.add_edge(u, v, weight=1, capacity=np.iinfo(np.int64).max)
        flow_graph.add_edge(v, u, weight=1, capacity=np.iinfo(np.int64).max)
    demands: Dict[object, int] = {}
    for vertex in range(policy.domain.size):
        demand = int(round(difference[vertex]))
        if demand != 0:
            demands[vertex] = demand
    if policy.has_bottom:
        bottom_demand = -int(round(imbalance))
        if bottom_demand != 0:
            demands["bottom"] = demands.get("bottom", 0) + bottom_demand
    for node, demand in demands.items():
        if node not in flow_graph:
            flow_graph.add_node(node)
        flow_graph.nodes[node]["demand"] = demand
    for node in flow_graph.nodes:
        flow_graph.nodes[node].setdefault("demand", 0)
    try:
        cost = nx.min_cost_flow_cost(flow_graph)
    except nx.NetworkXUnfeasible:
        return float("inf")
    return float(cost)


def embedding_stretch_and_shrink(
    policy: PolicyGraph, embedding: Dict[int, np.ndarray]
) -> Tuple[float, float]:
    """Stretch and shrink of a vertex embedding into L1 (Definition 4.2).

    ``embedding`` maps every domain vertex to a real vector; the stretch is
    the maximum ratio of embedded L1 distance to graph distance over all
    vertex pairs, the shrink is the minimum such ratio.  An isometric
    embedding has stretch = shrink = 1.
    """
    size = policy.domain.size
    for vertex in range(size):
        if vertex not in embedding:
            raise PolicyError(f"Embedding is missing vertex {vertex}")
    distances = graph_distance_matrix(policy)
    stretch_value = 0.0
    shrink_value = np.inf
    for u in range(size):
        for v in range(u + 1, size):
            graph_d = distances[u, v]
            if not np.isfinite(graph_d) or graph_d == 0:
                continue
            embedded_d = float(np.abs(embedding[u] - embedding[v]).sum())
            ratio = embedded_d / graph_d
            stretch_value = max(stretch_value, ratio)
            shrink_value = min(shrink_value, ratio)
    if not np.isfinite(shrink_value):
        shrink_value = 1.0
    return stretch_value, shrink_value


def tree_embedding(policy: PolicyGraph) -> Dict[int, np.ndarray]:
    """The isometric L1 embedding induced by ``P_G`` when the policy is a tree.

    Vertex ``u`` is mapped to the transformed representation of the singleton
    database ``{u}``; for trees these vectors are 0/1 indicators of the
    root-path edges, and the L1 distance between two vertices' embeddings
    equals their tree distance.  This is the constructive half of the remark
    after Theorem 4.4 ("trees can be isometrically embedded into points in
    L1, and the P_G we construct is one such mapping").
    """
    transform = PolicyTransform(policy)
    if not transform.is_tree():
        raise PolicyError("tree_embedding requires a (reduced) tree policy")
    from .tree import TreeTransform  # local import to avoid a cycle

    tree = TreeTransform(transform)
    embedding: Dict[int, np.ndarray] = {}
    size = policy.domain.size
    for vertex in range(size):
        counts = np.zeros(size)
        counts[vertex] = 1.0
        embedding[vertex] = tree.transform_database(
            Database(domain=policy.domain, counts=counts)
        )
    return embedding


def is_isometrically_embeddable_as_tree(policy: PolicyGraph) -> bool:
    """Quick check: does the ``P_G`` tree embedding of this policy have stretch 1?

    Only meaningful for (reduced) tree policies; returns ``False`` for
    non-tree policies rather than attempting the (hard) general L1
    embeddability decision.
    """
    try:
        embedding = tree_embedding(policy)
    except PolicyError:
        return False
    stretch_value, shrink_value = embedding_stretch_and_shrink(policy, embedding)
    return bool(np.isclose(stretch_value, 1.0) and np.isclose(shrink_value, 1.0))


def cycle_embedding_lower_bound(num_vertices: int) -> float:
    """Best possible stretch of any deterministic tree embedding of a cycle.

    Dropping any edge of an ``n``-cycle leaves its endpoints at distance
    ``n - 1`` while they were at distance 1, so every spanning tree has
    stretch exactly ``n - 1`` (Section 4.3).  Returned as a float for direct
    comparison with :func:`stretch`-style quantities.
    """
    if num_vertices < 3:
        raise PolicyError("A cycle needs at least 3 vertices")
    return float(num_vertices - 1)
