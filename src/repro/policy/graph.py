"""Blowfish policy graphs.

A policy graph ``G = (V, E)`` (Definition 3.1) has one vertex per domain value
plus, optionally, the special vertex ``bottom`` (written ``⊥`` in the paper).
An edge ``(u, v)`` says an adversary must not distinguish a record with value
``u`` from one with value ``v``; an edge ``(u, ⊥)`` says presence of a record
with value ``u`` must not be distinguishable from its absence.

Design notes
------------
* Domain values are referred to by their *flat index* in the associated
  :class:`~repro.core.domain.Domain`; the sentinel :data:`BOTTOM` stands for
  ``⊥``.
* Edge order is significant: the columns of the transform matrix ``P_G``
  (Section 4.4) follow the order in which edges were added, so strategies that
  reason about "ranges of edges" (Section 5) can rely on it.
* Policy graphs are undirected and simple: parallel edges and self-loops are
  rejected, and ``(u, v)`` is the same edge as ``(v, u)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

import networkx as nx
import numpy as np

from ..core.domain import Domain
from ..exceptions import PolicyError


class _Bottom:
    """Singleton sentinel representing the special vertex ``⊥``."""

    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BOTTOM"

    def __reduce__(self):  # keep the singleton under pickling
        return (_Bottom, ())


#: The special vertex ``⊥`` (Definition 3.1).
BOTTOM = _Bottom()

Vertex = Union[int, _Bottom]
Edge = Tuple[Vertex, Vertex]


def is_bottom(vertex: Vertex) -> bool:
    """Return ``True`` when ``vertex`` is the special vertex ``⊥``."""
    return isinstance(vertex, _Bottom)


def _canonical_edge(u: Vertex, v: Vertex) -> Edge:
    """Return the canonical representation of an undirected edge.

    ``⊥`` is always placed second so that an edge incident on ``⊥`` reads
    ``(u, BOTTOM)``; between two domain vertices the smaller index comes
    first.
    """
    if is_bottom(u) and is_bottom(v):
        raise PolicyError("An edge cannot connect bottom to itself")
    if is_bottom(u):
        return (v, BOTTOM)
    if is_bottom(v):
        return (u, BOTTOM)
    a, b = int(u), int(v)
    if a == b:
        raise PolicyError(f"Self-loop on vertex {a} is not allowed")
    return (a, b) if a < b else (b, a)


class PolicyGraph:
    """A Blowfish policy graph over a :class:`~repro.core.domain.Domain`.

    Parameters
    ----------
    domain:
        The record domain; every non-``⊥`` vertex is a flat cell index.
    edges:
        Iterable of edges; each endpoint is a flat cell index or
        :data:`BOTTOM`.
    name:
        Human-readable policy name (e.g. ``"G^1_1024"``) used in reports.
    """

    def __init__(
        self,
        domain: Domain,
        edges: Iterable[Tuple[Vertex, Vertex]],
        name: str = "",
    ) -> None:
        self._domain = domain
        self._name = name
        self._edges: List[Edge] = []
        self._edge_set: Set[FrozenSet] = set()
        self._adjacency: Dict[Vertex, List[Tuple[Vertex, int]]] = {}
        self._has_bottom = False
        for u, v in edges:
            self._add_edge(u, v)

    # -------------------------------------------------------------- mutation
    def _add_edge(self, u: Vertex, v: Vertex) -> None:
        edge = _canonical_edge(u, v)
        a, b = edge
        for endpoint in (a, b):
            if not is_bottom(endpoint) and not 0 <= int(endpoint) < self._domain.size:
                raise PolicyError(
                    f"Vertex {endpoint} is outside the domain of size {self._domain.size}"
                )
        key = frozenset((("bottom",) if is_bottom(a) else a, ("bottom",) if is_bottom(b) else b))
        if key in self._edge_set:
            return  # ignore duplicate edges silently; the graph is simple
        index = len(self._edges)
        self._edges.append(edge)
        self._edge_set.add(key)
        self._adjacency.setdefault(a, []).append((b, index))
        self._adjacency.setdefault(b, []).append((a, index))
        if is_bottom(a) or is_bottom(b):
            self._has_bottom = True

    # ------------------------------------------------------------ properties
    @property
    def domain(self) -> Domain:
        """The record domain the policy protects."""
        return self._domain

    @property
    def name(self) -> str:
        """Human-readable policy name."""
        return self._name

    @property
    def edges(self) -> List[Edge]:
        """Edges in insertion order (this order defines the columns of ``P_G``)."""
        return list(self._edges)

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return len(self._edges)

    @property
    def has_bottom(self) -> bool:
        """``True`` when some edge is incident on ``⊥`` (the unbounded case)."""
        return self._has_bottom

    @property
    def num_vertices(self) -> int:
        """Number of vertices: domain size, plus one if ``⊥`` participates."""
        return self._domain.size + (1 if self._has_bottom else 0)

    # -------------------------------------------------------------- structure
    def neighbors(self, vertex: Vertex) -> List[Vertex]:
        """Vertices adjacent to ``vertex`` (possibly including ``⊥``)."""
        return [other for other, _ in self._adjacency.get(self._normalise(vertex), [])]

    def degree(self, vertex: Vertex) -> int:
        """Degree of ``vertex`` in the policy graph."""
        return len(self._adjacency.get(self._normalise(vertex), []))

    def incident_edges(self, vertex: Vertex) -> List[int]:
        """Indices of edges incident on ``vertex`` (into :attr:`edges`)."""
        return [index for _, index in self._adjacency.get(self._normalise(vertex), [])]

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        """Return ``True`` when the (undirected) edge ``(u, v)`` is in the policy."""
        a, b = _canonical_edge(u, v)
        key = frozenset((("bottom",) if is_bottom(a) else a, ("bottom",) if is_bottom(b) else b))
        return key in self._edge_set

    def edge_index(self, u: Vertex, v: Vertex) -> int:
        """Return the column index of edge ``(u, v)`` in ``P_G``."""
        target = _canonical_edge(u, v)
        for other, index in self._adjacency.get(target[0], []):
            canonical_other = _canonical_edge(target[0], other)
            if canonical_other == target:
                return index
        raise PolicyError(f"Edge {u}-{v} is not in the policy graph")

    def _normalise(self, vertex: Vertex) -> Vertex:
        if is_bottom(vertex):
            return BOTTOM
        return int(vertex)

    # ----------------------------------------------------------- connectivity
    def to_networkx(self) -> nx.Graph:
        """Return a :mod:`networkx` view of the policy graph.

        ``⊥`` appears as the string node ``"bottom"``.  All domain vertices
        are included even if isolated, so connectivity checks see the whole
        domain.
        """
        graph = nx.Graph()
        graph.add_nodes_from(range(self._domain.size))
        if self._has_bottom:
            graph.add_node("bottom")
        for u, v in self._edges:
            a = "bottom" if is_bottom(u) else int(u)
            b = "bottom" if is_bottom(v) else int(v)
            graph.add_edge(a, b)
        return graph

    def is_connected(self) -> bool:
        """``True`` when the policy graph (including ``⊥`` if present) is connected."""
        graph = self.to_networkx()
        if graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(graph)

    def is_tree(self) -> bool:
        """``True`` when the policy graph is a tree (connected and acyclic).

        Theorem 4.3 shows transformational equivalence for *every* mechanism
        exactly in this case.
        """
        graph = self.to_networkx()
        return nx.is_tree(graph)

    def connected_components(self) -> List[Set[Vertex]]:
        """Connected components as sets of vertices (``⊥`` appears as BOTTOM).

        Policies with several components disclose component membership exactly
        (Appendix E); the transform handles each component separately, and the
        engine's sharded scatter/gather path (:mod:`repro.engine.sharding`)
        assigns each component its own :class:`~repro.engine.DomainShard`.

        The decomposition is memoised on the instance (policies are immutable
        after construction — :meth:`with_edges` builds a new graph); callers
        receive fresh set copies, so mutating a returned component never
        corrupts the cache.
        """
        cached: Optional[List[Set[Vertex]]] = getattr(self, "_components_cache", None)
        if cached is None:
            graph = self.to_networkx()
            cached = []
            for component in nx.connected_components(graph):
                vertices: Set[Vertex] = set()
                for node in component:
                    vertices.add(BOTTOM if node == "bottom" else int(node))
                cached.append(vertices)
            self._components_cache = cached
        return [set(component) for component in cached]

    def component_labels(self) -> np.ndarray:
        """Label every domain cell with the index of its connected component.

        Returns a length-``domain.size`` integer array; two cells share a
        label exactly when the policy relates them (possibly through ``⊥`` —
        all ``(·, ⊥)`` edges meet at the single vertex ``⊥``, so their
        endpoints fall in one component).  Component indices follow the order
        of :meth:`connected_components`.  This is the partition the paper's
        parallel-composition rule applies to: mechanisms confined to the
        cells of distinct labels compose in parallel.
        """
        cached: Optional[np.ndarray] = getattr(self, "_component_labels_cache", None)
        if cached is None:
            cached = np.full(self._domain.size, -1, dtype=np.int64)
            for index, component in enumerate(self.connected_components()):
                for vertex in component:
                    if not is_bottom(vertex):
                        cached[int(vertex)] = index
            self._component_labels_cache = cached
        return cached.copy()

    def shortest_path_length(self, u: Vertex, v: Vertex) -> float:
        """Length of the shortest path between two vertices (``inf`` if disconnected).

        This is the policy metric ``dist_G`` of Section 3 ("Metric on
        databases"); the Blowfish guarantee between two databases that differ
        by moving one record from ``u`` to ``v`` degrades by a factor of
        ``exp(epsilon * dist_G(u, v))``.
        """
        graph = self.to_networkx()
        a = "bottom" if is_bottom(u) else int(u)
        b = "bottom" if is_bottom(v) else int(v)
        try:
            return float(nx.shortest_path_length(graph, a, b))
        except nx.NetworkXNoPath:
            return float("inf")

    def degree_histogram(self) -> Dict[int, int]:
        """Histogram of vertex degrees (useful for sanity checks in tests)."""
        counts: Dict[int, int] = {}
        graph = self.to_networkx()
        for _, degree in graph.degree():
            counts[degree] = counts.get(degree, 0) + 1
        return counts

    # ---------------------------------------------------------------- editing
    def with_edges(self, extra_edges: Iterable[Tuple[Vertex, Vertex]], name: str = "") -> "PolicyGraph":
        """Return a new policy graph with additional edges appended."""
        return PolicyGraph(
            domain=self._domain,
            edges=list(self._edges) + list(extra_edges),
            name=name or self._name,
        )

    def subgraph_with_edges(
        self, edges: Sequence[Tuple[Vertex, Vertex]], name: str = ""
    ) -> "PolicyGraph":
        """Return a policy graph over the same domain with exactly ``edges``."""
        return PolicyGraph(domain=self._domain, edges=edges, name=name or self._name)

    # ----------------------------------------------------------------- dunder
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" name={self._name!r}" if self._name else ""
        return (
            f"PolicyGraph(domain={self._domain.shape}, edges={self.num_edges}, "
            f"bottom={self._has_bottom}{label})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PolicyGraph):
            return NotImplemented
        return (
            self._domain == other._domain
            and self._edge_set == other._edge_set
            and self._has_bottom == other._has_bottom
        )

    def __hash__(self) -> int:
        return hash((self._domain, frozenset(self._edge_set)))


def neighboring_databases(
    policy: PolicyGraph, x: np.ndarray, edge: Edge
) -> Tuple[np.ndarray, np.ndarray]:
    """Return a pair of Blowfish-neighboring histogram vectors across ``edge``.

    Starting from histogram ``x`` (which must have at least one record at the
    edge's first endpoint, unless that endpoint is ``⊥``), the second database
    moves one record across the edge:

    * ``(u, v)`` with both in the domain — one record changes value from ``u``
      to ``v`` (Definition 3.2, first bullet);
    * ``(u, ⊥)`` — one record with value ``u`` is removed (second bullet).
    """
    x = np.asarray(x, dtype=np.float64).copy()
    u, v = edge
    if is_bottom(u):
        u, v = v, u
    if is_bottom(u):
        raise PolicyError("Edge must have at least one domain endpoint")
    u = int(u)
    if x[u] < 1:
        raise PolicyError(
            f"Histogram has no record at vertex {u}; cannot form a neighbor across {edge}"
        )
    y = x.copy()
    y[u] -= 1.0
    if not is_bottom(v):
        y[int(v)] += 1.0
    return x, y
