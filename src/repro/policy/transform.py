"""The policy transform ``P_G`` and transformational equivalence (Section 4).

Given a policy graph ``G`` over a domain of size ``k`` the paper constructs a
matrix ``P_G`` with one row per (kept) domain value and one column per policy
edge (Section 4.4).  ``P_G`` turns the Blowfish instance ``(W, x)`` into the
differential-privacy instance ``(W_G, x_G) = (W P_G, P_G^{-1} x)`` with the
same answers: ``W x = W_G x_G`` (plus a public offset in the bounded case).

Three cases are handled, mirroring the paper:

* **Case I** — the policy contains edges to ``⊥``: ``P_G`` is built directly,
  one signed-indicator column per edge.
* **Case II** — the policy has no ``⊥`` (bounded policies such as the line and
  grid graphs): one vertex per connected component is *removed*; its edges are
  rewired to ``⊥`` and queries touching it are rewritten in terms of the
  (publicly known) component total, Lemma 4.10.
* **Case III** — disconnected policies (Appendix E): Case II is applied to
  every component that does not already reach ``⊥``.

The class below packages the construction together with the workload /
database transforms, the policy-specific sensitivity (Definition 4.1), and the
answer reconstruction used by every Blowfish mechanism in
:mod:`repro.blowfish`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from ..core.database import Database
from ..core.sensitivity import unbounded_sensitivity
from ..core.workload import Workload
from ..exceptions import PolicyError, TransformError
from .graph import BOTTOM, PolicyGraph, Vertex, is_bottom


def _factorisation_store():
    # Imported lazily: repro.engine imports repro.policy during its package
    # initialisation, so the reverse import must wait until first use.
    from ..engine import factorisation

    return factorisation.get_store()


def _matrix_digest(matrix) -> str:
    from ..engine.factorisation import matrix_digest

    return matrix_digest(matrix)


@dataclass(frozen=True)
class TransformedInstance:
    """A Blowfish instance rewritten as a standard-DP instance.

    Attributes
    ----------
    workload_matrix:
        ``W_G`` — a ``q x |E|`` matrix over the *edge* domain.
    database_vector:
        ``x_G`` — a length ``|E|`` vector with ``P_G x_G = x`` (restricted to
        kept vertices), so that ``W_G x_G + offset = W x``.
    offset:
        The public constant ``c(W, n)`` of Lemma 4.10 (zero in Case I).
    """

    workload_matrix: sp.csr_matrix
    database_vector: np.ndarray
    offset: np.ndarray

    @property
    def num_edges(self) -> int:
        """Number of edge-domain coordinates ``|E|``."""
        return int(self.workload_matrix.shape[1])

    def true_answers(self) -> np.ndarray:
        """Exact workload answers ``W x = W_G x_G + offset``."""
        return np.asarray(self.workload_matrix @ self.database_vector).ravel() + self.offset


class PolicyTransform:
    """Constructs ``P_G`` and the associated workload/database transforms.

    Parameters
    ----------
    policy:
        The Blowfish policy graph ``G``.
    removed_vertices:
        Optional explicit choice of the vertex removed from each component
        that does not reach ``⊥`` (Case II / Case III).  When omitted, the
        largest flat index of each such component is removed, matching
        Example 4.1 where the rightmost value of the line graph becomes
        ``⊥``.
    """

    def __init__(
        self,
        policy: PolicyGraph,
        removed_vertices: Optional[Sequence[int]] = None,
    ) -> None:
        self._policy = policy
        self._components = policy.connected_components()
        self._removed_by_component = self._choose_removed_vertices(removed_vertices)
        self._removed: List[int] = sorted(
            vertex for vertex in self._removed_by_component.values() if vertex is not None
        )
        removed_set = set(self._removed)
        self._kept: np.ndarray = np.array(
            [v for v in range(policy.domain.size) if v not in removed_set], dtype=np.int64
        )
        self._row_of: Dict[int, int] = {int(v): i for i, v in enumerate(self._kept)}
        self._reduced_policy = self._build_reduced_policy()
        self._incidence = self._build_incidence()
        # Map every kept vertex to the removed vertex of its component (or None).
        self._component_removed_of_vertex = self._map_vertices_to_removed()
        # Factorisation artifacts (the Gram/SuperLU solve closure, shared
        # transformed-workload products) live in the process-wide
        # FactorisationStore, keyed by content digests of P_G — transforms
        # hold only *handles*, resolved lazily under the lock (double-checked:
        # the fast path stays lock-free).  Handles are transient and never
        # pickled; the digests survive so the other side of a process
        # boundary re-resolves against its own store.
        self._gram_digest: Optional[str] = None
        self._transform_digest: Optional[str] = None
        self._gram_handle = None
        self._workload_handles: Dict[str, object] = {}
        self._gram_lock = threading.Lock()

    # --------------------------------------------------------------- digests
    @property
    def gram_digest(self) -> str:
        """Content digest of ``P_G`` — the factorisation-store key of its Gram.

        Every transform built over the same incidence matrix (same policy
        content, regardless of which plan/shard/worker built it) shares this
        digest and therefore one SuperLU factorisation per process.
        """
        digest = self._gram_digest
        if digest is None:
            digest = _matrix_digest(self._incidence)
            self._gram_digest = digest
        return digest

    @property
    def transform_digest(self) -> str:
        """Digest of the full workload transform (``P_G`` plus reduction).

        Keys shared transformed-workload products: two transforms agree
        exactly when both their incidence *and* their Case II/III column
        reduction agree, so ``W' P_G`` may be adopted across instances.
        """
        digest = self._transform_digest
        if digest is None:
            from hashlib import blake2b

            combined = blake2b(digest_size=16)
            combined.update(self.gram_digest.encode())
            combined.update(_matrix_digest(self.reduction_matrix()).encode())
            digest = combined.hexdigest()
            self._transform_digest = digest
        return digest

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Pickle support: digests survive, store handles and the lock do not.

        Transforms travel to worker processes (the engine's process-parallel
        execute backend) and to disk (plan-cache persistence).  The Gram
        factorisation is a closure over a ``SuperLU`` object, which cannot
        cross a process boundary; only its content digest travels, and the
        receiving process re-resolves lazily against its *own*
        :class:`~repro.engine.factorisation.FactorisationStore` — so a
        re-hydrated plan whose policy matrices are already resident there
        never re-factorises, and answers are unaffected either way (the
        factorisation is a pure function of ``P_G``).
        """
        state = self.__dict__.copy()
        state["_gram_handle"] = None
        state["_workload_handles"] = {}
        del state["_gram_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # PR 4-era pickles (plan-store format 1) carried the factorisation
        # slot itself; drop it and default the digests so old stores load
        # and re-attach to the shared store on first use.
        self.__dict__.pop("_factorised_gram", None)
        self.__dict__.setdefault("_gram_digest", None)
        self.__dict__.setdefault("_transform_digest", None)
        self._gram_handle = None
        self._workload_handles = {}
        self._gram_lock = threading.Lock()

    # ----------------------------------------------------------- construction
    def _choose_removed_vertices(
        self, removed_vertices: Optional[Sequence[int]]
    ) -> Dict[int, Optional[int]]:
        """Pick the removed vertex of every component without ``⊥``."""
        explicit = list(int(v) for v in removed_vertices) if removed_vertices else []
        for vertex in explicit:
            if not 0 <= vertex < self._policy.domain.size:
                raise TransformError(f"Removed vertex {vertex} is outside the domain")
        chosen: Dict[int, Optional[int]] = {}
        used_explicit: Set[int] = set()
        for index, component in enumerate(self._components):
            if any(is_bottom(v) for v in component):
                chosen[index] = None
                continue
            members = {int(v) for v in component}
            explicit_here = [v for v in explicit if v in members]
            if len(explicit_here) > 1:
                raise TransformError(
                    f"More than one removed vertex requested in component {sorted(members)}"
                )
            if explicit_here:
                chosen[index] = explicit_here[0]
                used_explicit.add(explicit_here[0])
            else:
                chosen[index] = max(members)
        unused = set(explicit) - used_explicit
        if unused:
            raise TransformError(
                f"Removed vertices {sorted(unused)} belong to components that already reach bottom"
            )
        return chosen

    def _build_reduced_policy(self) -> PolicyGraph:
        """Rewire every removed vertex's edges to ``⊥`` (Lemma 4.10), keeping edge order."""
        removed = set(self._removed)
        new_edges: List[Tuple[Vertex, Vertex]] = []
        for u, v in self._policy.edges:
            nu: Vertex = BOTTOM if (not is_bottom(u) and int(u) in removed) else u
            nv: Vertex = BOTTOM if (not is_bottom(v) and int(v) in removed) else v
            if is_bottom(nu) and is_bottom(nv):
                raise TransformError(
                    "Both endpoints of a policy edge were removed; choose different "
                    "removed vertices"
                )
            new_edges.append((nu, nv))
        name = self._policy.name + "'" if self._policy.name else "reduced"
        return PolicyGraph(domain=self._policy.domain, edges=new_edges, name=name)

    def _build_incidence(self) -> sp.csr_matrix:
        """Build ``P_G``: one signed-indicator column per (reduced) policy edge."""
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for edge_index, (u, v) in enumerate(self._reduced_policy.edges):
            if not is_bottom(u):
                rows.append(self._row_of[int(u)])
                cols.append(edge_index)
                data.append(1.0)
            if not is_bottom(v):
                rows.append(self._row_of[int(v)])
                cols.append(edge_index)
                data.append(-1.0)
        matrix = sp.csr_matrix(
            (data, (rows, cols)),
            shape=(len(self._kept), self._reduced_policy.num_edges),
        )
        return matrix

    def _map_vertices_to_removed(self) -> Dict[int, Optional[int]]:
        mapping: Dict[int, Optional[int]] = {}
        for index, component in enumerate(self._components):
            removed = self._removed_by_component[index]
            for vertex in component:
                if not is_bottom(vertex):
                    mapping[int(vertex)] = removed
        # Isolated vertices that appear in no component with edges still need a value.
        for vertex in range(self._policy.domain.size):
            mapping.setdefault(vertex, None)
        return mapping

    # ------------------------------------------------------------- properties
    @property
    def policy(self) -> PolicyGraph:
        """The original policy graph ``G``."""
        return self._policy

    @property
    def reduced_policy(self) -> PolicyGraph:
        """The reduced policy ``G'`` in which removed vertices became ``⊥``."""
        return self._reduced_policy

    @property
    def incidence(self) -> sp.csr_matrix:
        """The transform matrix ``P_G`` (kept vertices x edges)."""
        return self._incidence

    @property
    def removed_vertices(self) -> List[int]:
        """Vertices replaced by ``⊥`` (empty in Case I)."""
        return list(self._removed)

    @property
    def kept_vertices(self) -> np.ndarray:
        """Flat indices of kept vertices, in the row order of ``P_G``."""
        return self._kept.copy()

    @property
    def num_edges(self) -> int:
        """Number of policy edges ``|E|`` (columns of ``P_G``)."""
        return self._reduced_policy.num_edges

    def is_tree(self) -> bool:
        """``True`` when the reduced policy (with ``⊥``) is a tree.

        The check is performed over the *kept* vertices plus ``⊥``: the
        vertices removed by the Case II reduction are no longer part of the
        transformed instance, so they do not count as isolated nodes.  This is
        the condition of Theorem 4.3 under which *every* mechanism transfers
        between the Blowfish and DP instances.
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(int(v) for v in self._kept)
        graph.add_node("bottom")
        for u, v in self._reduced_policy.edges:
            a = "bottom" if is_bottom(u) else int(u)
            b = "bottom" if is_bottom(v) else int(v)
            graph.add_edge(a, b)
        return bool(nx.is_tree(graph))

    def has_full_row_rank(self) -> bool:
        """Check that ``P_G`` has full row rank (Lemma 4.8).

        Full row rank holds whenever every connected component of the policy
        reaches ``⊥`` after the Case II reduction; this method verifies it
        numerically (dense, so use only on small policies or in tests).
        """
        dense = self._incidence.toarray()
        if dense.size == 0:
            return len(self._kept) == 0
        return int(np.linalg.matrix_rank(dense)) == len(self._kept)

    # ------------------------------------------------------------- transforms
    def reduction_matrix(self) -> sp.csr_matrix:
        """The matrix ``D`` of Lemma 4.10 mapping full columns to kept columns.

        ``D`` has one row per domain vertex and one column per kept vertex;
        ``W' = W D``.  Column ``j'`` (for kept vertex ``j``) carries a ``1``
        at row ``j`` and, when ``j``'s component had a vertex ``v_c`` removed,
        a ``-1`` at row ``v_c``.
        """
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for new_index, vertex in enumerate(self._kept):
            rows.append(int(vertex))
            cols.append(new_index)
            data.append(1.0)
            removed = self._component_removed_of_vertex.get(int(vertex))
            if removed is not None:
                rows.append(int(removed))
                cols.append(new_index)
                data.append(-1.0)
        return sp.csr_matrix(
            (data, (rows, cols)), shape=(self._policy.domain.size, len(self._kept))
        )

    def reduce_workload_matrix(self, workload: Workload) -> sp.csr_matrix:
        """Rewrite ``W`` over kept vertices only (the matrix ``W'`` of Lemma 4.10).

        Column ``j`` of the result is ``W[:, j] - W[:, v_c]`` where ``v_c`` is
        the removed vertex of ``j``'s component (or ``W[:, j]`` unchanged when
        the component already reaches ``⊥``).
        """
        self._check_domain(workload)
        return sp.csr_matrix(workload.matrix @ self.reduction_matrix())

    def transform_workload(self, workload: Workload) -> sp.csr_matrix:
        """The transformed workload ``W_G = W' P_G`` over the edge domain.

        Resolved through the process-wide factorisation store keyed by
        (transform digest, workload signature): mechanisms that differ only
        in ε — or live in different plan caches, or were re-hydrated in a
        worker process — share one sparse product per distinct
        (transform, workload) content.
        """
        key = f"{self.transform_digest}:{workload.signature()}"
        handle = self._workload_handles.get(key)
        if handle is None:
            handle = _factorisation_store().get_or_build(
                "workload-gram", key, lambda: self._compute_transformed_workload(workload)
            )
            with self._gram_lock:
                # Bounded like the mechanism-side memo: products are owned by
                # whoever uses them, the transform only pins a working set.
                if len(self._workload_handles) >= 32:
                    self._workload_handles.clear()
                self._workload_handles[key] = handle
        return handle.value

    def _compute_transformed_workload(self, workload: Workload) -> sp.csr_matrix:
        reduced = self.reduce_workload_matrix(workload)
        return sp.csr_matrix(reduced @ self._incidence)

    def offset(self, workload: Workload, database: Database) -> np.ndarray:
        """The public constant ``c(W, n)`` with ``W x = W_G x_G + c`` (Lemma 4.10).

        For every component whose vertex ``v_c`` was removed, the offset adds
        ``n_c * W[:, v_c]`` where ``n_c`` is the number of records in that
        component.  Component totals are exactly disclosed by the policy
        (Appendix E), and for connected bounded policies ``n_c = n`` which all
        Blowfish neighbors share.
        """
        self._check_domain(workload)
        self._check_database(database)
        result = np.zeros(workload.num_queries, dtype=np.float64)
        if not self._removed:
            return result
        matrix = sp.csc_matrix(workload.matrix)
        counts = database.counts
        for index, component in enumerate(self._components):
            removed = self._removed_by_component[index]
            if removed is None:
                continue
            members = np.array(
                sorted(int(v) for v in component if not is_bottom(v)), dtype=np.int64
            )
            component_total = float(counts[members].sum())
            column = np.asarray(matrix.getcol(int(removed)).todense()).ravel()
            result += component_total * column
        return result

    def transform_database(self, database: Database) -> np.ndarray:
        """The transformed database ``x_G`` with ``P_G x_G = x`` (kept entries).

        For tree policies this equals the subtree-count vector of
        :class:`repro.policy.tree.TreeTransform` (and is integral); in general
        it is the minimum-norm solution computed through the sparse normal
        equations.  Any solution gives the same transformed answers because
        ``W_G x_G = W' (P_G x_G) = W' x``.
        """
        self._check_database(database)
        x_kept = database.counts[self._kept]
        if self.num_edges == 0:
            if np.any(np.abs(x_kept) > 0):
                raise TransformError(
                    "Policy has no edges but the database has records on kept vertices"
                )
            return np.zeros(0, dtype=np.float64)
        handle = self._gram_handle
        if handle is None:
            with self._gram_lock:
                handle = self._gram_handle
                if handle is None:
                    handle = _factorisation_store().get_or_build(
                        "gram", self.gram_digest, self._factorise_gram
                    )
                    self._gram_handle = handle
        y = handle.value(x_kept)
        return np.asarray(self._incidence.T @ y).ravel()

    def _factorise_gram(self):
        """Build the SuperLU solve closure of ``P_G P_Gᵀ`` (store build hook)."""
        gram = (self._incidence @ self._incidence.T).tocsc()
        try:
            return spla.factorized(gram)
        except RuntimeError as exc:  # singular Gram matrix
            raise TransformError(
                "P_G does not have full row rank; is some component of "
                "the policy missing a path to bottom?"
            ) from exc

    def transform_instance(
        self, workload: Workload, database: Database
    ) -> TransformedInstance:
        """Bundle ``W_G``, ``x_G`` and the offset for one Blowfish instance."""
        return TransformedInstance(
            workload_matrix=self.transform_workload(workload),
            database_vector=self.transform_database(database),
            offset=self.offset(workload, database),
        )

    # -------------------------------------------------------------- sensitivity
    def policy_sensitivity(self, workload: Workload) -> float:
        """Policy-specific sensitivity ``Delta_W(G)`` (Definition 4.1).

        Computed directly from the original workload and the original policy
        edges: for an edge ``(u, v)`` the answer changes by
        ``W[:, u] - W[:, v]``; for an edge ``(u, ⊥)`` it changes by
        ``W[:, u]``.  By Lemma 4.7 this equals the unbounded-DP sensitivity of
        ``W_G``.
        """
        self._check_domain(workload)
        transformed = self.transform_original_workload(workload)
        return unbounded_sensitivity(transformed)

    def transform_original_workload(self, workload: Workload) -> sp.csr_matrix:
        """``W`` applied to the *original* policy edges (no Case II rewrite).

        Column ``e`` is ``W (e_u - e_v)`` for the original edge ``(u, v)``
        (or ``W e_u`` for ``(u, ⊥)``).  Up to the sign of individual columns
        this is the same matrix as :meth:`transform_workload` — the Case II
        rewrite cancels in the difference — but it is cheaper and independent
        of the removed-vertex choice, so it is the preferred input for
        sensitivity computations.
        """
        self._check_domain(workload)
        matrix = sp.csc_matrix(workload.matrix)
        # Signed vertex-to-edge matrix for the *original* edges.
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for edge_index, (u, v) in enumerate(self._policy.edges):
            if not is_bottom(u):
                rows.append(int(u))
                cols.append(edge_index)
                data.append(1.0)
            if not is_bottom(v):
                rows.append(int(v))
                cols.append(edge_index)
                data.append(-1.0)
        signed = sp.csr_matrix(
            (data, (rows, cols)),
            shape=(self._policy.domain.size, self._policy.num_edges),
        )
        return sp.csr_matrix(matrix @ signed)

    # ----------------------------------------------------------- reconstruction
    def reconstruct_answers(
        self,
        workload: Workload,
        database: Database,
        transformed_estimates: np.ndarray,
    ) -> np.ndarray:
        """Turn noisy estimates of ``W_G x_G`` into estimates of ``W x``.

        Simply adds the public offset ``c(W, n)``; no privacy budget is
        consumed because the offset only depends on component totals which are
        invariant across Blowfish neighbors.
        """
        transformed_estimates = np.asarray(transformed_estimates, dtype=np.float64).ravel()
        if transformed_estimates.shape[0] != workload.num_queries:
            raise TransformError(
                f"Expected {workload.num_queries} transformed answers, got "
                f"{transformed_estimates.shape[0]}"
            )
        return transformed_estimates + self.offset(workload, database)

    def reconstruct_histogram(self, edge_estimates: np.ndarray) -> np.ndarray:
        """Map edge-domain estimates back to a kept-vertex histogram: ``P_G x̃_G``."""
        edge_estimates = np.asarray(edge_estimates, dtype=np.float64).ravel()
        if edge_estimates.shape[0] != self.num_edges:
            raise TransformError(
                f"Expected {self.num_edges} edge estimates, got {edge_estimates.shape[0]}"
            )
        return np.asarray(self._incidence @ edge_estimates).ravel()

    # ----------------------------------------------------------------- helpers
    def _check_domain(self, workload: Workload) -> None:
        if workload.domain != self._policy.domain:
            raise PolicyError(
                f"Workload domain {workload.domain} does not match policy domain "
                f"{self._policy.domain}"
            )

    def _check_database(self, database: Database) -> None:
        if database.domain != self._policy.domain:
            raise PolicyError(
                f"Database domain {database.domain} does not match policy domain "
                f"{self._policy.domain}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolicyTransform(policy={self._policy.name or self._policy!r}, "
            f"edges={self.num_edges}, removed={self._removed})"
        )
