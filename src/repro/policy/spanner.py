"""Spanning-tree approximations of policy graphs (Lemma 4.5, Section 5.3).

The subgraph-approximation lemma says that if every edge of a policy graph
``G`` is connected by a path of length at most ``ℓ`` in a spanning tree
``G'``, then an ``(ε, G')``-Blowfish mechanism run with budget ``ε / ℓ`` is
``(ε, G)``-Blowfish private.  This module provides:

* :func:`line_spanner` — the tree ``H^θ_k`` of Section 5.3.1 (red vertices at
  intervals of θ, non-red vertices attached to the next red vertex), which
  approximates ``G^θ_k`` with stretch at most 3;
* :func:`grid_spanner` — the multi-dimensional analogue ``H^θ_{k^d}`` of
  Section 5.3.2 (red corner vertices forming a coarse grid; interior vertices
  attached to their block's red vertex);
* :func:`bfs_spanning_tree` — a generic breadth-first spanning tree for
  arbitrary connected policies;
* :class:`SpannerApproximation` — a spanner together with its exact stretch,
  ready to be used by the mechanisms (they divide ε by the stretch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..core.domain import Domain
from ..exceptions import PolicyError
from .graph import BOTTOM, PolicyGraph, Vertex, is_bottom


@dataclass(frozen=True)
class SpannerApproximation:
    """A spanning-tree policy together with its stretch over the original policy.

    Attributes
    ----------
    original:
        The policy graph ``G`` being approximated.
    spanner:
        The tree policy ``G'`` (same vertex set).
    stretch:
        ``ℓ = max_{(u,v) in E(G)} dist_{G'}(u, v)`` — a mechanism that is
        ``(ε, G')``-private is ``(ℓ·ε, G)``-private (Lemma 4.5), so running it
        with budget ``ε / ℓ`` yields ``(ε, G)``-Blowfish privacy
        (Corollary 4.6).
    """

    original: PolicyGraph
    spanner: PolicyGraph
    stretch: int

    def budget_for(self, epsilon: float) -> float:
        """Privacy budget to hand the spanner mechanism for an ``(ε, G)`` guarantee."""
        if epsilon <= 0:
            raise PolicyError(f"epsilon must be positive, got {epsilon}")
        return epsilon / float(self.stretch)


# ---------------------------------------------------------------------------
# 1-D spanner H^theta_k (Section 5.3.1, Figure 6).
# ---------------------------------------------------------------------------
def line_spanner(domain: Domain, theta: int) -> PolicyGraph:
    """The spanning tree ``H^θ_k`` of the 1-D threshold policy ``G^θ_k``.

    Using 0-based indices, the *red* vertices are ``θ-1, 2θ-1, ...`` (every
    θ-th vertex); consecutive red vertices form a path, and every non-red
    vertex is attached to the next red vertex to its right (the last,
    possibly shorter, block attaches to the final vertex which is made red).
    Every policy edge of ``G^θ_k`` (a pair at distance at most θ) is connected
    in ``H^θ_k`` by a path of length at most 3.

    Edges are ordered by their left endpoint, the order the Section 5.3.1
    strategy relies on.
    """
    if domain.ndim != 1:
        raise PolicyError("line_spanner requires a one-dimensional domain")
    if theta < 1:
        raise PolicyError(f"theta must be at least 1, got {theta}")
    k = domain.size
    red = _red_vertices_1d(k, theta)
    red_set = set(red)
    next_red = np.zeros(k, dtype=np.int64)
    pointer = 0
    for vertex in range(k):
        while red[pointer] < vertex:
            pointer += 1
        next_red[vertex] = red[pointer]

    edges: List[Tuple[Vertex, Vertex]] = []
    for vertex in range(k):
        if vertex in red_set:
            # Connect this red vertex to the next red vertex (path of reds).
            position = red.index(vertex)
            if position + 1 < len(red):
                edges.append((vertex, red[position + 1]))
        else:
            edges.append((vertex, int(next_red[vertex])))
    return PolicyGraph(domain=domain, edges=edges, name=f"H^{theta}_{k}")


def _red_vertices_1d(k: int, theta: int) -> List[int]:
    """Red vertices of ``H^θ_k``: every θ-th vertex, always including the last."""
    red = list(range(theta - 1, k, theta))
    if not red or red[-1] != k - 1:
        red.append(k - 1)
    return red


def line_spanner_groups(domain: Domain, theta: int) -> List[List[int]]:
    """Edge-index groups of ``H^θ_k`` used by the Section 5.3.1 strategy.

    Each group contains the edges attached to one red vertex from its left
    (the non-red attachments of its block plus the red-red edge entering it).
    Groups partition the edge set, so range queries within different groups
    compose in parallel.
    """
    spanner = line_spanner(domain, theta)
    red = _red_vertices_1d(domain.size, theta)
    group_of_red: Dict[int, int] = {vertex: index for index, vertex in enumerate(red)}
    groups: List[List[int]] = [[] for _ in red]
    for edge_index, (u, v) in enumerate(spanner.edges):
        right = max(int(u), int(v))
        groups[group_of_red[right]].append(edge_index)
    return [group for group in groups if group]


# ---------------------------------------------------------------------------
# Multi-dimensional spanner H^theta_{k^d} (Section 5.3.2, Figure 7).
# ---------------------------------------------------------------------------
def grid_spanner(domain: Domain, theta: int) -> PolicyGraph:
    """The spanning tree-like subgraph ``H^θ_{k^d}`` of ``G^θ_{k^d}``.

    The domain is divided into hyper-cubes with edge length ``max(1, θ // d)``;
    the top corner of every block is a *red* vertex.  Interior vertices attach
    to their block's red vertex ("internal" edges) and red vertices are
    connected to neighbouring red vertices along each axis ("external" edges),
    forming a coarse grid.  The result is connected and approximates
    ``G^θ_{k^d}``; its exact stretch is computed by :func:`stretch`.

    Note: unlike the 1-D case the result is generally *not* a tree (the red
    vertices form a grid), so it is used with the matrix-mechanism route; the
    paper uses the same structure.
    """
    if theta < 1:
        raise PolicyError(f"theta must be at least 1, got {theta}")
    d = domain.ndim
    block = max(1, theta // d)
    shape = domain.shape
    edges: List[Tuple[Vertex, Vertex]] = []

    def red_cell_of(cell: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(
            min(((c // block) + 1) * block - 1, extent - 1)
            for c, extent in zip(cell, shape)
        )

    # Internal edges: each non-red cell attaches to its block's red corner.
    for cell in np.ndindex(*shape):
        red = red_cell_of(cell)
        if cell != red:
            edges.append((domain.index_of(cell), domain.index_of(red)))

    # External edges: red corners form a coarse grid along each axis.
    red_coordinates_per_axis = [
        sorted({min(((c // block) + 1) * block - 1, extent - 1) for c in range(extent)})
        for extent in shape
    ]
    red_cells = list(np.stack(np.meshgrid(*red_coordinates_per_axis, indexing="ij"), axis=-1).reshape(-1, d))
    red_index = {tuple(int(c) for c in cell): domain.index_of(cell) for cell in red_cells}
    for cell in red_index:
        for axis in range(d):
            coords = red_coordinates_per_axis[axis]
            position = coords.index(cell[axis])
            if position + 1 < len(coords):
                neighbor = list(cell)
                neighbor[axis] = coords[position + 1]
                edges.append((red_index[cell], red_index[tuple(neighbor)]))
    name = f"H^{theta}_{{{'x'.join(str(s) for s in shape)}}}"
    return PolicyGraph(domain=domain, edges=edges, name=name)


# ---------------------------------------------------------------------------
# Generic spanners and stretch computation.
# ---------------------------------------------------------------------------
def bfs_spanning_tree(policy: PolicyGraph, root: int = 0) -> PolicyGraph:
    """A breadth-first spanning tree of a connected policy graph.

    ``⊥`` (if present) is kept attached through the BFS tree as well.  The
    result is a valid policy to use with Lemma 4.5 once its stretch is known.
    """
    graph = policy.to_networkx()
    if graph.number_of_nodes() == 0:
        return PolicyGraph(domain=policy.domain, edges=[], name="BFSTree")
    if not nx.is_connected(graph):
        raise PolicyError("bfs_spanning_tree requires a connected policy graph")
    source = "bottom" if policy.has_bottom else int(root)
    tree = nx.bfs_tree(graph, source)
    edges: List[Tuple[Vertex, Vertex]] = []
    for u, v in tree.edges():
        a: Vertex = BOTTOM if u == "bottom" else int(u)
        b: Vertex = BOTTOM if v == "bottom" else int(v)
        edges.append((a, b))
    name = f"BFSTree({policy.name})" if policy.name else "BFSTree"
    return PolicyGraph(domain=policy.domain, edges=edges, name=name)


def stretch(original: PolicyGraph, spanner: PolicyGraph) -> int:
    """Exact stretch ``ℓ = max_{(u,v) in E(original)} dist_spanner(u, v)``.

    Uses per-source BFS on the spanner restricted to the sources that actually
    appear as edge endpoints, so the cost is ``O(#sources * |E(spanner)|)``.
    Raises if some original edge's endpoints are disconnected in the spanner.
    """
    spanner_graph = spanner.to_networkx()
    sources = set()
    for u, v in original.edges:
        sources.add("bottom" if is_bottom(u) else int(u))
    lengths_cache: Dict[object, Dict[object, int]] = {}
    worst = 0
    for u, v in original.edges:
        a = "bottom" if is_bottom(u) else int(u)
        b = "bottom" if is_bottom(v) else int(v)
        if a not in lengths_cache:
            lengths_cache[a] = dict(nx.single_source_shortest_path_length(spanner_graph, a))
        distance = lengths_cache[a].get(b)
        if distance is None:
            raise PolicyError(
                f"Spanner does not connect the endpoints of original edge ({u}, {v})"
            )
        worst = max(worst, int(distance))
    return worst


def approximate_with_line_spanner(policy: PolicyGraph, theta: int) -> SpannerApproximation:
    """Build ``H^θ_k`` for a 1-D threshold policy and package it with its stretch."""
    spanner = line_spanner(policy.domain, theta)
    return SpannerApproximation(
        original=policy, spanner=spanner, stretch=stretch(policy, spanner)
    )


def approximate_with_grid_spanner(policy: PolicyGraph, theta: int) -> SpannerApproximation:
    """Build ``H^θ_{k^d}`` for a threshold policy and package it with its stretch."""
    spanner = grid_spanner(policy.domain, theta)
    return SpannerApproximation(
        original=policy, spanner=spanner, stretch=stretch(policy, spanner)
    )


def approximate_with_bfs_tree(policy: PolicyGraph, root: int = 0) -> SpannerApproximation:
    """Build a BFS spanning tree of ``policy`` and package it with its stretch."""
    spanner = bfs_spanning_tree(policy, root=root)
    return SpannerApproximation(
        original=policy, spanner=spanner, stretch=stretch(policy, spanner)
    )
