"""Blowfish policy graphs, the ``P_G`` transform, trees, spanners and metrics."""

from .builders import (
    bounded_dp_policy,
    cycle_policy,
    grid_policy,
    line_policy,
    policy_from_edges,
    sensitive_attribute_policy,
    star_policy,
    threshold_policy,
    unbounded_dp_policy,
)
from .graph import BOTTOM, PolicyGraph, is_bottom, neighboring_databases
from .metric import (
    cycle_embedding_lower_bound,
    database_distance,
    embedding_stretch_and_shrink,
    graph_distance_matrix,
    is_isometrically_embeddable_as_tree,
    policy_distance,
    tree_embedding,
)
from .spanner import (
    SpannerApproximation,
    approximate_with_bfs_tree,
    approximate_with_grid_spanner,
    approximate_with_line_spanner,
    bfs_spanning_tree,
    grid_spanner,
    line_spanner,
    line_spanner_groups,
    stretch,
)
from .transform import PolicyTransform, TransformedInstance
from .tree import TreeStructure, TreeTransform

__all__ = [
    "BOTTOM",
    "PolicyGraph",
    "PolicyTransform",
    "SpannerApproximation",
    "TransformedInstance",
    "TreeStructure",
    "TreeTransform",
    "approximate_with_bfs_tree",
    "approximate_with_grid_spanner",
    "approximate_with_line_spanner",
    "bfs_spanning_tree",
    "bounded_dp_policy",
    "cycle_embedding_lower_bound",
    "cycle_policy",
    "database_distance",
    "embedding_stretch_and_shrink",
    "graph_distance_matrix",
    "grid_policy",
    "grid_spanner",
    "is_bottom",
    "is_isometrically_embeddable_as_tree",
    "line_policy",
    "line_spanner",
    "line_spanner_groups",
    "neighboring_databases",
    "policy_distance",
    "policy_from_edges",
    "sensitive_attribute_policy",
    "star_policy",
    "stretch",
    "threshold_policy",
    "tree_embedding",
    "unbounded_dp_policy",
]
