"""Constructors for the policy graphs studied in the paper.

* :func:`line_policy` — the line graph ``G^1_k`` over a totally ordered domain
  (e.g. binned salaries, Section 3);
* :func:`threshold_policy` — the distance-threshold graph ``G^theta_{k^d}``
  connecting cells within L1 distance ``theta`` (Section 5.1), which for
  ``d = 2`` is the grid/geo-indistinguishability policy of Sections 1 and 3;
* :func:`grid_policy` — shorthand for ``G^1_{k^d}``;
* :func:`unbounded_dp_policy` — every value connected to ``⊥``
  (recovers unbounded differential privacy);
* :func:`bounded_dp_policy` — the complete graph over the domain
  (recovers bounded differential privacy);
* :func:`sensitive_attribute_policy` — the disconnected policy of Appendix E
  where only a subset of attributes is sensitive.
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..core.domain import Domain
from ..exceptions import PolicyError
from .graph import BOTTOM, PolicyGraph, Vertex


def line_policy(domain: Domain, attach_bottom: bool = False) -> PolicyGraph:
    """The line-graph policy ``G^1_k`` over a one-dimensional ordered domain.

    Adjacent domain values ``a_i`` and ``a_{i+1}`` are connected; far-apart
    values are distinguishable.  Edges are ordered left to right, which is the
    edge order the 1-D strategies of Section 5.2.1 rely on.

    Parameters
    ----------
    domain:
        One-dimensional domain.
    attach_bottom:
        When ``True`` also connect the last value to ``⊥`` (making the policy
        unbounded-style); by default the policy is bounded, as in the paper.
    """
    if domain.ndim != 1:
        raise PolicyError("line_policy requires a one-dimensional domain")
    k = domain.size
    edges: List[Tuple[Vertex, Vertex]] = [(i, i + 1) for i in range(k - 1)]
    if attach_bottom:
        edges.append((k - 1, BOTTOM))
    return PolicyGraph(domain=domain, edges=edges, name=f"G^1_{k}")


def threshold_policy(domain: Domain, theta: int) -> PolicyGraph:
    """The distance-threshold policy ``G^theta_{k^d}`` (Section 5.1).

    Two cells ``u`` and ``v`` are connected iff their L1 (Manhattan) distance
    is at most ``theta``.  For ``d = 1, theta = 1`` this is the line graph;
    for ``d = 2, theta = 1`` it is the grid graph used for location privacy.

    Edge order: cells are visited in flat (row-major) order and, for each
    cell, its neighbors within distance ``theta`` that have a *larger* flat
    index are appended, offsets in lexicographic order.  The order is
    deterministic, which the strategies and tests rely on.
    """
    if theta < 1:
        raise PolicyError(f"theta must be at least 1, got {theta}")
    offsets = _l1_ball_offsets(domain.ndim, theta)
    shape = domain.shape
    edges: List[Tuple[Vertex, Vertex]] = []
    for cell in np.ndindex(*shape):
        u = int(np.ravel_multi_index(cell, shape))
        for offset in offsets:
            neighbor = tuple(int(c) + int(o) for c, o in zip(cell, offset))
            if not all(0 <= nc < extent for nc, extent in zip(neighbor, shape)):
                continue
            v = int(np.ravel_multi_index(neighbor, shape))
            if v > u:
                edges.append((u, v))
    name = f"G^{theta}_{{{'x'.join(str(s) for s in shape)}}}"
    return PolicyGraph(domain=domain, edges=edges, name=name)


def _l1_ball_offsets(ndim: int, theta: int) -> List[Tuple[int, ...]]:
    """Non-zero integer offsets with L1 norm at most ``theta`` in ``ndim`` dimensions."""
    ranges = [range(-theta, theta + 1)] * ndim
    offsets = []
    for offset in itertools.product(*ranges):
        norm = sum(abs(o) for o in offset)
        if 0 < norm <= theta:
            offsets.append(offset)
    return offsets


def grid_policy(domain: Domain) -> PolicyGraph:
    """The unit grid policy ``G^1_{k^d}``: cells at L1 distance 1 are connected."""
    return threshold_policy(domain, theta=1)


def unbounded_dp_policy(domain: Domain) -> PolicyGraph:
    """Policy whose edges are ``{(u, ⊥) : u in T}`` — unbounded differential privacy."""
    edges: List[Tuple[Vertex, Vertex]] = [(u, BOTTOM) for u in range(domain.size)]
    return PolicyGraph(domain=domain, edges=edges, name="UnboundedDP")


def bounded_dp_policy(domain: Domain) -> PolicyGraph:
    """Policy whose edges are all pairs ``{(u, v)}`` — bounded differential privacy."""
    edges: List[Tuple[Vertex, Vertex]] = [
        (u, v) for u in range(domain.size) for v in range(u + 1, domain.size)
    ]
    return PolicyGraph(domain=domain, edges=edges, name="BoundedDP")


def star_policy(domain: Domain, center: int) -> PolicyGraph:
    """A star policy: every value is connected only to the ``center`` value.

    Not used directly by the paper's experiments but a handy tree policy for
    tests and examples (it is the extreme ``theta -> infinity`` analogue of a
    hub-and-spoke policy).
    """
    if not 0 <= center < domain.size:
        raise PolicyError(f"center {center} is outside the domain")
    edges = [(u, center) for u in range(domain.size) if u != center]
    return PolicyGraph(domain=domain, edges=edges, name=f"Star[{center}]")


def cycle_policy(domain: Domain) -> PolicyGraph:
    """A cycle policy over a one-dimensional domain.

    Cycles are the canonical example of a policy with *no* isometric L1
    embedding (Section 4.3), used to demonstrate the negative result of
    Theorem 4.4 and the limits of subgraph approximation.
    """
    if domain.ndim != 1:
        raise PolicyError("cycle_policy requires a one-dimensional domain")
    k = domain.size
    if k < 3:
        raise PolicyError("A cycle needs at least 3 vertices")
    edges: List[Tuple[Vertex, Vertex]] = [(i, i + 1) for i in range(k - 1)]
    edges.append((0, k - 1))
    return PolicyGraph(domain=domain, edges=edges, name=f"Cycle_{k}")


def sensitive_attribute_policy(
    domain: Domain, sensitive_axes: Sequence[int]
) -> PolicyGraph:
    """The "sensitive attributes" policy of Appendix E.

    The domain is a product of attributes ``A_1 x ... x A_d``; two cells are
    connected iff they differ in exactly one attribute *and* that attribute is
    sensitive.  The resulting policy graph is disconnected: cells that differ
    on a non-sensitive attribute fall in different components, so the
    non-sensitive attributes are disclosed exactly.
    """
    sensitive = sorted(set(int(a) for a in sensitive_axes))
    for axis in sensitive:
        if not 0 <= axis < domain.ndim:
            raise PolicyError(f"Sensitive axis {axis} out of range for a {domain.ndim}-D domain")
    if not sensitive:
        raise PolicyError("At least one sensitive attribute is required")
    shape = domain.shape
    edges: List[Tuple[Vertex, Vertex]] = []
    for cell in np.ndindex(*shape):
        u = int(np.ravel_multi_index(cell, shape))
        for axis in sensitive:
            for value in range(cell[axis] + 1, shape[axis]):
                neighbor = list(cell)
                neighbor[axis] = value
                v = int(np.ravel_multi_index(tuple(neighbor), shape))
                edges.append((u, v))
    return PolicyGraph(
        domain=domain, edges=edges, name=f"Sensitive{tuple(sensitive)}"
    )


def policy_from_edges(
    domain: Domain, edges: Iterable[Tuple[Vertex, Vertex]], name: str = "Custom"
) -> PolicyGraph:
    """Build a custom policy graph from explicit edges."""
    return PolicyGraph(domain=domain, edges=edges, name=name)
