"""Tree policies and the exact tree transform (Theorem 4.3 / Lemma 4.9).

When the (reduced) policy graph is a tree rooted at ``⊥``, the transform
``P_G`` is square and invertible, and the transformed database ``x_G`` has a
simple combinatorial meaning: the value on an edge is the total count of the
subtree hanging below it.  For the line policy this is exactly the vector of
prefix sums (Example 4.1).  Because neighbors under the policy map to
histogram vectors at L1 distance one (Lemma 4.9), *any* differentially private
mechanism — including data-dependent ones such as DAWA — can be run on
``(W_G, x_G)`` and inherits Blowfish privacy on the original instance.

:class:`TreeTransform` provides the fast (O(k)) transform, its inverse, the
structural metadata (parent edges, depths) used by the spanner utilities and
the consistency post-processing, and explicit checks of the paper's claims
used by the test-suite.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.database import Database
from ..exceptions import PolicyNotTreeError, TransformError
from .graph import BOTTOM, PolicyGraph, is_bottom
from .transform import PolicyTransform


@dataclass(frozen=True)
class TreeStructure:
    """Rooted-tree metadata for a reduced policy graph (root = ``⊥``).

    Attributes
    ----------
    parent_edge_of_vertex:
        For every kept-vertex row index, the edge index of its parent edge.
    child_vertex_of_edge:
        For every edge index, the kept-vertex row index of its child endpoint
        (the endpoint farther from ``⊥``).
    edge_sign:
        For every edge index, the sign (+1/-1) the child endpoint carries in
        the corresponding column of ``P_G``.
    depth_of_vertex:
        Depth of every kept vertex (``⊥`` has depth 0).
    children_of_vertex:
        Adjacency list of child rows per kept-vertex row (roots excluded).
    topological_order:
        Kept-vertex rows ordered root-to-leaves (parents before children).
    """

    parent_edge_of_vertex: np.ndarray
    child_vertex_of_edge: np.ndarray
    edge_sign: np.ndarray
    depth_of_vertex: np.ndarray
    children_of_vertex: List[List[int]]
    topological_order: np.ndarray


class TreeTransform:
    """Exact transform between a tree Blowfish instance and its DP instance.

    Parameters
    ----------
    transform:
        A :class:`~repro.policy.transform.PolicyTransform` whose *reduced*
        policy is a tree.  A non-tree policy raises
        :class:`~repro.exceptions.PolicyNotTreeError`, mirroring the scope of
        Theorem 4.3.
    """

    def __init__(self, transform: PolicyTransform) -> None:
        if not transform.is_tree():
            raise PolicyNotTreeError(
                "The (reduced) policy graph is not a tree; Theorem 4.3 does not apply. "
                "Use a spanning-tree approximation (Lemma 4.5) or a matrix-mechanism "
                "strategy (Theorem 4.1) instead."
            )
        self._transform = transform
        self._structure = self._build_structure()

    # ----------------------------------------------------------- construction
    def _build_structure(self) -> TreeStructure:
        reduced = self._transform.reduced_policy
        kept = self._transform.kept_vertices
        row_of: Dict[int, int] = {int(v): i for i, v in enumerate(kept)}
        num_vertices = len(kept)
        num_edges = reduced.num_edges
        if num_edges != num_vertices:
            raise TransformError(
                f"A rooted tree over {num_vertices} kept vertices must have exactly "
                f"{num_vertices} edges, found {num_edges}"
            )

        # Adjacency over rows; BOTTOM is represented by -1.
        adjacency: List[List[Tuple[int, int, float]]] = [[] for _ in range(num_vertices + 1)]

        def node_id(vertex) -> int:
            return num_vertices if is_bottom(vertex) else row_of[int(vertex)]

        for edge_index, (u, v) in enumerate(reduced.edges):
            a, b = node_id(u), node_id(v)
            sign_a = 1.0 if not is_bottom(u) else 0.0
            sign_b = -1.0 if not is_bottom(v) else 0.0
            # Store, next to each neighbor, the sign *that neighbor* carries in
            # the edge's P_G column, so BFS discovery of a child immediately
            # yields the sign of the child endpoint.
            adjacency[a].append((b, edge_index, sign_b))
            adjacency[b].append((a, edge_index, sign_a))

        parent_edge = np.full(num_vertices, -1, dtype=np.int64)
        child_of_edge = np.full(num_edges, -1, dtype=np.int64)
        edge_sign = np.zeros(num_edges, dtype=np.float64)
        depth = np.full(num_vertices, -1, dtype=np.int64)
        children: List[List[int]] = [[] for _ in range(num_vertices)]
        order: List[int] = []

        root = num_vertices  # BOTTOM
        visited = np.zeros(num_vertices + 1, dtype=bool)
        visited[root] = True
        queue = deque([(root, 0)])
        while queue:
            node, node_depth = queue.popleft()
            for neighbor, edge_index, sign_at_neighbor in adjacency[node]:
                if visited[neighbor]:
                    continue
                visited[neighbor] = True
                parent_edge[neighbor] = edge_index
                child_of_edge[edge_index] = neighbor
                edge_sign[edge_index] = sign_at_neighbor
                depth[neighbor] = node_depth + 1
                if node != root:
                    children[node].append(neighbor)
                order.append(neighbor)
                queue.append((neighbor, node_depth + 1))

        if not bool(visited[:num_vertices].all()):
            raise TransformError("Tree policy is not connected to bottom")
        return TreeStructure(
            parent_edge_of_vertex=parent_edge,
            child_vertex_of_edge=child_of_edge,
            edge_sign=edge_sign,
            depth_of_vertex=depth,
            children_of_vertex=children,
            topological_order=np.array(order, dtype=np.int64),
        )

    # ------------------------------------------------------------- properties
    @property
    def transform(self) -> PolicyTransform:
        """The underlying :class:`PolicyTransform`."""
        return self._transform

    @property
    def structure(self) -> TreeStructure:
        """Rooted-tree metadata."""
        return self._structure

    @property
    def policy(self) -> PolicyGraph:
        """The original policy graph."""
        return self._transform.policy

    @property
    def num_edges(self) -> int:
        """Number of edges (equals the number of kept vertices)."""
        return self._transform.num_edges

    # --------------------------------------------------------------- transform
    def transform_database(self, database: Database) -> np.ndarray:
        """Exact transformed database: signed subtree counts per edge.

        For edge ``e`` with child endpoint ``c`` (the endpoint away from
        ``⊥``), ``|x_G[e]|`` is the total count in the subtree rooted at ``c``
        and the sign matches the child's sign in the corresponding ``P_G``
        column, so that ``P_G x_G = x`` exactly.  For the line policy this is
        the prefix-sum vector.
        """
        if database.domain != self.policy.domain:
            raise TransformError("Database domain does not match the policy domain")
        kept = self._transform.kept_vertices
        counts_kept = database.counts[kept]
        structure = self._structure
        subtree = counts_kept.copy()
        # Reverse topological accumulation (children before parents).
        for row in structure.topological_order[::-1]:
            for child in structure.children_of_vertex[row]:
                subtree[row] += subtree[child]
        edge_values = np.zeros(self.num_edges, dtype=np.float64)
        child_rows = structure.child_vertex_of_edge
        edge_values[:] = structure.edge_sign * subtree[child_rows]
        return edge_values

    def inverse_transform(self, edge_values: np.ndarray) -> np.ndarray:
        """Recover the kept-vertex histogram from edge values: ``P_G x_G``.

        For a tree ``P_G`` is square, so this inverse is exact:
        ``x[c] = subtree(c) - sum of children subtrees``.
        """
        edge_values = np.asarray(edge_values, dtype=np.float64).ravel()
        if edge_values.shape[0] != self.num_edges:
            raise TransformError(
                f"Expected {self.num_edges} edge values, got {edge_values.shape[0]}"
            )
        return np.asarray(self._transform.incidence @ edge_values).ravel()

    # ------------------------------------------------------------- invariants
    def verify_neighbor_preservation(
        self, database: Database, edge_index: int
    ) -> bool:
        """Check Lemma 4.9 on one edge: Blowfish neighbors map to L1-distance-1 vectors.

        Moves one (fractional) record across the ``edge_index``-th policy edge
        of the *original* graph and verifies that the transformed databases
        differ by exactly 1 in a single coordinate.
        """
        original_edges = self.policy.edges
        if not 0 <= edge_index < len(original_edges):
            raise TransformError(f"Edge index {edge_index} out of range")
        u, v = original_edges[edge_index]
        x = database.counts.copy()
        if is_bottom(u):
            u, v = v, u
        if x[int(u)] < 1:
            raise TransformError(
                f"Database has no record at vertex {int(u)}; cannot form a neighbor "
                f"across edge {edge_index}"
            )
        y = x.copy()
        y[int(u)] -= 1.0
        if not is_bottom(v):
            y[int(v)] += 1.0
        x_g = self.transform_database(database)
        y_g = self.transform_database(database.with_counts(y))
        difference = np.abs(x_g - y_g)
        return bool(np.isclose(difference.sum(), 1.0) and np.count_nonzero(difference > 1e-9) == 1)

    def monotone_root_path_indices(self) -> Optional[np.ndarray]:
        """Edge indices ordered along the root path when the tree is a path.

        For path (line-graph style) policies the transformed database is
        non-decreasing along this order, which is the constraint exploited by
        the consistency post-processing of Section 5.4.2.  Returns ``None``
        when the tree is not a path.
        """
        structure = self._structure
        degrees = np.array([len(c) for c in structure.children_of_vertex])
        num_roots = int(np.sum(structure.depth_of_vertex == 1))
        if num_roots != 1 or np.any(degrees > 1):
            return None
        # Walk from the unique depth-1 vertex down the single chain.
        order: List[int] = []
        current = int(np.where(structure.depth_of_vertex == 1)[0][0])
        while True:
            order.append(int(structure.parent_edge_of_vertex[current]))
            children = structure.children_of_vertex[current]
            if not children:
                break
            current = children[0]
        # order[0] is the edge adjacent to bottom (largest subtree); reverse so
        # the sequence of |x_G| values is non-decreasing.
        return np.array(order[::-1], dtype=np.int64)
