"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so that callers can
catch every failure mode of the library with a single ``except`` clause while
still being able to distinguish individual problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class DomainError(ReproError):
    """Raised when a domain specification is invalid or two domains mismatch."""


class WorkloadError(ReproError):
    """Raised when a workload matrix is malformed or incompatible with a domain."""


class PolicyError(ReproError):
    """Raised when a policy graph is malformed or unsupported for an operation."""


class PolicyNotTreeError(PolicyError):
    """Raised when an operation requiring a tree policy receives a non-tree policy.

    Data-dependent transformed mechanisms (Theorem 4.3 of the paper) are only
    sound when the policy graph is a tree; attempting to apply them to a
    non-tree policy raises this error instead of silently producing a
    mechanism with an invalid privacy guarantee.
    """


class PrivacyBudgetError(ReproError):
    """Raised for non-positive or otherwise invalid privacy parameters."""


class MechanismError(ReproError):
    """Raised when a mechanism is configured or invoked inconsistently."""


class AskTimeoutError(MechanismError):
    """Raised when a blocking or awaited ask outlived its ``timeout``.

    The timeout bounds the *wait*, not the query: the ticket stays queued
    (or in flight) and a later flush still resolves it normally, so the
    exception carries the :class:`~repro.engine.pipeline.QueryTicket` for
    the caller to re-poll.  Subclasses :class:`MechanismError` so callers
    that caught the broader type keep working.
    """

    def __init__(self, ticket, timeout) -> None:
        super().__init__(
            f"Ticket {ticket.ticket_id} (client {ticket.client_id!r}) was not "
            f"resolved within {timeout} s; it stays pending and a later flush "
            "can still resolve it"
        )
        self.ticket = ticket
        self.timeout = timeout


class QueryCancelledError(MechanismError):
    """Raised when the result of a cancelled query ticket is consumed.

    Cancellation is a *client* decision: already-charged work keeps its
    ε spend (the ledger never rewinds for a bored caller), but a ticket
    cancelled before its charge stage spends nothing.  Carries the
    :class:`~repro.engine.pipeline.QueryTicket` for diagnostics.
    """

    def __init__(self, ticket) -> None:
        super().__init__(
            f"Ticket {ticket.ticket_id} (client {ticket.client_id!r}) was "
            "cancelled before it resolved; no answer is available"
        )
        self.ticket = ticket


class DeadlineExpiredError(MechanismError):
    """Raised when the result of a deadline-expired query ticket is consumed.

    The pipeline drops expired tickets *before* the charge stage, so an
    expired query spends zero ε — the caller lost an answer, never
    budget.  Carries the :class:`~repro.engine.pipeline.QueryTicket`.
    """

    def __init__(self, ticket) -> None:
        super().__init__(
            f"Ticket {ticket.ticket_id} (client {ticket.client_id!r}) "
            "expired before its charge stage; zero epsilon was spent and "
            "no answer is available"
        )
        self.ticket = ticket


class PlanStoreError(MechanismError):
    """Raised when a persisted plan/answer store cannot be read.

    Covers truncated or corrupt pickles as well as format-version
    mismatches; carries the store ``path`` and the ``format_version``
    found in the file (``None`` when the file was unreadable before any
    version could be parsed).  Subclasses :class:`MechanismError` so
    pre-existing callers that caught the broader type keep working.
    """

    def __init__(self, message: str, path: str = "", format_version=None) -> None:
        super().__init__(message)
        self.path = path
        self.format_version = format_version


class DurabilityError(ReproError):
    """Raised when the durable ε-ledger cannot uphold its write-ahead contract.

    A charge that cannot be made durable is *refused* (the in-memory
    append is undone and this error propagates), because admitting it
    would let a crash under-count spent budget — the one direction the
    durability invariant forbids.
    """


class TransformError(ReproError):
    """Raised when the policy transformation ``P_G`` cannot be constructed."""


class DataError(ReproError):
    """Raised when a dataset specification or generated dataset is invalid."""


class ExperimentError(ReproError):
    """Raised when an experiment configuration is inconsistent."""
