"""The dataset catalogue of Table 1.

One :class:`~repro.data.synthetic.SyntheticSpec` per dataset of the paper's
evaluation, calibrated to the published domain size, scale and percentage of
zero counts, plus loader helpers used by the experiment harness:

========  ===========  ==========  ===========  =========================================
Dataset   Domain size  Scale       % zero       Description (paper)
========  ===========  ==========  ===========  =========================================
A         4096         2.8e7       6.20         US patent citation links by time
B         4096         2.0e7       44.97        ACS personal income 2001–2011
C         4096         3.5e5       21.17        HepPH citation links by time
D         4096         3.4e5       51.03        "Obama" search frequency 2004–2010
E         4096         2.6e4       96.61        External connections per internal host
F         4096         1.8e4       97.08        Adult census "capital loss"
G         4096         9.4e3       74.80        Personal medical expenses
T100      100 x 100    1.9e5       84.93        Geo-tagged tweets, western USA
T50       50 x 50      1.9e5       69.24        (same tweets, coarser grid)
T25       25 x 25      1.9e5       43.20        (same tweets, coarser grid)
========  ===========  ==========  ===========  =========================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.database import Database
from ..core.domain import Domain
from ..core.rng import RandomState, ensure_rng
from ..exceptions import DataError
from .synthetic import ShapeFamily, SyntheticSpec, generate_histogram

ONE_DIMENSIONAL_DOMAIN_SIZE = 4096

#: Specifications of every dataset in Table 1 (synthetic stand-ins; see DESIGN.md).
DATASET_SPECS: Dict[str, SyntheticSpec] = {
    "A": SyntheticSpec(
        name="A",
        shape=(ONE_DIMENSIONAL_DOMAIN_SIZE,),
        scale=2.8e7,
        zero_fraction=0.0620,
        family=ShapeFamily.SMOOTH_GROWTH,
        description="Histogram of new links by time added to a subset of the US patent "
        "citation network",
    ),
    "B": SyntheticSpec(
        name="B",
        shape=(ONE_DIMENSIONAL_DOMAIN_SIZE,),
        scale=2.0e7,
        zero_fraction=0.4497,
        family=ShapeFamily.HEAVY_TAIL,
        description="Histogram of personal income from the 2001-2011 American Community "
        "Survey",
    ),
    "C": SyntheticSpec(
        name="C",
        shape=(ONE_DIMENSIONAL_DOMAIN_SIZE,),
        scale=3.5e5,
        zero_fraction=0.2117,
        family=ShapeFamily.SMOOTH_GROWTH,
        description="Histogram of new links by time added to the HepPH citation network",
    ),
    "D": SyntheticSpec(
        name="D",
        shape=(ONE_DIMENSIONAL_DOMAIN_SIZE,),
        scale=3.4e5,
        zero_fraction=0.5103,
        family=ShapeFamily.BURSTY,
        description='Frequency of the search term "Obama" over time (2004-2010)',
    ),
    "E": SyntheticSpec(
        name="E",
        shape=(ONE_DIMENSIONAL_DOMAIN_SIZE,),
        scale=2.6e4,
        zero_fraction=0.9661,
        family=ShapeFamily.SPARSE_SPIKES,
        description="Number of external connections made by each internal host in an "
        "IP-level network trace",
    ),
    "F": SyntheticSpec(
        name="F",
        shape=(ONE_DIMENSIONAL_DOMAIN_SIZE,),
        scale=1.8e4,
        zero_fraction=0.9708,
        family=ShapeFamily.SPARSE_SPIKES,
        description='Histogram of the "capital loss" attribute of the Adult US Census '
        "dataset",
    ),
    "G": SyntheticSpec(
        name="G",
        shape=(ONE_DIMENSIONAL_DOMAIN_SIZE,),
        scale=9.4e3,
        zero_fraction=0.7480,
        family=ShapeFamily.HEAVY_TAIL,
        description="Histogram of personal medical expenses from a national home and "
        "hospice care survey (2007)",
    ),
    "T100": SyntheticSpec(
        name="T100",
        shape=(100, 100),
        scale=1.9e5,
        zero_fraction=0.8493,
        family=ShapeFamily.CLUSTERED_2D,
        description="Aggregated counts of geo-tagged tweets over 24 hours, western USA, "
        "100x100 grid",
    ),
    "T50": SyntheticSpec(
        name="T50",
        shape=(50, 50),
        scale=1.9e5,
        zero_fraction=0.6924,
        family=ShapeFamily.CLUSTERED_2D,
        description="Aggregated counts of geo-tagged tweets over 24 hours, western USA, "
        "50x50 grid",
    ),
    "T25": SyntheticSpec(
        name="T25",
        shape=(25, 25),
        scale=1.9e5,
        zero_fraction=0.4320,
        family=ShapeFamily.CLUSTERED_2D,
        description="Aggregated counts of geo-tagged tweets over 24 hours, western USA, "
        "25x25 grid",
    ),
}

ONE_DIMENSIONAL_DATASETS: Tuple[str, ...] = ("A", "B", "C", "D", "E", "F", "G")
TWO_DIMENSIONAL_DATASETS: Tuple[str, ...] = ("T25", "T50", "T100")


def dataset_names() -> List[str]:
    """All dataset names of Table 1."""
    return list(DATASET_SPECS)


def load_dataset(
    name: str,
    random_state: RandomState = 0,
    domain_size: Optional[int] = None,
) -> Database:
    """Load (generate) one Table 1 dataset.

    Parameters
    ----------
    name:
        Dataset label (``"A"`` ... ``"G"``, ``"T25"``, ``"T50"``, ``"T100"``).
    random_state:
        Seed (default 0 so every caller sees the same data).
    domain_size:
        Optionally aggregate a one-dimensional dataset to a smaller domain
        size (e.g. dataset D at 2048/1024/512 in Figure 8d).  Must divide the
        native domain size.
    """
    if name not in DATASET_SPECS:
        raise DataError(
            f"Unknown dataset {name!r}; available: {', '.join(DATASET_SPECS)}"
        )
    spec = DATASET_SPECS[name]
    rng = ensure_rng(random_state)
    histogram = generate_histogram(spec, rng)
    database = Database(
        domain=Domain(spec.shape), counts=histogram, name=spec.name
    )
    if domain_size is not None:
        if len(spec.shape) != 1:
            raise DataError("domain_size aggregation is only supported for 1-D datasets")
        if spec.shape[0] % int(domain_size) != 0:
            raise DataError(
                f"domain_size {domain_size} does not divide the native size {spec.shape[0]}"
            )
        factor = spec.shape[0] // int(domain_size)
        if factor > 1:
            database = database.aggregate(factor)
    return database


def table1_statistics(random_state: RandomState = 0) -> List[Dict[str, object]]:
    """Regenerate Table 1: per-dataset domain size, scale and % zero counts.

    Both the target (published) and the generated statistics are reported so
    that the fidelity of the synthetic stand-ins is visible in the output.
    """
    rows: List[Dict[str, object]] = []
    rng = ensure_rng(random_state)
    for name, spec in DATASET_SPECS.items():
        seed = int(rng.integers(0, 2**31 - 1))
        database = load_dataset(name, random_state=seed)
        rows.append(
            {
                "dataset": name,
                "description": spec.description,
                "domain_size": "x".join(str(s) for s in spec.shape),
                "target_scale": spec.scale,
                "generated_scale": database.scale,
                "target_zero_percent": 100.0 * spec.zero_fraction,
                "generated_zero_percent": 100.0 * database.zero_fraction,
            }
        )
    return rows
