"""Synthetic histogram generators.

The paper evaluates on seven real one-dimensional datasets and one real
two-dimensional dataset (Table 1) that are not redistributable.  Following the
reproduction plan (DESIGN.md), this module generates synthetic stand-ins that
match the *published statistics* of each dataset — domain size, total scale
and fraction of zero cells — and whose qualitative shape matches the dataset's
description (smooth growth curves, heavy-tailed attribute histograms, bursty
time series, extremely sparse spike data, clustered spatial data).  Those are
exactly the properties that drive the relative behaviour of data-dependent vs
data-independent mechanisms in Section 6.

Each generator returns a histogram (NumPy array); the public entry point is
:func:`generate_histogram`, dispatching on a :class:`ShapeFamily`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.rng import RandomState, ensure_rng
from ..exceptions import DataError


class ShapeFamily(str, enum.Enum):
    """Qualitative shape of a synthetic dataset."""

    #: Smooth growth/decay curve with mild noise (citation links over time).
    SMOOTH_GROWTH = "smooth_growth"
    #: Heavy-tailed attribute histogram with a long zero tail (income, expenses).
    HEAVY_TAIL = "heavy_tail"
    #: Bursty time series: background level plus sharp spikes (search trends).
    BURSTY = "bursty"
    #: Extremely sparse spikes on a mostly empty domain (network trace, capital loss).
    SPARSE_SPIKES = "sparse_spikes"
    #: Two-dimensional clustered point counts (geo-tagged tweets).
    CLUSTERED_2D = "clustered_2d"


@dataclass(frozen=True)
class SyntheticSpec:
    """Target statistics for one synthetic dataset."""

    name: str
    shape: Tuple[int, ...]
    scale: float
    zero_fraction: float
    family: ShapeFamily
    description: str = ""

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise DataError(f"scale must be positive, got {self.scale}")
        if not 0.0 <= self.zero_fraction < 1.0:
            raise DataError(
                f"zero_fraction must lie in [0, 1), got {self.zero_fraction}"
            )
        if any(int(s) <= 0 for s in self.shape):
            raise DataError(f"Invalid domain shape {self.shape}")

    @property
    def domain_size(self) -> int:
        """Total number of histogram cells."""
        return int(np.prod(self.shape))


# ---------------------------------------------------------------------------
# Density builders per family (all return an unnormalised density over the
# support, which is then sampled to match the target scale exactly).
# ---------------------------------------------------------------------------
def _support_size(spec: SyntheticSpec) -> int:
    support = int(round(spec.domain_size * (1.0 - spec.zero_fraction)))
    return max(1, min(spec.domain_size, support))


def _smooth_growth_density(size: int, rng: np.random.Generator) -> np.ndarray:
    positions = np.linspace(0.0, 1.0, size)
    # Logistic growth with a seasonal ripple and multiplicative noise.
    curve = 1.0 / (1.0 + np.exp(-8.0 * (positions - 0.4)))
    ripple = 1.0 + 0.2 * np.sin(positions * 24.0 * np.pi)
    noise = rng.lognormal(mean=0.0, sigma=0.2, size=size)
    return curve * ripple * noise + 1e-6


def _heavy_tail_density(size: int, rng: np.random.Generator) -> np.ndarray:
    ranks = np.arange(1, size + 1, dtype=np.float64)
    zipf = ranks ** (-1.1)
    noise = rng.lognormal(mean=0.0, sigma=0.5, size=size)
    return zipf * noise + 1e-9


def _bursty_density(size: int, rng: np.random.Generator) -> np.ndarray:
    background = rng.lognormal(mean=0.0, sigma=0.3, size=size) * 0.2
    density = background
    num_bursts = max(3, size // 64)
    centers = rng.integers(0, size, size=num_bursts)
    widths = rng.integers(1, max(2, size // 128), size=num_bursts)
    heights = rng.pareto(a=1.5, size=num_bursts) + 1.0
    positions = np.arange(size)
    for center, width, height in zip(centers, widths, heights):
        density = density + height * np.exp(-0.5 * ((positions - center) / width) ** 2)
    return density + 1e-9


def _sparse_spikes_density(size: int, rng: np.random.Generator) -> np.ndarray:
    return rng.pareto(a=1.2, size=size) + 0.05


def _clustered_2d_density(
    shape: Tuple[int, int], support_cells: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    rows, cols = shape
    num_clusters = max(3, min(12, (rows * cols) // 400 + 3))
    centers_r = rng.uniform(0, rows, size=num_clusters)
    centers_c = rng.uniform(0, cols, size=num_clusters)
    weights = rng.pareto(a=1.3, size=num_clusters) + 1.0
    spreads = rng.uniform(rows * 0.02 + 0.5, rows * 0.12 + 1.0, size=num_clusters)
    cell_rows = support_cells // cols
    cell_cols = support_cells % cols
    density = np.zeros(support_cells.shape[0], dtype=np.float64)
    for cr, cc, weight, spread in zip(centers_r, centers_c, weights, spreads):
        squared = (cell_rows - cr) ** 2 + (cell_cols - cc) ** 2
        density += weight * np.exp(-0.5 * squared / (spread**2))
    return density + 1e-6


def _choose_support(
    spec: SyntheticSpec, rng: np.random.Generator
) -> np.ndarray:
    """Choose which cells carry non-zero counts.

    Time-series-like families use a contiguous prefix-biased support (activity
    concentrated in parts of the timeline); attribute histograms and spatial
    data use supports biased towards low ranks / cluster centres, implemented
    as a weighted sample without replacement.
    """
    size = spec.domain_size
    support_size = _support_size(spec)
    if support_size >= size:
        return np.arange(size, dtype=np.int64)
    if spec.family in (ShapeFamily.SMOOTH_GROWTH, ShapeFamily.BURSTY):
        # Keep contiguous active blocks: pick block starts until enough cells.
        block = max(1, size // 64)
        cells: set[int] = set()
        while len(cells) < support_size:
            start = int(rng.integers(0, size))
            for offset in range(block):
                if len(cells) >= support_size:
                    break
                cells.add((start + offset) % size)
        return np.array(sorted(cells), dtype=np.int64)
    weights = 1.0 / (np.arange(size, dtype=np.float64) + 10.0)
    rng.shuffle(weights)
    probabilities = weights / weights.sum()
    return np.sort(
        rng.choice(size, size=support_size, replace=False, p=probabilities)
    ).astype(np.int64)


def generate_histogram(spec: SyntheticSpec, random_state: RandomState = None) -> np.ndarray:
    """Generate a histogram matching ``spec``'s scale and (approximate) sparsity.

    The total count equals ``round(spec.scale)`` exactly; the zero fraction is
    matched up to multinomial fluctuation (support cells may occasionally draw
    zero counts, which only increases sparsity marginally).
    """
    rng = ensure_rng(random_state)
    size = spec.domain_size
    support = _choose_support(spec, rng)

    if spec.family is ShapeFamily.SMOOTH_GROWTH:
        density = _smooth_growth_density(support.shape[0], rng)
    elif spec.family is ShapeFamily.HEAVY_TAIL:
        density = _heavy_tail_density(support.shape[0], rng)
    elif spec.family is ShapeFamily.BURSTY:
        density = _bursty_density(support.shape[0], rng)
    elif spec.family is ShapeFamily.SPARSE_SPIKES:
        density = _sparse_spikes_density(support.shape[0], rng)
    elif spec.family is ShapeFamily.CLUSTERED_2D:
        if len(spec.shape) != 2:
            raise DataError("CLUSTERED_2D requires a two-dimensional shape")
        density = _clustered_2d_density(
            (int(spec.shape[0]), int(spec.shape[1])), support, rng
        )
    else:  # pragma: no cover - enum is exhaustive
        raise DataError(f"Unknown shape family {spec.family}")

    probabilities = density / density.sum()
    total = int(round(spec.scale))
    counts_on_support = rng.multinomial(total, probabilities)
    histogram = np.zeros(size, dtype=np.float64)
    histogram[support] = counts_on_support.astype(np.float64)

    # Guarantee the support is actually non-empty where it matters: if the
    # multinomial left too many support cells at zero and the histogram became
    # much sparser than requested, move single records from the largest cells.
    target_nonzero = _support_size(spec)
    deficit = target_nonzero - int(np.count_nonzero(histogram))
    if deficit > 0:
        empty_support = support[histogram[support] == 0][:deficit]
        donors = np.argsort(histogram)[::-1]
        donor_index = 0
        for cell in empty_support:
            while histogram[donors[donor_index]] <= 1:
                donor_index = (donor_index + 1) % donors.shape[0]
            histogram[donors[donor_index]] -= 1
            histogram[cell] += 1
    return histogram
