"""Synthetic dataset catalogue calibrated to the paper's Table 1."""

from .catalog import (
    DATASET_SPECS,
    ONE_DIMENSIONAL_DATASETS,
    ONE_DIMENSIONAL_DOMAIN_SIZE,
    TWO_DIMENSIONAL_DATASETS,
    dataset_names,
    load_dataset,
    table1_statistics,
)
from .synthetic import ShapeFamily, SyntheticSpec, generate_histogram

__all__ = [
    "DATASET_SPECS",
    "ONE_DIMENSIONAL_DATASETS",
    "ONE_DIMENSIONAL_DOMAIN_SIZE",
    "ShapeFamily",
    "SyntheticSpec",
    "TWO_DIMENSIONAL_DATASETS",
    "dataset_names",
    "generate_histogram",
    "load_dataset",
    "table1_statistics",
]
