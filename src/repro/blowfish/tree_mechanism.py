"""Blowfish mechanisms through the exact tree transform (Theorem 4.3).

When the (reduced) policy graph is a tree, *any* ε-differentially private
mechanism applied to the transformed instance ``(W_G, x_G)`` yields an
``(ε, G)``-Blowfish private mechanism for ``(W, x)`` — including
data-dependent mechanisms such as DAWA, which is how the paper obtains its
best results on sparse data (Section 5.4).  For non-tree policies that admit a
low-stretch spanning tree (the θ-threshold policies via ``H^θ_k``), the same
construction runs on the spanner with budget ``ε / stretch``
(Lemma 4.5 / Corollary 4.6).

:class:`TreeTransformMechanism` packages the whole pipeline:

1. compute the transformed database ``x_G`` (subtree counts; prefix sums for
   the line policy);
2. estimate it with a pluggable ε-DP histogram estimator (Laplace, DAWA, ...);
3. optionally enforce the structural constraints of ``x_G``
   (non-decreasing along the root path for path policies, non-negativity,
   upper bound ``n``) — the consistency step of Section 5.4.2;
4. answer the workload as ``W_G x̃_G`` plus the public Case II offset.
"""

from __future__ import annotations

from typing import Callable, Literal, Optional

import numpy as np
import scipy.sparse as sp

from ..core.database import Database
from ..core.rng import RandomState
from ..core.workload import Workload
from ..exceptions import MechanismError, PolicyNotTreeError
from ..mechanisms.base import (
    HistogramMechanism,
    NoiseModel,
    WorkloadTransformCache,
    basis_noise_model,
)
from ..mechanisms.dawa import DawaMechanism
from ..mechanisms.laplace import LaplaceHistogram
from ..policy.graph import PolicyGraph
from ..policy.spanner import SpannerApproximation
from ..policy.transform import PolicyTransform
from ..policy.tree import TreeTransform
from ..postprocess.isotonic import isotonic_regression
from .base import BlowfishMechanism

EstimatorFactory = Callable[[float, int], HistogramMechanism]
ConsistencyMode = Literal["auto", "none", "monotone", "nonnegative"]


def laplace_estimator_factory(epsilon: float, num_coordinates: int) -> HistogramMechanism:
    """Default estimator: per-coordinate Laplace noise with sensitivity 1.

    Sensitivity 1 is correct because Blowfish neighbors of a tree policy map
    to transformed vectors at L1 distance exactly 1 (Lemma 4.9).
    """
    return LaplaceHistogram(epsilon=epsilon, sensitivity=1.0)


def dawa_estimator_factory(epsilon: float, num_coordinates: int) -> HistogramMechanism:
    """DAWA estimator over the transformed (edge-ordered) database."""
    return DawaMechanism(epsilon=epsilon, shape=(num_coordinates,), sensitivity=1.0)


class TreeTransformMechanism(BlowfishMechanism):
    """Run any DP histogram estimator on the tree-transformed instance.

    Parameters
    ----------
    policy:
        The policy graph the Blowfish guarantee refers to.
    epsilon:
        Blowfish privacy budget.
    estimator_factory:
        Builds the DP estimator for the transformed database; receives the
        *effective* budget (``ε`` or ``ε / stretch``) and the number of
        transformed coordinates.
    spanner:
        Optional spanning-tree approximation.  When given, the transform runs
        on ``spanner.spanner`` with budget ``ε / spanner.stretch``
        (Corollary 4.6); ``spanner.original`` must equal ``policy``.
    consistency:
        Post-processing of the noisy transformed database:

        * ``"monotone"`` — project onto non-decreasing sequences along the
          root path (only valid for path-shaped trees such as the line
          policy);
        * ``"nonnegative"`` — clamp to ``[0, n]`` (valid for every tree, since
          transformed values are subtree counts);
        * ``"auto"`` — monotone when the tree is a path, otherwise
          non-negative;
        * ``"none"`` — leave the estimate untouched.

    Notes
    -----
    **Serialisability contract.**  Instances pickle end-to-end (the engine's
    process-parallel execute backend ships them to worker processes, and the
    plan store persists them to disk): the shared transforms drop their lazy
    Gram factorisation and re-derive it deterministically on first use, and
    the workload-transform memo travels warm with a fresh lock.  One caveat
    is ``estimator_factory`` — it is stored as given, so passing a lambda or
    a closure produces a mechanism that answers fine in-process but cannot
    cross a process boundary (the engine rolls such a batch back with a
    serialisation error).  Use module-level factories like
    :func:`laplace_estimator_factory` / :func:`dawa_estimator_factory` when
    the mechanism must travel.
    """

    name = "TreeTransform"
    data_dependent = True

    def __init__(
        self,
        policy: PolicyGraph,
        epsilon: float,
        estimator_factory: EstimatorFactory = laplace_estimator_factory,
        spanner: Optional[SpannerApproximation] = None,
        consistency: ConsistencyMode = "auto",
        transform: Optional[PolicyTransform] = None,
    ) -> None:
        super().__init__(policy, epsilon, transform=transform)
        if consistency not in ("auto", "none", "monotone", "nonnegative"):
            raise MechanismError(f"Unknown consistency mode {consistency!r}")
        self._consistency: ConsistencyMode = consistency
        self._estimator_factory = estimator_factory
        self._spanner = spanner

        if spanner is not None:
            if spanner.original != policy:
                raise MechanismError(
                    "The spanner approximation was built for a different policy"
                )
            working_policy = spanner.spanner
            self._effective_epsilon = spanner.budget_for(epsilon)
        else:
            working_policy = policy
            self._effective_epsilon = epsilon

        self._working_transform = (
            self.transform if spanner is None else PolicyTransform(working_policy)
        )
        if not self._working_transform.is_tree():
            raise PolicyNotTreeError(
                "TreeTransformMechanism requires a tree policy (Theorem 4.3); "
                "pass a spanning-tree approximation for non-tree policies (Lemma 4.5)."
            )
        self._tree = TreeTransform(self._working_transform)
        self._monotone_order = self._tree.monotone_root_path_indices()
        self._workload_cache = WorkloadTransformCache(maxsize=8)

    # ------------------------------------------------------------- properties
    @property
    def effective_epsilon(self) -> float:
        """Budget handed to the DP estimator (``ε`` or ``ε / stretch``)."""
        return self._effective_epsilon

    @property
    def spanner(self) -> Optional[SpannerApproximation]:
        """The spanning-tree approximation in use, if any."""
        return self._spanner

    @property
    def tree(self) -> TreeTransform:
        """The tree transform of the working (tree) policy."""
        return self._tree

    # ------------------------------------------------------------------- API
    def _answer(
        self,
        workload: Workload,
        database: Database,
        random_state: RandomState,
    ) -> np.ndarray:
        transformed_database = self._tree.transform_database(database)
        estimator = self._estimator_factory(
            self._effective_epsilon, transformed_database.shape[0]
        )
        estimate = estimator.estimate_vector(transformed_database, random_state)
        estimate = self._apply_consistency(estimate, total=database.scale)

        transformed_workload = self._transformed_workload(workload)
        answers = np.asarray(transformed_workload @ estimate).ravel()
        return answers + self._working_transform.offset(workload, database)

    def estimate_transformed_database(
        self, database: Database, random_state: RandomState = None
    ) -> np.ndarray:
        """Expose the (consistent) private estimate of ``x_G`` for diagnostics."""
        transformed_database = self._tree.transform_database(database)
        estimator = self._estimator_factory(
            self._effective_epsilon, transformed_database.shape[0]
        )
        estimate = estimator.estimate_vector(transformed_database, random_state)
        return self._apply_consistency(estimate, total=database.scale)

    def noise_model(self, workload: Workload) -> Optional[NoiseModel]:
        """Noise profile of one invocation: ``W_G`` applied to the cell noise.

        The estimator perturbs the transformed database coordinate-wise, so
        the answers' noise is ``W_G · cell-noise`` — an exact linear factor
        model whenever the estimator can state its per-cell scales
        (:meth:`~repro.mechanisms.base.HistogramMechanism.noise_std_per_cell`)
        **and** no consistency projection runs.  Returns ``None`` for
        data-dependent estimators (DAWA).  With a consistency projection
        enabled the release is a *nonlinear* function of the draw, so the
        factor basis would fabricate cross-correlations; the model then
        keeps only the per-row stds — conservative marginals (projection
        onto a convex constraint set containing the truth never grows the
        error) with correlations honestly declared unknown.
        """
        transformed = self._transformed_workload(workload)
        estimator = self._estimator_factory(
            self._effective_epsilon, transformed.shape[1]
        )
        cell_stds = getattr(estimator, "noise_std_per_cell", lambda n: None)(
            transformed.shape[1]
        )
        if cell_stds is None:
            return None
        model = basis_noise_model(transformed @ sp.diags(cell_stds))
        if self._consistency != "none":
            return NoiseModel(stds=model.stds, basis=None)
        return model

    # ----------------------------------------------------------------- helper
    def _apply_consistency(self, estimate: np.ndarray, total: float) -> np.ndarray:
        mode = self._consistency
        if mode == "auto":
            mode = "monotone" if self._monotone_order is not None else "nonnegative"
        if mode == "none":
            return estimate
        if mode == "monotone":
            if self._monotone_order is None:
                raise MechanismError(
                    "Monotone consistency requires a path-shaped tree policy"
                )
            result = estimate.copy()
            ordered = estimate[self._monotone_order]
            projected = isotonic_regression(ordered, increasing=True)
            projected = np.clip(projected, 0.0, total)
            result[self._monotone_order] = projected
            return result
        # Non-negative (and at most n) clamping is valid for every tree because
        # transformed values are subtree counts.
        return np.clip(estimate, 0.0, total)

    def _transformed_workload(self, workload: Workload):
        # Signature-keyed and lock-guarded: cached plans are invoked from
        # concurrent engine flushes (see Mechanism's re-entrancy contract).
        # The compute itself resolves through the process-wide factorisation
        # store (keyed by transform digest + workload signature), so sibling
        # plans at other ε values — and worker-side re-hydrations — share
        # one W_G product per distinct content.
        return self._workload_cache.get_or_compute(
            workload, self._working_transform.transform_workload
        )
