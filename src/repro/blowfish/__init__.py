"""Policy-aware (Blowfish) private mechanisms — the paper's core contribution."""

from .algorithms import (
    NamedAlgorithm,
    blowfish_transformed_consistent,
    blowfish_transformed_dawa,
    blowfish_transformed_laplace,
    blowfish_transformed_laplace_matrix,
    blowfish_transformed_privelet_grid,
    dp_dawa_baseline,
    dp_laplace_baseline,
    dp_privelet_baseline,
)
from .base import BlowfishMechanism
from .equivalence import (
    cycle_has_no_isometric_tree_embedding,
    subgraph_approximation_budget,
    verify_answer_preservation,
    verify_sensitivity_equality,
    verify_tree_neighbor_preservation,
)
from .matrix_mechanism import (
    PolicyMatrixMechanism,
    transformed_laplace_mechanism,
    transformed_privelet_grid_mechanism,
)
from .planner import Plan, plan_mechanism
from .strategies import (
    edge_identity_strategy,
    grid_slab_groups,
    grid_slab_strategy,
    spanner_group_strategy,
    tensor_strategy,
)
from .tree_mechanism import (
    TreeTransformMechanism,
    dawa_estimator_factory,
    laplace_estimator_factory,
)

__all__ = [
    "BlowfishMechanism",
    "NamedAlgorithm",
    "Plan",
    "PolicyMatrixMechanism",
    "TreeTransformMechanism",
    "blowfish_transformed_consistent",
    "blowfish_transformed_dawa",
    "blowfish_transformed_laplace",
    "blowfish_transformed_laplace_matrix",
    "blowfish_transformed_privelet_grid",
    "cycle_has_no_isometric_tree_embedding",
    "dawa_estimator_factory",
    "dp_dawa_baseline",
    "dp_laplace_baseline",
    "dp_privelet_baseline",
    "edge_identity_strategy",
    "grid_slab_groups",
    "grid_slab_strategy",
    "laplace_estimator_factory",
    "plan_mechanism",
    "spanner_group_strategy",
    "subgraph_approximation_budget",
    "tensor_strategy",
    "transformed_laplace_mechanism",
    "transformed_privelet_grid_mechanism",
    "verify_answer_preservation",
    "verify_sensitivity_equality",
    "verify_tree_neighbor_preservation",
]
