"""Policy-aware mechanism selection.

The paper's message is that the *policy graph* should drive the choice of
mechanism: trees admit exact transformation and hence data-dependent
algorithms (Theorem 4.3), θ-threshold policies go through a low-stretch
spanner (Lemma 4.5 / Section 5.3), and everything else falls back to the
matrix-mechanism route (Theorem 4.1) with a strategy adapted to the structure
of the transformed workload (grid slabs for ``G^1_{k^d}``, identity
otherwise).  :func:`plan_mechanism` encodes exactly that decision procedure,
which is what a downstream user of the library would call when they only know
their policy and their workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

from ..exceptions import PolicyError
from ..policy.graph import PolicyGraph
from ..policy.spanner import SpannerApproximation, approximate_with_line_spanner
from ..policy.transform import PolicyTransform
from .algorithms import (
    NamedAlgorithm,
    blowfish_transformed_consistent,
    blowfish_transformed_dawa,
    blowfish_transformed_laplace,
    blowfish_transformed_laplace_matrix,
    blowfish_transformed_privelet_grid,
)
from .strategies import grid_slab_groups

Route = Literal["tree", "spanner", "grid-matrix", "matrix"]


@dataclass(frozen=True)
class Plan:
    """The planner's decision: which mechanism to run and why.

    Plans are **shareable**: the serving engine memoises one ``Plan`` per
    ``(domain, policy, planner-config)`` and invokes
    ``plan.algorithm.answer`` / ``answer_batch`` from concurrent flush
    threads.  The dataclass itself is frozen, and the constructed mechanisms
    honour the re-entrancy contract of
    :class:`~repro.mechanisms.base.Mechanism` (per-call state on the stack,
    lock-guarded internal memos), so no external synchronisation is needed to
    reuse a plan.
    """

    algorithm: NamedAlgorithm
    route: Route
    rationale: str
    spanner: Optional[SpannerApproximation] = None

    @property
    def name(self) -> str:
        """Name of the selected algorithm."""
        return self.algorithm.name


def _infer_line_threshold(policy: PolicyGraph) -> Optional[int]:
    """Detect a 1-D distance-threshold policy and return its θ (or ``None``)."""
    if policy.domain.ndim != 1 or policy.has_bottom:
        return None
    k = policy.domain.size
    max_span = 0
    spans = set()
    for u, v in policy.edges:
        span = abs(int(u) - int(v))
        spans.add(span)
        max_span = max(max_span, span)
    if max_span == 0:
        return None
    expected_edges = sum(k - span for span in range(1, max_span + 1))
    if spans == set(range(1, max_span + 1)) and policy.num_edges == expected_edges:
        return max_span
    return None


def _is_unit_grid(policy: PolicyGraph) -> bool:
    """Detect the unit grid policy ``G^1_{k^d}`` (slab decomposition succeeds)."""
    if policy.has_bottom or policy.domain.ndim < 2:
        return False
    try:
        grid_slab_groups(policy)
    except PolicyError:
        return False
    return True


def plan_mechanism(
    policy: PolicyGraph,
    epsilon: float,
    prefer_data_dependent: bool = True,
    consistency: bool = True,
    transform: Optional[PolicyTransform] = None,
) -> Plan:
    """Choose a Blowfish mechanism for ``policy`` following the paper's playbook.

    Parameters
    ----------
    policy:
        The Blowfish policy graph.
    epsilon:
        Blowfish privacy budget.
    prefer_data_dependent:
        When the policy (or its spanner) is a tree, prefer the DAWA-based
        data-dependent mechanism (Section 5.4) over the data-independent
        Laplace one.
    consistency:
        Apply the consistency post-processing when available.
    transform:
        Optional precomputed :class:`PolicyTransform` for ``policy``.  Passing
        one lets callers — notably the plan cache of :mod:`repro.engine` —
        share the transform (and its lazy Gram factorisation) between the
        planner's structure checks and the constructed mechanism instead of
        rebuilding it on both sides.
    """
    if transform is None:
        transform = PolicyTransform(policy)
    elif transform.policy != policy:
        raise PolicyError("The provided PolicyTransform was built for a different policy")

    if transform.is_tree():
        if prefer_data_dependent:
            algorithm = blowfish_transformed_dawa(
                policy, epsilon, consistency=consistency, transform=transform
            )
        elif consistency:
            algorithm = blowfish_transformed_consistent(policy, epsilon, transform=transform)
        else:
            algorithm = blowfish_transformed_laplace(policy, epsilon, transform=transform)
        return Plan(
            algorithm=algorithm,
            route="tree",
            rationale=(
                "The (reduced) policy graph is a tree, so transformational equivalence "
                "holds for every mechanism (Theorem 4.3) and data-dependent estimators "
                "may run directly on the transformed instance."
            ),
        )

    theta = _infer_line_threshold(policy)
    if theta is not None:
        spanner = approximate_with_line_spanner(policy, theta)
        if prefer_data_dependent:
            algorithm = blowfish_transformed_dawa(
                policy, epsilon, spanner=spanner, consistency=consistency,
                transform=transform,
            )
        else:
            algorithm = blowfish_transformed_laplace(
                policy, epsilon, spanner=spanner, transform=transform
            )
        return Plan(
            algorithm=algorithm,
            route="spanner",
            rationale=(
                f"The policy is a 1-D distance-threshold graph with θ={theta}; the "
                f"spanner H^θ_k has stretch {spanner.stretch}, so the tree route runs "
                f"with budget ε/{spanner.stretch} (Lemma 4.5 / Corollary 4.6)."
            ),
            spanner=spanner,
        )

    if _is_unit_grid(policy):
        algorithm = blowfish_transformed_privelet_grid(policy, epsilon, transform=transform)
        return Plan(
            algorithm=algorithm,
            route="grid-matrix",
            rationale=(
                "The policy is the unit grid G^1_{k^d}, which is not tree-like; the "
                "matrix-mechanism route (Theorem 4.1) with the per-slab Privelet "
                "strategy of Section 5.2.2 applies."
            ),
        )

    algorithm = blowfish_transformed_laplace_matrix(policy, epsilon, transform=transform)
    return Plan(
        algorithm=algorithm,
        route="matrix",
        rationale=(
            "No special structure was detected; the generic matrix-mechanism route "
            "(Theorem 4.1) with the edge-identity strategy applies to every policy."
        ),
    )
