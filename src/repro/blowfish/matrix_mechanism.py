"""Blowfish matrix mechanisms (Theorem 4.1).

Matrix mechanisms are data independent, so transformational equivalence holds
for *every* policy graph: the mechanism

    M(W, x) = W x + W_G A⁺ Lap(Δ_A / ε)^p

is ``(ε, G)``-Blowfish private whenever

* ``W_G = W' P_G`` is the transformed workload,
* ``A`` is an edge-space measurement strategy whose row space contains the
  rows of ``W_G`` (so the mean shift caused by any single policy-edge change
  can be expressed through the measurements), and
* ``Δ_A`` is the largest L1 column norm of ``A`` — the change of the
  measurements when one record moves across one policy edge.

This is exactly Equation 2 of the paper seen from the transformed side, and it
is the route the paper uses for the grid policy ``G^1_{k²}`` where no tree
transform exists ("Transformed + Privelet" in Section 6).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np
import scipy.sparse as sp

from ..core.database import Database
from ..core.rng import RandomState
from ..core.workload import Workload
from ..exceptions import MechanismError
from ..mechanisms.base import (
    NoiseModel,
    WorkloadTransformCache,
    basis_noise_model,
    laplace_noise,
)
from ..mechanisms.strategies import Strategy
from ..policy.graph import PolicyGraph
from ..policy.transform import PolicyTransform
from .base import BlowfishMechanism
from .strategies import edge_identity_strategy, grid_slab_strategy

StrategyBuilder = Callable[[PolicyTransform], Strategy]


class PolicyMatrixMechanism(BlowfishMechanism):
    """Matrix mechanism calibrated to the policy-specific sensitivity.

    Parameters
    ----------
    policy:
        The Blowfish policy graph.
    epsilon:
        Blowfish privacy budget.
    strategy:
        Either an explicit edge-space :class:`Strategy` (its number of columns
        must equal the number of policy edges) or a callable that builds one
        from the policy transform.  Defaults to the edge-identity strategy,
        i.e. "Transformed + Laplace".
    budget_fraction:
        Fraction of ``epsilon`` actually used by the measurements.  The
        default 1 is correct when the strategy is used directly on the policy;
        spanner-based constructions pass ``1 / stretch`` (Corollary 4.6).

    Notes
    -----
    The mechanism is data independent; its error does not depend on the
    database, only on the reconstruction ``W_G A⁺`` and the noise scale
    ``Δ_A / ε``.

    **Serialisability contract.**  Instances pickle end-to-end: a strategy
    *builder* callable is applied at construction and never stored (only the
    built :class:`~repro.mechanisms.strategies.Strategy` — sparse matrices —
    travels), the shared transform re-derives its factorisation lazily, and
    the workload-transform memo re-hydrates with a fresh lock.  This is what
    lets the serving engine ship matrix-mechanism plans to worker processes
    and persist them across restarts.
    """

    name = "PolicyMatrixMechanism"
    data_dependent = False

    def __init__(
        self,
        policy: PolicyGraph,
        epsilon: float,
        strategy: Optional[Strategy | StrategyBuilder] = None,
        budget_fraction: float = 1.0,
        transform: Optional[PolicyTransform] = None,
    ) -> None:
        super().__init__(policy, epsilon, transform=transform)
        if not 0 < budget_fraction <= 1:
            raise MechanismError(
                f"budget_fraction must be in (0, 1], got {budget_fraction}"
            )
        self._budget_fraction = float(budget_fraction)
        if strategy is None:
            built = edge_identity_strategy(self.transform)
        elif isinstance(strategy, Strategy):
            built = strategy
        else:
            built = strategy(self.transform)
        if built.num_columns != self.transform.num_edges:
            raise MechanismError(
                f"Strategy has {built.num_columns} columns but the policy has "
                f"{self.transform.num_edges} edges"
            )
        self._strategy = built
        self._workload_cache = WorkloadTransformCache(maxsize=8)

    # ------------------------------------------------------------- properties
    @property
    def strategy(self) -> Strategy:
        """The edge-space measurement strategy ``A``."""
        return self._strategy

    @property
    def effective_epsilon(self) -> float:
        """Budget actually used to scale the noise (``ε · budget_fraction``)."""
        return self.epsilon * self._budget_fraction

    # ------------------------------------------------------------------- API
    def _answer(
        self,
        workload: Workload,
        database: Database,
        random_state: RandomState,
    ) -> np.ndarray:
        transformed = self._transformed_workload(workload)
        noise = laplace_noise(
            self._strategy.sensitivity / self.effective_epsilon,
            self._strategy.num_measurements,
            random_state,
        )
        correction = self._strategy.apply_pseudo_inverse(noise)
        true_answers = workload.answer(database)
        return true_answers + np.asarray(transformed @ correction).ravel()

    def expected_error_per_query(self, workload: Workload) -> np.ndarray:
        """Exact expected squared error of every query (dense; small workloads only)."""
        transformed = self._transformed_workload(workload)
        dense_transformed = np.asarray(transformed.todense())
        dense_strategy = np.asarray(self._strategy.matrix.todense())
        pseudo = np.linalg.pinv(dense_strategy)
        reconstruction = dense_transformed @ pseudo
        scale = self._strategy.sensitivity / self.effective_epsilon
        return 2.0 * (scale**2) * np.sum(reconstruction**2, axis=1)

    def check_supports(self, workload: Workload, tolerance: float = 1e-6) -> bool:
        """Verify ``W_G A⁺ A = W_G`` (dense; small workloads only)."""
        transformed = np.asarray(self._transformed_workload(workload).todense())
        dense_strategy = np.asarray(self._strategy.matrix.todense())
        pseudo = np.linalg.pinv(dense_strategy)
        return bool(
            np.allclose(transformed @ pseudo @ dense_strategy, transformed, atol=tolerance)
        )

    def noise_model(self, workload: Workload) -> Optional[NoiseModel]:
        """Exact noise profile of one invocation: ``W_G A⁺`` at Laplace scale.

        The mechanism's noise is ``W_G A⁺ η`` with ``η`` i.i.d.
        Laplace(Δ_A/ε), so the factor basis is ``√2 (Δ_A/ε) · W_G A⁺`` for
        unit-variance factors.  Memoised per workload signature alongside
        the transformed workload.  Strategies without an explicit
        pseudo-inverse derive one through the process-wide factorisation
        store (once per distinct strategy matrix, shared across every plan
        and ε); only strategies too large to invert densely fall back to
        per-row LSQR, and only truly huge workloads on those degrade to the
        ``2/ε²`` proxy (``None``).
        """
        cache = getattr(self, "_noise_cache", None)
        if cache is None:
            # Lazily (re)created so plans pickled before this attribute
            # existed keep answering after re-hydration.
            cache = self._noise_cache = WorkloadTransformCache(maxsize=8)
        return cache.get_or_compute(workload, self._compute_noise_model)

    #: Last-resort safety valve: with no explicit pseudo-inverse *and* a
    #: strategy too large for the store's dense derivation, the factor basis
    #: costs one iterative solve per workload row; above this many rows the
    #: model is skipped (proxy fallback) rather than stalling the execute
    #: stage.  Raised from the PR 4 value of 512 now that the common wide
    #: strategies resolve through the store-cached ``A⁺`` instead.
    _NOISE_MODEL_LSQR_ROW_LIMIT = 4096

    #: Maximum strategy size (rows × columns) the store derives a dense
    #: pseudo-inverse for.  ``A⁺`` is generally dense, so the cap bounds both
    #: the one-off SVD cost and the resident artifact (~32 MiB of float64).
    _STRATEGY_PINV_DENSE_CELLS = 1 << 22

    def _strategy_pseudo_inverse(self) -> Optional[sp.csr_matrix]:
        """The strategy's ``A⁺``: explicit, store-derived, or ``None``.

        The derived inverse is keyed by the strategy matrix's content digest
        in the process-wide factorisation store, so the (dense, cubic) pinv
        runs once per distinct strategy per process no matter how many
        plans, workloads or ε values reuse it.
        """
        if self._strategy.pseudo_inverse is not None:
            return self._strategy.pseudo_inverse
        matrix = self._strategy.matrix
        if matrix.shape[0] * matrix.shape[1] > self._STRATEGY_PINV_DENSE_CELLS:
            return None
        handle = getattr(self, "_strategy_pinv_handle", None)
        if handle is None:
            from ..engine.factorisation import get_store, matrix_digest

            handle = get_store().get_or_build(
                "strategy-pinv",
                matrix_digest(matrix),
                lambda: sp.csr_matrix(np.linalg.pinv(matrix.toarray())),
            )
            self._strategy_pinv_handle = handle
        return handle.value

    def __getstate__(self) -> dict:
        """Pickle support: factorisation-store handles never travel.

        The derived ``A⁺`` handle re-resolves lazily (by content digest) in
        the receiving process, so worker-side re-hydration shares the
        worker-local store instead of shipping a dense inverse.
        """
        state = self.__dict__.copy()
        state.pop("_strategy_pinv_handle", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.pop("_strategy_pinv_handle", None)

    def _compute_noise_model(self, workload: Workload) -> Optional[NoiseModel]:
        transformed = self._transformed_workload(workload)
        pseudo_inverse = self._strategy_pseudo_inverse()
        if pseudo_inverse is not None:
            reconstruction = sp.csr_matrix(transformed @ pseudo_inverse)
        elif transformed.shape[0] > self._NOISE_MODEL_LSQR_ROW_LIMIT:
            return None
        else:
            # Row i of W_G A⁺ is (Aᵀ)⁺ w_i: the minimum-norm solution of
            # Aᵀ z = w_i, solved iteratively when no explicit A⁺ exists.
            strategy_t = sp.csc_matrix(self._strategy.matrix.T)
            rows = [
                sp.linalg.lsqr(
                    strategy_t,
                    np.asarray(transformed.getrow(i).todense()).ravel(),
                    atol=1e-12,
                    btol=1e-12,
                )[0]
                for i in range(transformed.shape[0])
            ]
            reconstruction = sp.csr_matrix(np.vstack(rows)) if rows else sp.csr_matrix(
                (0, self._strategy.num_measurements)
            )
        scale = np.sqrt(2.0) * self._strategy.sensitivity / self.effective_epsilon
        return basis_noise_model(reconstruction * scale)

    # ----------------------------------------------------------------- helper
    def _transformed_workload(self, workload: Workload) -> sp.csr_matrix:
        # Signature-keyed and lock-guarded: cached plans are invoked from
        # concurrent engine flushes (see Mechanism's re-entrancy contract).
        return self._workload_cache.get_or_compute(
            workload, self.transform.transform_workload
        )


def transformed_laplace_mechanism(
    policy: PolicyGraph,
    epsilon: float,
    budget_fraction: float = 1.0,
    transform: Optional[PolicyTransform] = None,
) -> PolicyMatrixMechanism:
    """"Transformed + Laplace": measure every transformed coordinate with Laplace noise.

    On the line policy this is Algorithm 1 with the Laplace estimate of the
    prefix sums; its per-range-query error is Θ(1/ε²) (Theorem 5.2).
    """
    mechanism = PolicyMatrixMechanism(
        policy=policy,
        epsilon=epsilon,
        strategy=edge_identity_strategy,
        budget_fraction=budget_fraction,
        transform=transform,
    )
    mechanism.name = "Transformed+Laplace"
    return mechanism


def transformed_privelet_grid_mechanism(
    policy: PolicyGraph,
    epsilon: float,
    transform: Optional[PolicyTransform] = None,
) -> PolicyMatrixMechanism:
    """"Transformed + Privelet" for the grid policy ``G^1_{k^d}`` (Theorem 5.4).

    Measures every slab of grid edges with a (d-1)-dimensional Haar strategy;
    the per-query error is ``O(d log^{3(d-1)} k / ε²)``.
    """
    mechanism = PolicyMatrixMechanism(
        policy=policy,
        epsilon=epsilon,
        strategy=lambda transform: grid_slab_strategy(transform),
        transform=transform,
    )
    mechanism.name = "Transformed+Privelet"
    return mechanism
