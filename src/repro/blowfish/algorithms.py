"""Named algorithms of the paper's evaluation (Section 6).

The experiments compare ``ε/2``-differentially private baselines against
``(ε, G)``-Blowfish mechanisms.  This module provides one constructor per
named algorithm so that the experiment harness, the examples and downstream
users all build exactly the same configurations:

Differentially private baselines (run at ``ε/2`` as in the paper):

* ``Laplace``      — :func:`dp_laplace_baseline`
* ``Privelet``     — :func:`dp_privelet_baseline`
* ``Dawa``         — :func:`dp_dawa_baseline`

Blowfish mechanisms (run at the full ``ε``):

* ``Transformed + Laplace``       — :func:`blowfish_transformed_laplace`
* ``Transformed + ConsistentEst`` — :func:`blowfish_transformed_consistent`
* ``Trans + Dawa (+ Cons)``       — :func:`blowfish_transformed_dawa`
* ``Transformed + Privelet``      — :func:`blowfish_transformed_privelet_grid`

Every constructor returns an object exposing ``name``, ``data_dependent`` and
``answer(workload, database, random_state)``, so callers can mix baselines and
Blowfish mechanisms freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.database import Database
from ..core.rng import RandomState
from ..core.workload import Workload
from ..exceptions import MechanismError
from ..mechanisms.base import Mechanism
from ..mechanisms.dawa import DawaMechanism
from ..mechanisms.laplace import LaplaceHistogram
from ..mechanisms.privelet import PriveletMechanism
from ..policy.graph import PolicyGraph
from ..policy.spanner import SpannerApproximation, approximate_with_line_spanner
from ..policy.transform import PolicyTransform
from .matrix_mechanism import (
    PolicyMatrixMechanism,
    transformed_laplace_mechanism,
    transformed_privelet_grid_mechanism,
)
from .tree_mechanism import (
    TreeTransformMechanism,
    dawa_estimator_factory,
    laplace_estimator_factory,
)


@dataclass
class NamedAlgorithm:
    """A uniformly shaped handle on a baseline or Blowfish mechanism."""

    name: str
    mechanism: object
    data_dependent: bool

    def answer(
        self,
        workload: Workload,
        database: Database,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Noisy workload answers from the wrapped mechanism."""
        return self.mechanism.answer(workload, database, random_state)

    def answer_batch(
        self,
        workloads: Sequence[Workload],
        database: Database,
        random_state: RandomState = None,
    ) -> list[np.ndarray]:
        """Answer several workloads in one mechanism invocation (one ε spend)."""
        return self.mechanism.answer_batch(workloads, database, random_state)

    def noise_model(self, workload: Workload):
        """The wrapped mechanism's honest noise profile, or ``None``.

        ``None`` covers mechanisms predating the metadata API and any
        failure computing the model — metadata is advisory, so it must
        never turn a valid release into a refusal.
        """
        hook = getattr(self.mechanism, "noise_model", None)
        if hook is None:
            return None
        try:
            return hook(workload)
        except Exception:
            return None

    def answer_batch_with_noise(
        self,
        workloads: Sequence[Workload],
        database: Database,
        random_state: RandomState = None,
    ):
        """:meth:`answer_batch` plus the invocation's noise metadata."""
        hook = getattr(self.mechanism, "answer_batch_with_noise", None)
        if hook is None:
            return self.answer_batch(workloads, database, random_state), None
        return hook(workloads, database, random_state)


# ---------------------------------------------------------------------------
# Differentially private baselines (ε/2, matching the paper's comparison).
# ---------------------------------------------------------------------------
def dp_laplace_baseline(epsilon: float, dp_fraction: float = 0.5) -> NamedAlgorithm:
    """The ``ε/2``-DP Laplace (identity-strategy) baseline for histograms."""
    mechanism: Mechanism = LaplaceHistogram(epsilon * dp_fraction)
    return NamedAlgorithm(name="Laplace", mechanism=mechanism, data_dependent=False)


def dp_privelet_baseline(
    epsilon: float, shape: Sequence[int], dp_fraction: float = 0.5
) -> NamedAlgorithm:
    """The ``ε/2``-DP Privelet baseline for range queries."""
    mechanism = PriveletMechanism(epsilon * dp_fraction, shape)
    return NamedAlgorithm(name="Privelet", mechanism=mechanism, data_dependent=False)


def dp_dawa_baseline(
    epsilon: float, shape: Sequence[int], dp_fraction: float = 0.5
) -> NamedAlgorithm:
    """The ``ε/2``-DP DAWA baseline (data dependent)."""
    mechanism = DawaMechanism(epsilon * dp_fraction, shape)
    return NamedAlgorithm(name="Dawa", mechanism=mechanism, data_dependent=True)


# ---------------------------------------------------------------------------
# Blowfish mechanisms.
# ---------------------------------------------------------------------------
def _spanner_for(
    policy: PolicyGraph, spanner: Optional[SpannerApproximation], theta: Optional[int]
) -> Optional[SpannerApproximation]:
    """Resolve the spanner to use: an explicit one, one built from θ, or none."""
    if spanner is not None:
        return spanner
    if theta is not None and theta > 1:
        if policy.domain.ndim != 1:
            raise MechanismError(
                "Automatic spanner construction is only available for 1-D θ-threshold "
                "policies; pass an explicit SpannerApproximation otherwise"
            )
        return approximate_with_line_spanner(policy, theta)
    return None


def blowfish_transformed_laplace(
    policy: PolicyGraph,
    epsilon: float,
    spanner: Optional[SpannerApproximation] = None,
    theta: Optional[int] = None,
    transform: Optional[PolicyTransform] = None,
) -> NamedAlgorithm:
    """"Transformed + Laplace" (Algorithm 1 / Section 5.3.1 with the identity strategy).

    For tree policies this adds Laplace noise of scale ``1/ε`` to every
    transformed coordinate; for θ-threshold policies the same runs on the
    ``H^θ_k`` spanner with budget ``ε / stretch``.
    """
    resolved = _spanner_for(policy, spanner, theta)
    mechanism = TreeTransformMechanism(
        policy=policy,
        epsilon=epsilon,
        estimator_factory=laplace_estimator_factory,
        spanner=resolved,
        consistency="none",
        transform=transform,
    )
    return NamedAlgorithm(
        name="Transformed+Laplace", mechanism=mechanism, data_dependent=False
    )


def blowfish_transformed_consistent(
    policy: PolicyGraph,
    epsilon: float,
    spanner: Optional[SpannerApproximation] = None,
    theta: Optional[int] = None,
    transform: Optional[PolicyTransform] = None,
) -> NamedAlgorithm:
    """"Transformed + ConsistentEst": Laplace on ``x_G`` plus monotone consistency."""
    resolved = _spanner_for(policy, spanner, theta)
    mechanism = TreeTransformMechanism(
        policy=policy,
        epsilon=epsilon,
        estimator_factory=laplace_estimator_factory,
        spanner=resolved,
        consistency="auto",
        transform=transform,
    )
    return NamedAlgorithm(
        name="Transformed+ConsistentEst", mechanism=mechanism, data_dependent=True
    )


def blowfish_transformed_dawa(
    policy: PolicyGraph,
    epsilon: float,
    spanner: Optional[SpannerApproximation] = None,
    theta: Optional[int] = None,
    consistency: bool = True,
    transform: Optional[PolicyTransform] = None,
) -> NamedAlgorithm:
    """"Trans + Dawa (+ Cons)": DAWA on the transformed database (Section 5.4.1)."""
    resolved = _spanner_for(policy, spanner, theta)
    mechanism = TreeTransformMechanism(
        policy=policy,
        epsilon=epsilon,
        estimator_factory=dawa_estimator_factory,
        spanner=resolved,
        consistency="auto" if consistency else "none",
        transform=transform,
    )
    name = "Trans+Dawa+Cons" if consistency else "Trans+Dawa"
    return NamedAlgorithm(name=name, mechanism=mechanism, data_dependent=True)


def blowfish_transformed_privelet_grid(
    policy: PolicyGraph, epsilon: float, transform: Optional[PolicyTransform] = None
) -> NamedAlgorithm:
    """"Transformed + Privelet" for the grid policy ``G^1_{k^d}`` (Theorem 5.4)."""
    mechanism = transformed_privelet_grid_mechanism(policy, epsilon, transform=transform)
    return NamedAlgorithm(
        name="Transformed+Privelet", mechanism=mechanism, data_dependent=False
    )


def blowfish_transformed_laplace_matrix(
    policy: PolicyGraph,
    epsilon: float,
    budget_fraction: float = 1.0,
    transform: Optional[PolicyTransform] = None,
) -> NamedAlgorithm:
    """Data-independent "Transformed + Laplace" through the matrix-mechanism route.

    Unlike :func:`blowfish_transformed_laplace` this works for *any* policy
    graph (Theorem 4.1), at the price of never exploiting data-dependent
    structure.
    """
    mechanism = transformed_laplace_mechanism(
        policy, epsilon, budget_fraction, transform=transform
    )
    return NamedAlgorithm(
        name="Transformed+Laplace(MM)", mechanism=mechanism, data_dependent=False
    )
