"""Executable statements of the paper's equivalence theorems.

These helpers do not add new mechanisms; they *verify* the claims of
Section 4 numerically so that the test-suite, the examples and downstream
users can check a policy/workload/database triple against the theory:

* :func:`verify_answer_preservation` — ``W x = W_G x_G + c`` (the invariant
  behind both Theorem 4.1 and Theorem 4.3);
* :func:`verify_sensitivity_equality` — ``Δ_W(G) = Δ_{W_G}`` (Lemma 4.7);
* :func:`verify_tree_neighbor_preservation` — Blowfish neighbors map to
  unbounded-DP neighbors and vice versa when the policy is a tree
  (Lemma 4.9 / Claim 4.2);
* :func:`subgraph_approximation_budget` — the ``ε / ℓ`` budget split of
  Corollary 4.6;
* :func:`cycle_has_no_isometric_tree_embedding` — the obstruction behind the
  negative result (Theorem 4.4).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.database import Database
from ..core.sensitivity import unbounded_sensitivity
from ..core.workload import Workload
from ..exceptions import PolicyError
from ..policy.graph import PolicyGraph, is_bottom
from ..policy.metric import embedding_stretch_and_shrink, tree_embedding
from ..policy.spanner import SpannerApproximation
from ..policy.transform import PolicyTransform
from ..policy.tree import TreeTransform


def verify_answer_preservation(
    policy: PolicyGraph,
    workload: Workload,
    database: Database,
    tolerance: float = 1e-6,
) -> bool:
    """Check ``W x = W_G x_G + c(W, n)`` for one instance."""
    transform = PolicyTransform(policy)
    instance = transform.transform_instance(workload, database)
    return bool(np.allclose(workload.answer(database), instance.true_answers(), atol=tolerance))


def verify_sensitivity_equality(
    policy: PolicyGraph, workload: Workload, tolerance: float = 1e-9
) -> bool:
    """Check Lemma 4.7: the policy sensitivity of ``W`` equals the DP sensitivity of ``W_G``."""
    transform = PolicyTransform(policy)
    direct = transform.policy_sensitivity(workload)
    via_transform = unbounded_sensitivity(transform.transform_workload(workload))
    return bool(abs(direct - via_transform) <= tolerance * max(1.0, abs(direct)))


def verify_tree_neighbor_preservation(
    policy: PolicyGraph, database: Database
) -> bool:
    """Check Lemma 4.9 on every policy edge with at least one record available.

    For a tree policy, moving one record across any policy edge must change
    the transformed database in exactly one coordinate by exactly one.
    """
    transform = PolicyTransform(policy)
    tree = TreeTransform(transform)
    checked = 0
    for edge_index, (u, v) in enumerate(policy.edges):
        source = v if is_bottom(u) else u
        if is_bottom(source):
            continue
        if database.counts[int(source)] < 1:
            continue
        if not tree.verify_neighbor_preservation(database, edge_index):
            return False
        checked += 1
    if checked == 0:
        raise PolicyError(
            "The database has no record adjacent to any policy edge; nothing to verify"
        )
    return True


def subgraph_approximation_budget(
    spanner: SpannerApproximation, epsilon: float
) -> Tuple[float, int]:
    """The (budget, stretch) pair realising Corollary 4.6.

    Running any ``(ε', G')``-Blowfish mechanism with ``ε' = ε / ℓ`` on the
    spanner ``G'`` yields an ``(ε, G)``-Blowfish mechanism on the original
    policy.
    """
    return spanner.budget_for(epsilon), spanner.stretch


def cycle_has_no_isometric_tree_embedding(policy: PolicyGraph) -> bool:
    """Return ``True`` when the ``P_G``-induced tree embedding cannot be isometric.

    For policies whose reduced graph is not a tree this returns ``True``
    vacuously (no tree embedding exists through ``P_G``); for tree policies it
    checks the stretch/shrink of the actual embedding.  Combined with
    Theorem 4.4 this is the executable form of the negative result: a cycle
    policy admits no exact transformation, only the ``ℓ``-approximate one.
    """
    transform = PolicyTransform(policy)
    if not transform.is_tree():
        return True
    embedding = tree_embedding(policy)
    stretch_value, shrink_value = embedding_stretch_and_shrink(policy, embedding)
    return not (np.isclose(stretch_value, 1.0) and np.isclose(shrink_value, 1.0))
