"""Edge-space measurement strategies for Blowfish matrix mechanisms (Section 5).

The transformed workload ``W_G`` lives over the policy *edges*; the Section 5
strategies measure well-chosen groups of edges:

* :func:`edge_identity_strategy` — measure every edge value once.  On tree
  policies the edge values are subtree counts (prefix sums for the line
  graph), so this is exactly Algorithm 1's "Transformed + Laplace".
* :func:`grid_slab_strategy` — for the grid policy ``G^1_{k^d}``, partition
  the edges into *slabs*: the edges pointing along axis ``a`` that share the
  same level ``j`` along that axis form a ``(d-1)``-dimensional grid (the
  "rows of vertical edges" of Figure 5b).  Each slab is measured with its own
  ``(d-1)``-dimensional strategy (tensor Haar / Privelet by default); slabs
  are disjoint, so the sensitivity is the per-slab sensitivity (parallel
  composition) and a transformed range query touches ``2d`` slab ranges
  (Lemma 5.1, Theorem 5.4).
* :func:`spanner_group_strategy` — for the 1-D threshold spanner ``H^θ_k``
  (Figure 6d), measure every group of θ edges hanging off one red vertex with
  its own 1-D strategy; groups are disjoint (Theorem 5.5).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.domain import Domain
from ..exceptions import PolicyError
from ..mechanisms.strategies import (
    Strategy,
    block_diagonal_strategy,
    haar_strategy,
    identity_strategy,
    kron_strategy,
)
from ..policy.graph import PolicyGraph, is_bottom
from ..policy.spanner import line_spanner_groups
from ..policy.transform import PolicyTransform

StrategyFactory = Callable[[int], Strategy]


def strategy_digest(strategy: Strategy) -> str:
    """Content digest of a strategy's measurement matrix.

    The key under which the process-wide
    :class:`~repro.engine.factorisation.FactorisationStore` shares derived
    artifacts (the dense pseudo-inverse ``A⁺``) between every mechanism
    built over the same matrix content — two mechanisms at different ε, or
    in different plan caches, or re-hydrated in a worker process, all
    resolve to one artifact per process.
    """
    from ..engine.factorisation import matrix_digest

    return matrix_digest(strategy.matrix)


def edge_identity_strategy(transform: PolicyTransform) -> Strategy:
    """Measure every transformed-domain (edge) coordinate once."""
    return identity_strategy(transform.num_edges)


def tensor_strategy(shape: Sequence[int], per_axis: StrategyFactory) -> Strategy:
    """Tensor-product strategy over a multi-dimensional block of coordinates."""
    shape = [int(s) for s in shape]
    if not shape:
        raise PolicyError("tensor_strategy needs at least one dimension")
    strategy: Optional[Strategy] = None
    for extent in shape:
        axis_strategy = per_axis(extent)
        strategy = (
            axis_strategy
            if strategy is None
            else kron_strategy(strategy, axis_strategy)
        )
    assert strategy is not None
    return strategy


def grid_slab_groups(policy: PolicyGraph) -> List[Tuple[List[int], Tuple[int, ...]]]:
    """Partition the edges of a unit grid policy ``G^1_{k^d}`` into slabs.

    Every edge of the policy connects two cells differing by exactly 1 along a
    single axis ``a``; the slab of an edge is identified by ``(a, j)`` where
    ``j`` is the smaller coordinate along ``a``.  Within a slab the edges form
    a full ``(d-1)``-dimensional grid indexed by the remaining coordinates and
    are returned in row-major order of those coordinates, together with the
    slab's shape.

    Raises :class:`~repro.exceptions.PolicyError` for edges that are not
    unit-grid edges (θ > 1 policies must go through a spanner instead).
    """
    domain = policy.domain
    slabs: Dict[Tuple[int, int], List[Tuple[Tuple[int, ...], int]]] = {}
    for edge_index, (u, v) in enumerate(policy.edges):
        if is_bottom(u) or is_bottom(v):
            raise PolicyError("Grid slab decomposition expects a bounded policy (no bottom)")
        cell_u = np.array(domain.cell_of(int(u)))
        cell_v = np.array(domain.cell_of(int(v)))
        difference = cell_v - cell_u
        nonzero_axes = np.nonzero(difference)[0]
        if nonzero_axes.size != 1 or abs(int(difference[nonzero_axes[0]])) != 1:
            raise PolicyError(
                "Grid slab decomposition requires unit-grid edges (policy G^1); "
                f"edge {edge_index} connects cells {tuple(cell_u)} and {tuple(cell_v)}"
            )
        axis = int(nonzero_axes[0])
        level = int(min(cell_u[axis], cell_v[axis]))
        other = tuple(int(c) for i, c in enumerate(cell_u) if i != axis)
        slabs.setdefault((axis, level), []).append((other, edge_index))

    groups: List[Tuple[List[int], Tuple[int, ...]]] = []
    for axis, level in sorted(slabs):
        entries = sorted(slabs[(axis, level)])
        slab_shape = tuple(
            extent for i, extent in enumerate(domain.shape) if i != axis
        )
        expected = int(np.prod(slab_shape)) if slab_shape else 1
        if len(entries) != expected:
            raise PolicyError(
                f"Slab (axis={axis}, level={level}) has {len(entries)} edges, expected "
                f"{expected}; the policy is not a full unit grid"
            )
        groups.append(([edge_index for _, edge_index in entries], slab_shape))
    return groups


def grid_slab_strategy(
    transform: PolicyTransform,
    per_axis_strategy: StrategyFactory = haar_strategy,
) -> Strategy:
    """The Section 5.2.2 strategy: one ``(d-1)``-D strategy per slab of grid edges.

    Parameters
    ----------
    transform:
        Policy transform of a unit grid policy ``G^1_{k^d}``.
    per_axis_strategy:
        Factory building the 1-D strategy tensored within each slab; the
        default Haar strategy reproduces "Transformed + Privelet", while
        :func:`repro.mechanisms.strategies.identity_strategy` gives the
        cheaper "Transformed + Laplace" variant.

    Notes
    -----
    Slabs partition the edge set, so the strategy's sensitivity equals the
    per-slab sensitivity — the parallel composition of Theorem 5.4.  A
    transformed ``d``-dimensional range query is the signed sum of at most
    ``2d`` ``(d-1)``-dimensional range queries, one per face, each living in a
    single slab (Lemma 5.1).
    """
    groups = grid_slab_groups(transform.policy)
    blocks = []
    for edge_indices, slab_shape in groups:
        shape = slab_shape if slab_shape else (1,)
        blocks.append((edge_indices, tensor_strategy(shape, per_axis_strategy)))
    return block_diagonal_strategy(
        blocks, num_columns=transform.num_edges, name="grid-slabs"
    )


def spanner_group_strategy(
    spanner_transform: PolicyTransform,
    domain: Domain,
    theta: int,
    per_group_strategy: StrategyFactory = haar_strategy,
) -> Strategy:
    """The Section 5.3.1 strategy over the groups of the spanner ``H^θ_k``.

    Each group (the edges attached to one red vertex from its left,
    Figure 6d) is measured with its own 1-D strategy; the groups partition the
    edge set so the sensitivity is the per-group sensitivity.  Remember that a
    mechanism using this strategy must run with budget ``ε / stretch`` to
    guarantee ``(ε, G^θ_k)``-Blowfish privacy (Corollary 4.6).
    """
    groups = line_spanner_groups(domain, theta)
    covered = sum(len(group) for group in groups)
    if covered != spanner_transform.num_edges:
        raise PolicyError(
            f"Spanner groups cover {covered} edges but the transform has "
            f"{spanner_transform.num_edges}"
        )
    blocks = [(group, per_group_strategy(len(group))) for group in groups]
    return block_diagonal_strategy(
        blocks, num_columns=spanner_transform.num_edges, name=f"theta-groups({theta})"
    )
