"""Base interface for Blowfish-private mechanisms.

A Blowfish mechanism answers a workload over the *original* domain while
guaranteeing ``(ε, G)``-Blowfish privacy (Definition 3.3) for its policy graph
``G``.  The concrete mechanisms in this package obtain the guarantee through
one of the paper's three routes:

* the policy-specific sensitivity / matrix-mechanism route (Theorem 4.1),
* the exact tree transform (Theorem 4.3), or
* a spanning-tree approximation with a reduced budget (Lemma 4.5).
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.database import Database
from ..core.rng import RandomState
from ..core.workload import (
    Workload,
    answer_workloads_batched,
    answer_workloads_batched_with_noise,
)
from ..exceptions import PolicyError
from ..mechanisms.base import NoiseModel, check_epsilon
from ..policy.graph import PolicyGraph
from ..policy.transform import PolicyTransform


class BlowfishMechanism(abc.ABC):
    """Base class for ``(ε, G)``-Blowfish private workload-answering mechanisms.

    Parameters
    ----------
    policy:
        The Blowfish policy graph ``G``.
    epsilon:
        The privacy budget of the *Blowfish* guarantee.  Mechanisms that go
        through a spanner internally divide this by the spanner's stretch
        (Corollary 4.6); the value stored here is always the guarantee the
        caller receives.
    transform:
        Optional precomputed :class:`PolicyTransform` for ``policy``.  The
        transform is deterministic, so sharing one instance across mechanisms
        (as the plan cache of :mod:`repro.engine` does) skips re-deriving
        ``P_G`` and re-factorising its Gram matrix on every construction.
    """

    #: Whether the mechanism's noise depends on the data (Section 5.4).
    data_dependent: bool = False
    #: Human-readable mechanism name used by the experiment harness.
    name: str = "BlowfishMechanism"

    def __init__(
        self,
        policy: PolicyGraph,
        epsilon: float,
        transform: Optional[PolicyTransform] = None,
    ) -> None:
        self._policy = policy
        self._epsilon = check_epsilon(epsilon)
        if transform is not None and transform.policy != policy:
            raise PolicyError(
                "The provided PolicyTransform was built for a different policy"
            )
        self._transform = transform if transform is not None else PolicyTransform(policy)

    # ------------------------------------------------------------- properties
    @property
    def policy(self) -> PolicyGraph:
        """The policy graph the privacy guarantee refers to."""
        return self._policy

    @property
    def epsilon(self) -> float:
        """Blowfish privacy budget ``ε``."""
        return self._epsilon

    @property
    def transform(self) -> PolicyTransform:
        """The policy transform ``P_G`` shared by repeated calls."""
        return self._transform

    # ------------------------------------------------------------------ API
    def answer(
        self,
        workload: Workload,
        database: Database,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """``(ε, G)``-Blowfish private answers to ``workload`` on ``database``."""
        self._check_instance(workload, database)
        return self._answer(workload, database, random_state)

    @abc.abstractmethod
    def _answer(
        self,
        workload: Workload,
        database: Database,
        random_state: RandomState,
    ) -> np.ndarray:
        """Mechanism-specific implementation (inputs already validated)."""

    def answer_batch(
        self,
        workloads: Sequence[Workload],
        database: Database,
        random_state: RandomState = None,
    ) -> List[np.ndarray]:
        """Answer several workloads with ONE ``(ε, G)``-Blowfish invocation.

        The workloads are stacked and answered by a single call to
        :meth:`answer`, so the whole batch consumes one ε.  Returns one answer
        vector per input workload, in order.
        """
        return answer_workloads_batched(self.answer, workloads, database, random_state)

    def noise_model(self, workload: Workload) -> Optional[NoiseModel]:
        """The noise profile one invocation on ``workload`` would carry.

        Same contract as :meth:`repro.mechanisms.base.Mechanism.noise_model`:
        ``None`` when the mechanism cannot state its noise honestly ahead of
        the draw; data-independent subclasses return the per-row standard
        deviations (and factor basis) their strategy implies.
        """
        return None

    def answer_batch_with_noise(
        self,
        workloads: Sequence[Workload],
        database: Database,
        random_state: RandomState = None,
    ) -> Tuple[List[np.ndarray], Optional[NoiseModel]]:
        """:meth:`answer_batch` plus the invocation's noise metadata.

        Draws are identical to :meth:`answer_batch` (one stacked invocation,
        same stream); the metadata is advisory and degrades to ``None`` on
        failure rather than voiding the already-drawn release.
        """
        return answer_workloads_batched_with_noise(
            self.answer, self.noise_model, workloads, database, random_state
        )

    # ----------------------------------------------------------------- helper
    def _check_instance(self, workload: Workload, database: Database) -> None:
        if workload.domain != self._policy.domain:
            raise PolicyError(
                f"Workload domain {workload.domain} does not match the policy domain "
                f"{self._policy.domain}"
            )
        if database.domain != self._policy.domain:
            raise PolicyError(
                f"Database domain {database.domain} does not match the policy domain "
                f"{self._policy.domain}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(policy={self._policy.name or self._policy!r}, "
            f"epsilon={self._epsilon})"
        )
