"""Process-wide, content-digest-keyed store of linear-algebra artifacts.

Every :class:`~repro.policy.transform.PolicyTransform` used to hold its own
Gram/SuperLU factorisation, every
:class:`~repro.blowfish.matrix_mechanism.PolicyMatrixMechanism` its own
strategy pseudo-inverse, and every mechanism instance its own transformed
workloads — even when dozens of cached plans (one per ε, per consistency
mode, per shard cache, per worker process re-hydration) share the exact same
underlying matrices.  This module deduplicates that work the same way the
PR 5 blob protocol deduplicates bytes: by **content digest**.

Three artifact kinds are cached:

* ``"gram"`` — the ``spla.factorized`` solve closure of the incidence Gram
  matrix ``P_G P_Gᵀ``, keyed by the digest of ``P_G``.  SuperLU closures are
  unpicklable and memory-heavy; one per distinct policy matrix per process
  is the right number.
* ``"strategy-pinv"`` — an explicit strategy pseudo-inverse ``A⁺`` derived
  once per distinct strategy matrix, which lets
  ``PolicyMatrixMechanism._compute_noise_model`` state honest noise models
  without a per-row LSQR solve per workload (the PR 4 512-row safety valve).
* ``"workload-gram"`` — transformed-workload products ``W_G = W' P_G``,
  keyed by (transform digest, workload signature), so plans that differ
  only in ε share the sparse products too.

**Ownership and eviction.**  The store never pins memory: entries are held
through :mod:`weakref`, and callers keep the returned
:class:`FactorisationHandle` alive for as long as they need the artifact
(transforms and mechanisms stash handles in transient, unpickled slots).
When the last plan referencing a factorisation is evicted from a plan
cache, its handles die with it and the store entry is reclaimed — unless
another live plan shares the digest, in which case the artifact survives
exactly as long as someone uses it.

**Process locality.**  The store is a process global.  Worker processes of
the execute backend therefore hold their *own* store: a plan blob
re-hydrated by the PR 5 miss-only protocol resolves its artifacts against
the worker-local store by content digest, so a second plan for an
already-resident policy never re-factorises — even when it arrived under a
different blob digest.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass
from hashlib import blake2b
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "FactorisationHandle",
    "FactorisationStore",
    "FactorisationStoreStats",
    "get_store",
    "matrix_digest",
    "set_store",
    "set_store_enabled",
    "store_enabled",
]


def matrix_digest(matrix) -> str:
    """Content digest of a (sparse or dense) matrix, CSR-canonicalised.

    Two matrices digest equal exactly when their CSR form has identical
    shape, dtype and stored element layout — the same addressing scheme the
    PR 5 blob protocol uses for pickles, applied to the matrix content
    itself so it is independent of how the object was constructed or
    shipped.
    """
    csr = sp.csr_matrix(matrix)
    digest = blake2b(digest_size=16)
    digest.update(repr((csr.shape, csr.dtype.str)).encode())
    digest.update(np.ascontiguousarray(csr.indptr).tobytes())
    digest.update(np.ascontiguousarray(csr.indices).tobytes())
    digest.update(np.ascontiguousarray(csr.data).tobytes())
    return digest.hexdigest()


class FactorisationHandle:
    """A caller's strong reference to one cached artifact.

    The store holds only a weak reference to the handle; whoever resolves an
    artifact keeps the handle (in a transient, never-pickled slot) and the
    entry lives exactly as long as at least one resolver does.
    """

    __slots__ = ("kind", "digest", "value", "__weakref__")

    def __init__(self, kind: str, digest: str, value: object) -> None:
        self.kind = kind
        self.digest = digest
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FactorisationHandle(kind={self.kind!r}, digest={self.digest[:12]!r})"


@dataclass(frozen=True)
class FactorisationStoreStats:
    """Counters of one store: lookups served warm, built cold, and live entries."""

    hits: int
    misses: int
    build_seconds: float
    entries: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served without building (reuse gauge)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class FactorisationStore:
    """Digest-keyed, weakly-held cache of expensive factorisation artifacts.

    Thread-safe: lookups and bookkeeping run under the store lock, builds run
    outside it (two racing builders both build; the first insert wins, the
    loser adopts the winner's handle so sharing still converges on one
    artifact).  A build that raises caches nothing — the next lookup retries,
    matching the lazy-factorisation semantics the per-transform slots had.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[Tuple[str, str], "weakref.ref[FactorisationHandle]"] = {}
        self._hits = 0
        self._misses = 0
        self._build_seconds = 0.0
        # Registries mirrored on every hit/miss (Prometheus surfacing).  A
        # process-global store may serve several engines; each enabled
        # engine's registry is bound once and counts from its bind time.
        self._bound: List[tuple] = []
        self._bound_ids: set = set()

    # ------------------------------------------------------------------ core
    def get_or_build(
        self, kind: str, digest: str, build: Callable[[], object]
    ) -> FactorisationHandle:
        """Resolve ``(kind, digest)``, building the artifact on first contact.

        Returns the shared handle; callers must keep it referenced for the
        artifact to stay cached.  With the store globally disabled (the
        determinism-ablation switch of ``bench_kernels.py``) every call
        builds privately and nothing is cached or counted.
        """
        if not _ENABLED:
            return FactorisationHandle(kind, digest, build())
        key = (kind, digest)
        with self._lock:
            ref = self._entries.get(key)
            handle = ref() if ref is not None else None
            if handle is not None:
                self._record(True, 0.0)
                return handle
        started = time.perf_counter()
        value = build()
        elapsed = time.perf_counter() - started
        with self._lock:
            ref = self._entries.get(key)
            existing = ref() if ref is not None else None
            if existing is not None:
                # Raced: another thread built and inserted first.  Adopt its
                # handle (one shared artifact); the duplicate build is still
                # a miss and its cost is honestly counted.
                self._record(False, elapsed)
                return existing
            handle = FactorisationHandle(kind, digest, value)
            self._entries[key] = weakref.ref(handle, self._reaper(key))
            self._record(False, elapsed)
            return handle

    def _reaper(self, key: Tuple[str, str]):
        def reap(ref, _key=key, _self_ref=weakref.ref(self)) -> None:
            store = _self_ref()
            if store is None:  # pragma: no cover - interpreter shutdown
                return
            with store._lock:
                if store._entries.get(_key) is ref:
                    del store._entries[_key]

        return reap

    def _record(self, hit: bool, build_seconds: float) -> None:
        # Caller holds the lock.
        if hit:
            self._hits += 1
        else:
            self._misses += 1
            self._build_seconds += build_seconds
        for c_hits, c_misses, c_build, h_build in self._bound:
            if hit:
                c_hits.inc()
            else:
                c_misses.inc()
                c_build.inc(build_seconds)
                h_build.observe(build_seconds)

    # ------------------------------------------------------------- telemetry
    def bind_metrics(self, metrics) -> None:
        """Mirror hit/miss/build counters into a PR 6 ``MetricsRegistry``.

        Idempotent per registry.  The registry's counters start from the
        bind instant; the store's own :meth:`stats` counters are always the
        process-lifetime totals.
        """
        if metrics is None:
            return
        with self._lock:
            if id(metrics) in self._bound_ids:
                return
            self._bound_ids.add(id(metrics))
            self._bound.append(
                (
                    metrics.counter(
                        "engine_factorisation_lookups_total",
                        "Factorisation-store lookups by result",
                        result="hit",
                    ),
                    metrics.counter(
                        "engine_factorisation_lookups_total",
                        "Factorisation-store lookups by result",
                        result="miss",
                    ),
                    metrics.counter(
                        "engine_factorisation_build_seconds_total",
                        "Wall-clock spent building factorisation artifacts",
                    ),
                    metrics.histogram(
                        "engine_factorisation_build_seconds",
                        "Per-artifact factorisation build latency",
                    ),
                )
            )

    def stats(self) -> FactorisationStoreStats:
        """Process-lifetime lookup counters plus the live entry count."""
        with self._lock:
            entries = sum(1 for ref in self._entries.values() if ref() is not None)
            return FactorisationStoreStats(
                hits=self._hits,
                misses=self._misses,
                build_seconds=self._build_seconds,
                entries=entries,
            )

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for ref in self._entries.values() if ref() is not None)

    def clear(self, reset_counters: bool = False) -> None:
        """Drop every entry (benchmark/test hook).

        Live handles elsewhere keep their artifacts; only the store's map is
        emptied, so the next lookup of each digest rebuilds once.
        """
        with self._lock:
            self._entries.clear()
            if reset_counters:
                self._hits = 0
                self._misses = 0
                self._build_seconds = 0.0


# The process-global store.  Worker processes import this module afresh and
# therefore hold their own (see module docstring).
_STORE = FactorisationStore()
_ENABLED = True


def get_store() -> FactorisationStore:
    """The process-global factorisation store."""
    return _STORE


def set_store(store: FactorisationStore) -> FactorisationStore:
    """Swap the process-global store (test hook); returns the previous one."""
    global _STORE
    previous, _STORE = _STORE, store
    return previous


def set_store_enabled(enabled: bool) -> bool:
    """Globally enable/disable cross-object sharing; returns the old flag.

    Disabled, every lookup builds privately — the honest ablation baseline
    ``bench_kernels.py`` compares against, and the switch its determinism
    gate flips to prove draws and ε ledgers don't depend on the store.
    """
    global _ENABLED
    previous, _ENABLED = _ENABLED, bool(enabled)
    return previous


def store_enabled() -> bool:
    """Whether cross-object sharing is currently on."""
    return _ENABLED
