"""Pluggable completion notification for query tickets.

PR 2's :class:`~repro.engine.pipeline.QueryTicket` hard-coded a
``threading.Event`` as its one way of telling a waiter "your answer is
ready" — fine for thread-per-client front-ends, useless for an event loop:
an ``asyncio`` server that parks a thread per pending ticket has re-invented
thread-per-client with extra steps.  This module splits the lifecycle from
the primitive:

* :class:`TicketWaiter` — the protocol: one object, one :meth:`~TicketWaiter.notify`
  call, delivered **exactly once** when the ticket reaches a terminal
  status.  ``notify`` must be thread-safe and non-blocking, because it runs
  on whichever thread's flush resolved the ticket.
* :class:`ThreadTicketWaiter` — today's behaviour: an event a thread blocks
  on.  :meth:`QueryTicket.wait` is backed by one of these, created lazily so
  tickets consumed through an event loop never allocate it.
* :class:`TicketLifecycle` — the per-ticket latch: a resolved flag plus the
  registered waiters, drained atomically on resolution.  Any number of
  waiters may be attached to one ticket (several threads blocking, several
  coroutines awaiting, or both at once); each is notified exactly once, and
  a waiter attached *after* resolution is notified immediately.

The event-loop realisation
(:class:`~repro.engine.serving.LoopTicketWaiter`, an ``asyncio`` future
resolved via ``call_soon_threadsafe``) lives in :mod:`repro.engine.serving`
so that engines which never serve a network path import no asyncio
machinery at all.

:class:`BatchTriggers` factors the *other* thread-primitive the front-ends
hard-coded: the size/deadline flush policy of
:class:`~repro.engine.BatchingExecutor`.  The decision logic (when does a
pending queue flush?) is shared verbatim between the thread front-end (a
``Condition`` + daemon flusher thread) and the asyncio front-end
(``loop.call_later``), so the two cannot drift on semantics.
"""

from __future__ import annotations

import threading
from typing import List, Optional


class TicketWaiter:
    """Protocol: one completion signal for one ticket.

    Implementations receive exactly one :meth:`notify` call when the ticket
    they are attached to reaches a terminal status (answered or refused).
    ``notify`` runs on the resolving thread — typically some other client's
    flush — so it must be thread-safe and must not block.
    """

    __slots__ = ()

    def notify(self) -> None:
        raise NotImplementedError


class ThreadTicketWaiter(TicketWaiter):
    """The thread realisation: an event a blocking caller waits on."""

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def notify(self) -> None:
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until notified; ``False`` on timeout."""
        return self._event.wait(timeout)

    @property
    def notified(self) -> bool:
        return self._event.is_set()


class TicketLifecycle:
    """Resolution latch for one ticket: a flag plus its registered waiters.

    Thread safety: the flag flip and the waiter-list drain happen atomically
    under a private lock, so concurrent resolvers deliver each waiter's
    notification exactly once (the first resolver wins; later calls are
    no-ops), and a waiter attached concurrently with resolution is either
    drained by the resolver or notified immediately by :meth:`add_waiter` —
    never dropped.  Notifications themselves run outside the lock: a waiter
    whose ``notify`` re-enters the ticket (e.g. an asyncio callback) cannot
    deadlock the lifecycle.
    """

    __slots__ = ("_lock", "_resolved", "_claimed", "_waiters", "_thread_waiter")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._resolved = False
        self._claimed = False
        self._waiters: List[TicketWaiter] = []
        self._thread_waiter: Optional[ThreadTicketWaiter] = None

    @property
    def resolved(self) -> bool:
        """``True`` once :meth:`resolve` ran."""
        return self._resolved

    def claim(self) -> bool:
        """Reserve the right to resolve this ticket; first caller wins.

        Arbitrates races between independent finishers — a cancelling
        client vs the flush pipeline, an expiry sweep vs a charge path.
        Exactly one caller ever sees ``True``; that caller must go on to
        set the terminal status and call :meth:`resolve`.  Callers seeing
        ``False`` must leave the ticket alone: someone else owns its fate.
        An already-resolved lifecycle is trivially unclaimable.
        """
        with self._lock:
            if self._resolved or self._claimed:
                return False
            self._claimed = True
            return True

    def add_waiter(self, waiter: TicketWaiter) -> bool:
        """Attach ``waiter``; returns ``True`` when it was notified inline.

        An unresolved ticket registers the waiter for the resolver to drain;
        a resolved one notifies immediately (still outside the lock), so
        late waiters observe the same exactly-once contract.
        """
        with self._lock:
            if not self._resolved:
                self._waiters.append(waiter)
                return False
        waiter.notify()
        return True

    def thread_waiter(self) -> ThreadTicketWaiter:
        """The shared waiter backing blocking ``wait()`` calls, created lazily.

        Every blocking caller waits on the *same* event, mirroring the
        pre-refactor one-Event-per-ticket behaviour; tickets consumed purely
        through an event loop never allocate it.
        """
        with self._lock:
            waiter = self._thread_waiter
            if waiter is None:
                waiter = self._thread_waiter = ThreadTicketWaiter()
                if self._resolved:
                    waiter.notify()
                else:
                    self._waiters.append(waiter)
        return waiter

    def resolve(self) -> None:
        """Flip the latch and notify every registered waiter exactly once."""
        with self._lock:
            if self._resolved:
                return
            self._resolved = True
            waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter.notify()


class BatchTriggers:
    """The size/deadline flush policy shared by the batching front-ends.

    Pure decision logic — no threads, no loops, no locks — so the
    ``Condition``-based :class:`~repro.engine.BatchingExecutor` and the
    ``call_later``-based :class:`~repro.engine.serving.AsyncQueryEngine`
    flush under identical rules:

    * **size** — the pending queue reached ``max_batch_size``: flush now, in
      the submitting context.
    * **deadline** — the oldest pending query waited ``max_delay`` seconds:
      flush from the front-end's background flusher (a daemon thread or a
      scheduled loop callback).
    """

    __slots__ = ("max_batch_size", "max_delay")

    def __init__(self, max_batch_size: int = 32, max_delay: float = 0.02) -> None:
        if max_batch_size <= 0:
            raise ValueError(f"max_batch_size must be positive, got {max_batch_size}")
        if max_delay <= 0:
            raise ValueError(f"max_delay must be positive, got {max_delay}")
        self.max_batch_size = int(max_batch_size)
        self.max_delay = float(max_delay)

    def size_reached(self, pending_count: int) -> bool:
        """``True`` when ``pending_count`` warrants an immediate flush."""
        return pending_count >= self.max_batch_size

    def deadline_from(self, now: float) -> float:
        """The absolute flush deadline for a query submitted at ``now``."""
        return now + self.max_delay

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchTriggers(max_batch_size={self.max_batch_size}, "
            f"max_delay={self.max_delay})"
        )
