"""Stable content signatures for plan- and answer-cache keys.

The serving engine memoises planning artefacts by *value*, not by object
identity: two clients constructing equal policies (or re-submitting an equal
workload) must land on the same cache entry.  Signatures are hex SHA-256
digests of a canonical byte serialisation, so they are stable across
processes and safe to use in persisted benchmark reports.
"""

from __future__ import annotations

import hashlib
from typing import Tuple

from ..core.domain import Domain
from ..core.workload import Workload
from ..policy.graph import PolicyGraph, is_bottom

#: Cache key of a planning entry: (domain signature, policy signature, planner config).
PlanKey = Tuple[str, str, str]


def domain_signature(domain: Domain) -> str:
    """Signature of a domain: its shape, which fully determines it."""
    return hashlib.sha256(repr(tuple(domain.shape)).encode()).hexdigest()


def policy_signature(policy: PolicyGraph) -> str:
    """Signature of a policy graph: domain shape plus the ordered edge list.

    Edge *order* is part of the signature because the columns of ``P_G``
    follow insertion order; two policies with the same edge set but different
    order produce differently laid-out transforms and must not share one.

    The digest is memoised on the graph instance (policies are immutable
    after construction — :meth:`~repro.policy.PolicyGraph.with_edges` builds
    a new graph), since the engine consults it several times per query and
    large θ-threshold policies have ``O(kθ)`` edges.
    """
    cached = getattr(policy, "_repro_signature", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(repr(tuple(policy.domain.shape)).encode())
    for u, v in policy.edges:
        a = -1 if is_bottom(u) else int(u)
        b = -1 if is_bottom(v) else int(v)
        hasher.update(f"{a},{b};".encode())
    digest = hasher.hexdigest()
    policy._repro_signature = digest  # type: ignore[attr-defined]
    return digest


def workload_signature(workload: Workload) -> str:
    """Signature of a workload (delegates to :meth:`Workload.signature`)."""
    return workload.signature()


def plan_key(
    policy: PolicyGraph,
    epsilon: float,
    prefer_data_dependent: bool,
    consistency: bool,
) -> PlanKey:
    """Cache key under which one planning result is stored."""
    config = f"eps={float(epsilon)!r};dd={bool(prefer_data_dependent)};cons={bool(consistency)}"
    return (domain_signature(policy.domain), policy_signature(policy), config)


def answer_key(policy: PolicyGraph, workload: Workload, epsilon: float) -> Tuple[str, str, str]:
    """Cache key of one paid-for noisy answer vector."""
    return (policy_signature(policy), workload_signature(workload), repr(float(epsilon)))
