"""Client sessions with per-client privacy-budget allotments.

A :class:`ClientSession` is the engine's unit of budget isolation.  Opening a
session reserves an epsilon allotment from the engine's global
:class:`~repro.accounting.PrivacyAccountant` (sequential composition — the
sessions all query the same database); every answered query is then charged
against the session's :class:`~repro.accounting.ScopedAccountant`.  Once the
allotment is exhausted the session refuses further queries with a
:class:`~repro.exceptions.PrivacyBudgetError` instead of silently degrading
the guarantee.

Thread safety: all budget state lives in the accountants, whose ledgers carry
their own (shared, narrowed) lock — see
:class:`~repro.accounting.PrivacyAccountant`.  The serving counters
(``queries_answered`` etc.) are likewise updated under that lock, so sessions
may be charged from any number of concurrent engine flushes without an
engine-wide lock.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..accounting.composition import BudgetedOperation, ScopedAccountant
from ..exceptions import PrivacyBudgetError


class ClientSession:
    """One client's budgeted view of the engine.

    Parameters
    ----------
    client_id:
        Identifier the engine routes queries by.
    accountant:
        The session-scoped accountant created from the engine's global one.
        Its ledger lock (shared with the parent accountant) also guards this
        session's counters and the close/refund path, so no engine lock is
        needed around session operations.
    """

    def __init__(
        self,
        client_id: str,
        accountant: ScopedAccountant,
        recovered: bool = False,
    ) -> None:
        self.client_id = str(client_id)
        self.accountant = accountant
        self.queries_answered = 0
        self.queries_refused = 0
        self.cache_replays = 0
        #: ``True`` when this session was rebuilt from a durable ε-ledger on
        #: engine boot rather than opened by a client in this process — its
        #: serving counters start from zero, but its accountant already
        #: carries every charge the pre-crash process journalled.
        self.recovered = bool(recovered)

    # ------------------------------------------------------------- budget API
    @property
    def allotment(self) -> float:
        """Total epsilon reserved for this session."""
        return self.accountant.total_epsilon

    def spent(self) -> float:
        """Epsilon consumed so far (sequential/parallel composition applied)."""
        return self.accountant.spent()

    def remaining(self) -> float:
        """Epsilon still available to this session."""
        return self.accountant.remaining()

    @property
    def closed(self) -> bool:
        """``True`` once the session was closed and refuses queries."""
        return self.accountant.closed

    def budget_snapshot(self) -> dict:
        """One consistent, JSON-ready view of the session's budget state.

        Taken under the ledger lock so ``spent``/``remaining`` and the
        serving counters cannot tear against a concurrent flush — this is
        the payload the HTTP front-end's budget-introspection endpoint
        serves (:mod:`repro.engine.serving`).
        """
        with self.accountant.lock:
            return {
                "client_id": self.client_id,
                "allotment": self.allotment,
                "spent": self.spent(),
                "remaining": self.remaining(),
                "queries_answered": self.queries_answered,
                "queries_refused": self.queries_refused,
                "cache_replays": self.cache_replays,
                "closed": self.closed,
                "recovered": self.recovered,
            }

    def can_afford(self, epsilon: float, partition: Optional[Sequence] = None) -> bool:
        """``True`` when a query costing ``epsilon`` would be admitted."""
        return self.accountant.can_charge(epsilon, partition)

    def charge(
        self, label: str, epsilon: float, partition: Optional[Sequence] = None
    ) -> BudgetedOperation:
        """Charge a query against the allotment, refusing once exhausted.

        Returns the recorded ledger operation so the engine's execute stage
        can roll the charge back if the mechanism fails before releasing
        anything.
        """
        if self.closed:
            with self.accountant.lock:
                self.queries_refused += 1
            raise PrivacyBudgetError(
                f"Session {self.client_id!r} refused query {label!r}: the session "
                "is closed"
            )
        try:
            return self.accountant.charge(label, epsilon, partition)
        except PrivacyBudgetError as exc:
            with self.accountant.lock:
                self.queries_refused += 1
            raise PrivacyBudgetError(
                f"Session {self.client_id!r} refused query {label!r}: charging "
                f"ε={epsilon} would exceed the allotment {self.allotment} "
                f"(spent {self.spent():.6g}, remaining {self.remaining():.6g})"
            ) from exc

    def close(self) -> float:
        """Close the session, refunding unspent budget to the engine's accountant.

        :meth:`ScopedAccountant.close` rewrites the parent's reservation under
        the shared ledger lock, so closing is safe against concurrent flushes.
        """
        return self.accountant.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClientSession(client_id={self.client_id!r}, allotment={self.allotment}, "
            f"spent={self.spent():.6g}, answered={self.queries_answered})"
        )
