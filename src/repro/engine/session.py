"""Client sessions with per-client privacy-budget allotments.

A :class:`ClientSession` is the engine's unit of budget isolation.  Opening a
session reserves an epsilon allotment from the engine's global
:class:`~repro.accounting.PrivacyAccountant` (sequential composition — the
sessions all query the same database); every answered query is then charged
against the session's :class:`~repro.accounting.ScopedAccountant`.  Once the
allotment is exhausted the session refuses further queries with a
:class:`~repro.exceptions.PrivacyBudgetError` instead of silently degrading
the guarantee.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import ContextManager, Optional, Sequence

from ..accounting.composition import ScopedAccountant
from ..exceptions import PrivacyBudgetError


class ClientSession:
    """One client's budgeted view of the engine.

    Parameters
    ----------
    client_id:
        Identifier the engine routes queries by.
    accountant:
        The session-scoped accountant created from the engine's global one.
    lock:
        Optional lock shared with the owning engine.  :meth:`close` mutates
        the engine's *global* accountant (the refund), so it must run under
        the same lock the engine uses for charges — otherwise a direct
        ``session.close()`` would race against concurrent flushes.
    """

    def __init__(
        self,
        client_id: str,
        accountant: ScopedAccountant,
        lock: Optional[ContextManager] = None,
    ) -> None:
        self.client_id = str(client_id)
        self.accountant = accountant
        self._lock: ContextManager = lock if lock is not None else nullcontext()
        self.queries_answered = 0
        self.queries_refused = 0
        self.cache_replays = 0

    # ------------------------------------------------------------- budget API
    @property
    def allotment(self) -> float:
        """Total epsilon reserved for this session."""
        return self.accountant.total_epsilon

    def spent(self) -> float:
        """Epsilon consumed so far (sequential/parallel composition applied)."""
        return self.accountant.spent()

    def remaining(self) -> float:
        """Epsilon still available to this session."""
        return self.accountant.remaining()

    @property
    def closed(self) -> bool:
        """``True`` once the session was closed and refuses queries."""
        return self.accountant.closed

    def can_afford(self, epsilon: float, partition: Optional[Sequence] = None) -> bool:
        """``True`` when a query costing ``epsilon`` would be admitted."""
        return self.accountant.can_charge(epsilon, partition)

    def charge(
        self, label: str, epsilon: float, partition: Optional[Sequence] = None
    ) -> None:
        """Charge a query against the allotment, refusing once exhausted."""
        if self.closed:
            self.queries_refused += 1
            raise PrivacyBudgetError(
                f"Session {self.client_id!r} refused query {label!r}: the session "
                "is closed"
            )
        try:
            self.accountant.charge(label, epsilon, partition)
        except PrivacyBudgetError as exc:
            self.queries_refused += 1
            raise PrivacyBudgetError(
                f"Session {self.client_id!r} refused query {label!r}: charging "
                f"ε={epsilon} would exceed the allotment {self.allotment} "
                f"(spent {self.spent():.6g}, remaining {self.remaining():.6g})"
            ) from exc

    def close(self) -> float:
        """Close the session, refunding unspent budget to the engine's accountant."""
        with self._lock:
            return self.accountant.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClientSession(client_id={self.client_id!r}, allotment={self.allotment}, "
            f"spent={self.spent():.6g}, answered={self.queries_answered})"
        )
