"""Durable state tier: crash-safe ε-ledger, snapshots, fault injection.

Three pieces, all opt-in (the in-memory fast path is untouched when the
engine is built without a ``durable_ledger``):

* :mod:`~repro.engine.durability.ledger_store` — a SQLite write-ahead
  ledger bound to the :class:`~repro.accounting.PrivacyAccountant`: every
  charge is on disk *before* its mechanism runs, rollbacks delete durably,
  scopes journal their open/close, and
  :func:`~repro.engine.durability.ledger_store.recover_accountant` rebuilds
  the whole privacy state on relaunch so a restarted server refuses
  queries against budget that was already spent.
* :mod:`~repro.engine.durability.snapshotter` — a background thread taking
  crash-consistent snapshots of the warm state (plan store + answer
  cache) with atomic tmp-file + ``os.replace`` writes.
* :mod:`~repro.engine.durability.faults` — a deterministic fault-injection
  harness (named crash points, injectable disk-full and worker-kill
  faults) that the crash-recovery test matrix drives.
"""

from __future__ import annotations

from .faults import (
    CRASH_POINTS,
    SERVING_FAULT_POINTS,
    FaultInjector,
    fault_point,
    kill_one_worker,
)
from .ledger_store import (
    LEDGER_FORMAT,
    LedgerStore,
    RecoveredScope,
    RecoveredState,
    recover_accountant,
)
from .snapshotter import ANSWER_STORE_FORMAT, Snapshotter, read_answer_store

__all__ = [
    "ANSWER_STORE_FORMAT",
    "CRASH_POINTS",
    "FaultInjector",
    "LEDGER_FORMAT",
    "LedgerStore",
    "RecoveredScope",
    "RecoveredState",
    "SERVING_FAULT_POINTS",
    "Snapshotter",
    "fault_point",
    "kill_one_worker",
    "read_answer_store",
    "recover_accountant",
]
