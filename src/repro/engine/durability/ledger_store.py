"""Crash-safe write-ahead ε-ledger: SQLite persistence for the accountant.

The engine's privacy state — every charge, rollback, scope open and close —
is otherwise in-memory only, so a crashed server forgets the budget it
spent: a *privacy* violation, not an ops gap.  :class:`LedgerStore` makes
the charge stage's check-then-append a check-then-**durable**-append: the
SQLite row commits inside the accountant's existing ledger lock, *before*
the mechanism runs, so a crash at any later moment can only ever leave the
durable ledger counting **at least** what was actually released (an
un-executed charge may be over-counted; spent budget is never
under-counted — the only sound direction for a privacy ledger).

Storage follows the proven HTAP recipe (one store, the transactional path
must not stall the analytic path): ``journal_mode=WAL`` so the per-charge
commits append to the write-ahead log instead of rewriting pages,
``synchronous=NORMAL`` so a commit is one ``write()`` (durable against
process death — the crash model here — without paying an ``fsync`` per
charge), and ``busy_timeout`` so concurrent openers wait instead of
failing.  Mutations run in autocommit mode: every append/delete is its own
durable transaction, which is exactly the write-ahead contract.

Fail-closed semantics: if a durable append raises (disk full, injected via
:mod:`~repro.engine.durability.faults`), the accountant undoes the
in-memory append and refuses the charge — admitting a charge that a crash
would forget is the one thing this tier exists to prevent.

Recovery (:meth:`LedgerStore.recover`, surfaced as
``PrivacyAccountant.recover(path)``) rebuilds the global ledger, every
still-open scope (session allotments, with their per-client spend), and
re-binds the store so the relaunched process keeps journalling — a
restarted server refuses queries against budget it already spent.
"""

from __future__ import annotations

import json
import logging
import sqlite3
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...accounting.composition import (
    BudgetedOperation,
    PrivacyAccountant,
    ScopedAccountant,
)
from ...exceptions import DurabilityError
from .faults import fault_point

__all__ = [
    "LEDGER_FORMAT",
    "LedgerStore",
    "RecoveredScope",
    "RecoveredState",
    "recover_accountant",
]

logger = logging.getLogger(__name__)

#: On-disk schema version; bump on any layout change a reader cannot absorb.
LEDGER_FORMAT = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS scopes (
    scope_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    label          TEXT NOT NULL,
    epsilon        REAL NOT NULL,
    reservation_op INTEGER,
    closed         INTEGER NOT NULL DEFAULT 0,
    spent          REAL
);
CREATE TABLE IF NOT EXISTS ops (
    op_id     INTEGER PRIMARY KEY AUTOINCREMENT,
    scope_id  INTEGER,
    label     TEXT NOT NULL,
    epsilon   REAL NOT NULL,
    partition TEXT
);
CREATE INDEX IF NOT EXISTS ops_by_scope ON ops(scope_id);
"""


def _encode_partition(partition: Optional[frozenset]) -> Optional[str]:
    """JSON-encode a partition's keys, or ``None`` for sequential ops.

    Keys the engine uses are domain cell ints; anything JSON cannot encode
    degrades to ``None`` — i.e. *sequential* composition on recovery, which
    over-counts (allowed direction) instead of mis-grouping.
    """
    if partition is None:
        return None
    try:
        return json.dumps(sorted(partition, key=repr), sort_keys=False)
    except (TypeError, ValueError):
        logger.warning(
            "ledger partition with non-JSON keys stored conservatively as "
            "sequential; recovery will over-count, never under-count"
        )
        return None


def _decode_partition(encoded: Optional[str]) -> Optional[frozenset]:
    if encoded is None:
        return None
    # Lists decoded from JSON are unhashable; partitions of the engine are
    # flat collections of cell indices, so plain element hashing suffices.
    return frozenset(json.loads(encoded))


@dataclass
class RecoveredScope:
    """One still-open scope rebuilt from the store (a session allotment)."""

    scope_id: int
    label: str
    accountant: ScopedAccountant


@dataclass
class RecoveredState:
    """Everything :meth:`LedgerStore.recover` rebuilds on boot."""

    total_epsilon: float
    accountant: PrivacyAccountant
    scopes: List[RecoveredScope] = field(default_factory=list)


class _DurableBinding:
    """Per-ledger journalling hooks the accountant calls under its lock.

    One binding per accountant: the global one carries ``scope_id=None``,
    each open scope gets its own.  The binding maps live
    :class:`BudgetedOperation` objects (identity — the accountant's own
    rollback contract) to their durable rowids; the operations are held
    strongly, which adds nothing, since the accountant's ledger already
    keeps every operation for composition arithmetic.
    """

    def __init__(self, store: "LedgerStore", scope_id: Optional[int]) -> None:
        self._store = store
        self._scope_id = scope_id
        self._rowids: Dict[int, Tuple[BudgetedOperation, int]] = {}

    def _remember(self, operation: BudgetedOperation, rowid: int) -> None:
        self._rowids[id(operation)] = (operation, rowid)

    def _rowid_of(self, operation: BudgetedOperation) -> Optional[int]:
        entry = self._rowids.get(id(operation))
        if entry is None or entry[0] is not operation:
            return None
        return entry[1]

    # ------------------------------------------------- accountant-facing hooks
    def record_charge(self, operation: BudgetedOperation) -> None:
        """Durably append one charge; raises to veto the in-memory append."""
        rowid = self._store._append_op(
            self._scope_id,
            operation.label,
            operation.epsilon,
            _encode_partition(operation.partition),
        )
        self._remember(operation, rowid)

    def record_rollback(self, operation: BudgetedOperation) -> None:
        """Durably delete a rolled-back charge (best-effort: a failed delete
        leaves an over-count, which the invariant allows)."""
        entry = self._rowids.pop(id(operation), None)
        if entry is None or entry[0] is not operation:
            logger.warning(
                "durable rollback of %r found no journalled row; the store "
                "will over-count until re-initialised", operation.label
            )
            return
        try:
            self._store._delete_op(entry[1])
        except Exception:
            logger.warning(
                "durable rollback delete failed for %r; the store "
                "over-counts this charge (allowed direction)",
                operation.label,
                exc_info=True,
            )

    def record_scope_open(
        self, label: str, epsilon: float, reservation: BudgetedOperation
    ) -> "_DurableBinding":
        """Journal a scope (session allotment); returns the child binding."""
        reservation_rowid = self._rowid_of(reservation)
        scope_id = self._store._insert_scope(label, epsilon, reservation_rowid)
        return _DurableBinding(self._store, scope_id)

    def record_scope_close(
        self,
        parent: Optional["_DurableBinding"],
        reservation: BudgetedOperation,
        label: str,
        spent: float,
        refund: float,
    ) -> None:
        """Journal a scope close: mark it closed and rewrite the parent's
        reservation row to the actual spend (mirror of the in-memory
        rewrite).  Best-effort — a failure leaves the scope open in the
        store with its full reservation, an over-count."""
        try:
            self._store._close_scope(self._scope_id, spent)
            if parent is None or refund <= 0:
                return
            rowid = parent._rowid_of(reservation)
            if rowid is None:
                return
            parent._rowids.pop(id(reservation), None)
            if spent > 0:
                self._store._rewrite_op(rowid, label, spent)
            else:
                self._store._delete_op(rowid)
        except Exception:
            logger.warning(
                "durable scope close failed for %r; the store keeps the "
                "full reservation (over-count, allowed direction)",
                label,
                exc_info=True,
            )


class LedgerStore:
    """SQLite-backed write-ahead store for one engine's ε-ledgers.

    The store is written exclusively under the accountant's ledger lock
    (the bindings are only ever invoked there), so one connection with
    ``check_same_thread=False`` is sound; the store's own lock additionally
    serialises recovery-time readers against any stray writer.
    """

    def __init__(
        self,
        path: str,
        busy_timeout_ms: int = 30000,
        synchronous: str = "NORMAL",
    ) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(
            self.path, check_same_thread=False, isolation_level=None
        )
        cursor = self._connection.cursor()
        # The Snippet-1 pragma recipe: WAL keeps per-charge commits to one
        # log append, NORMAL makes a commit one write() (durable against
        # process death without an fsync per charge), busy_timeout makes
        # concurrent openers wait instead of erroring.
        cursor.execute("PRAGMA journal_mode=WAL")
        cursor.execute(f"PRAGMA synchronous={synchronous}")
        cursor.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        cursor.execute("PRAGMA foreign_keys=ON")
        cursor.executescript(_SCHEMA)
        found = self._meta("format")
        if found is not None and int(found) != LEDGER_FORMAT:
            raise DurabilityError(
                f"Ledger store {self.path!r} has format version {found}; this "
                f"library reads version {LEDGER_FORMAT} — recover it with the "
                "matching library version instead of mixing formats"
            )

    # ------------------------------------------------------------------- meta
    def _meta(self, key: str) -> Optional[str]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else None

    def total_epsilon(self) -> Optional[float]:
        """The journalled global budget, or ``None`` for a fresh store."""
        with self._lock:
            value = self._meta("total_epsilon")
        return float(value) if value is not None else None

    def initialise(self, total_epsilon: float) -> None:
        """Stamp a fresh store with its format and global budget."""
        with self._lock:
            existing = self._meta("total_epsilon")
            if existing is not None:
                if float(existing) != float(total_epsilon):
                    raise DurabilityError(
                        f"Ledger store {self.path!r} was initialised with "
                        f"total_epsilon={existing}, not {total_epsilon}; "
                        "recover it instead of re-initialising"
                    )
                return
            self._connection.execute(
                "INSERT INTO meta(key, value) VALUES ('format', ?)",
                (str(LEDGER_FORMAT),),
            )
            self._connection.execute(
                "INSERT INTO meta(key, value) VALUES ('total_epsilon', ?)",
                (repr(float(total_epsilon)),),
            )

    # -------------------------------------------------------------- mutations
    def _append_op(
        self,
        scope_id: Optional[int],
        label: str,
        epsilon: float,
        partition: Optional[str],
    ) -> int:
        fault_point("ledger-append")
        with self._lock:
            cursor = self._connection.execute(
                "INSERT INTO ops(scope_id, label, epsilon, partition) "
                "VALUES (?, ?, ?, ?)",
                (scope_id, label, float(epsilon), partition),
            )
            return int(cursor.lastrowid)

    def _delete_op(self, rowid: int) -> None:
        with self._lock:
            self._connection.execute("DELETE FROM ops WHERE op_id = ?", (rowid,))

    def _rewrite_op(self, rowid: int, label: str, epsilon: float) -> None:
        with self._lock:
            self._connection.execute(
                "UPDATE ops SET label = ?, epsilon = ?, partition = NULL "
                "WHERE op_id = ?",
                (label, float(epsilon), rowid),
            )

    def _insert_scope(
        self, label: str, epsilon: float, reservation_op: Optional[int]
    ) -> int:
        with self._lock:
            cursor = self._connection.execute(
                "INSERT INTO scopes(label, epsilon, reservation_op) "
                "VALUES (?, ?, ?)",
                (label, float(epsilon), reservation_op),
            )
            return int(cursor.lastrowid)

    def _close_scope(self, scope_id: Optional[int], spent: float) -> None:
        with self._lock:
            self._connection.execute(
                "UPDATE scopes SET closed = 1, spent = ? WHERE scope_id = ?",
                (float(spent), scope_id),
            )

    # ---------------------------------------------------------------- binding
    def bind(self, accountant: PrivacyAccountant) -> None:
        """Attach write-ahead journalling to a (fresh) accountant."""
        accountant.durable = _DurableBinding(self, None)

    # --------------------------------------------------------------- recovery
    def recover(self, audit: Optional[object] = None) -> RecoveredState:
        """Rebuild ledgers, scopes and per-client spend from the store.

        Returns a fully re-bound :class:`RecoveredState`: the global
        accountant carries every global operation (open-scope reservations
        included), each still-open scope is a :class:`ScopedAccountant`
        sharing the parent's lock with its own charges replayed, and every
        accountant keeps journalling through this store — the relaunched
        process continues the same write-ahead ledger.
        """
        stored_total = self.total_epsilon()
        if stored_total is None:
            raise DurabilityError(
                f"Ledger store {self.path!r} was never initialised; nothing "
                "to recover"
            )
        with self._lock:
            op_rows = self._connection.execute(
                "SELECT op_id, scope_id, label, epsilon, partition "
                "FROM ops ORDER BY op_id"
            ).fetchall()
            scope_rows = self._connection.execute(
                "SELECT scope_id, label, epsilon, reservation_op, closed "
                "FROM scopes ORDER BY scope_id"
            ).fetchall()

        accountant = PrivacyAccountant(stored_total, audit=audit)
        binding = _DurableBinding(self, None)
        accountant.durable = binding

        open_scopes = {
            row[0]: row for row in scope_rows if not row[4]
        }
        closed_scope_ids = {row[0] for row in scope_rows if row[4]}

        # Global ops replay in append order; ops of *closed* scopes are
        # skipped — their spend was folded into the parent's rewritten
        # reservation at close time, exactly like the in-memory path.
        by_rowid: Dict[int, BudgetedOperation] = {}
        per_scope_ops: Dict[int, List[Tuple[int, BudgetedOperation]]] = {}
        for op_id, scope_id, label, epsilon, partition in op_rows:
            if scope_id in closed_scope_ids:
                continue
            operation = BudgetedOperation(
                label=label,
                epsilon=float(epsilon),
                partition=_decode_partition(partition),
            )
            if scope_id is None:
                accountant.operations.append(operation)
                binding._remember(operation, op_id)
                by_rowid[op_id] = operation
            else:
                per_scope_ops.setdefault(scope_id, []).append((op_id, operation))

        scopes: List[RecoveredScope] = []
        for scope_id, row in open_scopes.items():
            _, label, epsilon, reservation_op, _ = row
            reservation = by_rowid.get(reservation_op)
            if reservation is None:
                # The scope row outlived its reservation op (partial failure
                # mid-close).  Recover it conservatively: synthesise the
                # reservation so the parent keeps the full allotment charged.
                reservation = BudgetedOperation(label=label, epsilon=float(epsilon))
                rowid = self._append_op(None, label, float(epsilon), None)
                accountant.operations.append(reservation)
                binding._remember(reservation, rowid)
            child_binding = _DurableBinding(self, scope_id)
            scoped = ScopedAccountant(
                total_epsilon=float(epsilon),
                lock=accountant.lock,
                audit=audit,
                parent=accountant,
                label=label,
                reservation=reservation,
            )
            scoped.durable = child_binding
            for op_id, operation in per_scope_ops.get(scope_id, []):
                scoped.operations.append(operation)
                child_binding._remember(operation, op_id)
            scopes.append(RecoveredScope(scope_id, label, scoped))

        return RecoveredState(
            total_epsilon=stored_total, accountant=accountant, scopes=scopes
        )

    # --------------------------------------------------------------- teardown
    def close(self) -> None:
        """Close the SQLite connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                try:
                    self._connection.close()
                finally:
                    self._connection = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LedgerStore({self.path!r})"


def recover_accountant(
    path: str, audit: Optional[object] = None
) -> Tuple[LedgerStore, RecoveredState]:
    """Open ``path`` and recover its state; the one-call boot helper.

    Backs ``PrivacyAccountant.recover`` (which returns just the accountant)
    and the engine's ``durable_ledger=`` boot path (which also wants the
    scopes, to rebuild client sessions).
    """
    store = LedgerStore(path)
    return store, store.recover(audit=audit)
