"""Deterministic fault injection for crash-recovery testing.

The durable state tier's correctness claim — *a recovered ledger never
under-counts spent ε* — can only be tested by actually dying at the worst
possible moments.  This module provides the scaffolding: **named crash
points** compiled into the serving pipeline and the snapshotter, and a
process-global :class:`FaultInjector` that tests arm to crash the process
(``os._exit``, the in-process equivalent of ``kill -9``: no ``atexit``, no
``finally``, no buffered-stream flush), raise a disk-full ``OSError``, or
kill a worker process at an exact hit count of an exact point.

The hooks cost one module-global read plus a ``None`` check when no
injector is installed (the production state), so they stay compiled into
the hot path permanently — ``benchmarks/bench_durability.py`` gates that
overhead at ≤ 1.10× a pipeline with the hooks stripped out.

Crash points
------------
``pre-charge``
    In the pipeline's charge stage, immediately *before* a ticket's budget
    charge.  A crash here must leave no trace: nothing charged, nothing
    durable.
``post-charge``
    Immediately *after* the charge succeeded (durably, when a ledger store
    is attached) but before the mechanism runs.  A crash here is the
    canonical over-count: the recovered ledger carries a charge whose
    release never happened — allowed, never the reverse.
``pre-resolve``
    After the execute stage, before the resolve stage rolls back failures
    and publishes answers.  Charges are durable, answers are lost.
``mid-snapshot``
    Inside :class:`~repro.engine.durability.snapshotter.Snapshotter`,
    between the plan-store write and the answer-store write.  Each file is
    written atomically (tmp + ``os.replace``), so a crash here must leave
    the previous answer store intact next to the new plan store.

Serving fault points
--------------------
The live HTTP path adds its own hooks (kept out of :data:`CRASH_POINTS`,
whose tuple is pinned by the crash-matrix tests):

``serving-flush``
    Inside the asyncio front-end's flusher thread, immediately before it
    drives ``engine.flush()``.  ``stall_at`` here models a stalled flusher
    (slow disk, GC pause); ``fail_at`` a flusher whose flush raises.  The
    serving chaos harness asserts both shed-not-crash behaviour and
    byte-identical draws/ledgers for the work that was admitted.
"""

from __future__ import annotations

import errno
import os
import signal
import threading
import time
from typing import Dict, Optional, Tuple

__all__ = [
    "CRASH_POINTS",
    "SERVING_FAULT_POINTS",
    "FaultInjector",
    "fault_point",
    "kill_one_worker",
]

#: The named crash points compiled into the engine, in pipeline order.
#: Pinned by the crash-matrix tests — serving-path hooks live in
#: :data:`SERVING_FAULT_POINTS` instead of growing this tuple.
CRASH_POINTS = ("pre-charge", "post-charge", "pre-resolve", "mid-snapshot")

#: Fault points of the live serving path (chaos harness, PR 10).
SERVING_FAULT_POINTS = ("serving-flush",)


class FaultInjector:
    """Arm crashes and injected errors at named fault points.

    One injector is installed process-globally (:meth:`install`); the
    pipeline's :func:`fault_point` hooks consult it.  All triggers are
    deterministic: a fault fires on the *n*-th hit of its point (1-based,
    default the first), so a test can, say, survive two charges and die on
    the third.

    The injector is intentionally engine-agnostic — it never imports from
    the pipeline — so the hooks can live arbitrarily deep without cycles.
    """

    _active: Optional["FaultInjector"] = None

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hits: Dict[str, int] = {}
        #: point -> (hit number to fire on, exit code)
        self._crashes: Dict[str, Tuple[int, int]] = {}
        #: point -> (hit number to fire on, exception factory)
        self._errors: Dict[str, Tuple[int, object]] = {}
        #: point -> (hit number to fire on, stall seconds)
        self._stalls: Dict[str, Tuple[int, float]] = {}

    # ------------------------------------------------------------------ arming
    def crash_at(self, point: str, hits: int = 1, exit_code: int = 42) -> "FaultInjector":
        """Die via ``os._exit(exit_code)`` on the ``hits``-th visit of ``point``."""
        self._validate(point, hits)
        self._crashes[point] = (int(hits), int(exit_code))
        return self

    def fail_at(self, point: str, exception_factory, hits: int = 1) -> "FaultInjector":
        """Raise ``exception_factory()`` on the ``hits``-th visit of ``point``."""
        self._validate(point, hits)
        self._errors[point] = (int(hits), exception_factory)
        return self

    def stall_at(self, point: str, seconds: float, hits: int = 1) -> "FaultInjector":
        """Sleep ``seconds`` on the ``hits``-th visit of ``point``.

        Models a stalled-but-alive component (slow disk, GC pause, lock
        convoy): the visit eventually completes normally, which is exactly
        what distinguishes a stall from a crash — admission control must
        shed around it instead of erroring through it.
        """
        self._validate(point, hits)
        if seconds < 0:
            raise ValueError(f"stall seconds must be >= 0, got {seconds}")
        self._stalls[point] = (int(hits), float(seconds))
        return self

    def disk_full_at(self, point: str, hits: int = 1) -> "FaultInjector":
        """Inject ``OSError(ENOSPC)`` — the disk-full fault — at ``point``."""
        return self.fail_at(
            point,
            lambda: OSError(errno.ENOSPC, "No space left on device (injected)"),
            hits=hits,
        )

    @staticmethod
    def _validate(point: str, hits: int) -> None:
        if hits < 1:
            raise ValueError(f"hits must be >= 1, got {hits}")
        if not point:
            raise ValueError("fault point name must be non-empty")

    # -------------------------------------------------------------- life cycle
    def install(self) -> "FaultInjector":
        """Make this the process-global injector consulted by the hooks."""
        FaultInjector._active = self
        return self

    @classmethod
    def clear(cls) -> None:
        """Remove any installed injector (hooks go back to their no-op path)."""
        cls._active = None

    @classmethod
    def active(cls) -> Optional["FaultInjector"]:
        return cls._active

    # ------------------------------------------------------------------- hooks
    def hits(self, point: str) -> int:
        """How many times ``point`` has been reached so far."""
        with self._lock:
            return self._hits.get(point, 0)

    def reached(self, point: str) -> None:
        """Count one visit of ``point`` and fire any armed fault.

        The crash is ``os._exit`` — abrupt by design: the test double of a
        ``kill -9`` must not run ``finally`` blocks, flush buffered file
        objects, or let SQLite close cleanly, or the test would prove
        nothing about crash consistency.
        """
        with self._lock:
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
        crash = self._crashes.get(point)
        if crash is not None and count == crash[0]:
            os._exit(crash[1])
        stall = self._stalls.get(point)
        if stall is not None and count == stall[0]:
            time.sleep(stall[1])
        error = self._errors.get(point)
        if error is not None and count == error[0]:
            raise error[1]()


def fault_point(point: str) -> None:
    """Hook compiled into the pipeline/snapshotter at each named point.

    No-op (one global read + ``None`` check) unless a test installed a
    :class:`FaultInjector`.
    """
    injector = FaultInjector._active
    if injector is not None:
        injector.reached(point)


def kill_one_worker(backend) -> int:
    """SIGKILL one live worker process of a process execute backend.

    The injectable worker-kill fault: deterministic (lowest pid wins) and
    honest — the worker dies exactly as an OOM-killed one would, so the
    pool observes a genuine :class:`~concurrent.futures.BrokenExecutor`.
    Returns the killed pid.  Raises ``RuntimeError`` when the backend has
    no live pool (nothing was ever dispatched, or it is closed).
    """
    pool = getattr(backend, "_pool", None)
    processes = getattr(pool, "_processes", None) if pool is not None else None
    if not processes:
        raise RuntimeError("backend has no live worker processes to kill")
    pid = min(processes.keys())
    os.kill(pid, signal.SIGKILL)
    return pid
