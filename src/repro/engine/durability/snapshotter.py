"""Background crash-consistent snapshots: warm plans + cached answers.

The durable ε-ledger (:mod:`~repro.engine.durability.ledger_store`) makes
spent budget survive a crash; this module makes the *performance* state
survive too.  A :class:`Snapshotter` thread periodically persists

* the plan store — ``engine.save_plans(path, prune=True)``, live-cache
  entries only, so long-running servers' snapshots track what they
  actually serve — and
* the answer store — every cached noisy answer with its measurements and
  the engine's next draw id, so recovered measurements keep their
  correlation structure and fresh draws never collide with them.

Each file is written with the tmp-file + ``os.replace`` discipline (shared
with :func:`~repro.engine.plan_cache.write_plan_store`): a crash at any
instant — including *between* the two writes, the ``mid-snapshot`` fault
point — leaves either the previous snapshot or the new one on disk, never
a torn file.  A restore that still finds a corrupt store (e.g. a snapshot
from an incompatible version) degrades to a cold start with a WARN log
instead of keeping the server down.
"""

from __future__ import annotations

import logging
import os
import pickle
import threading
from typing import Optional, Tuple

from ...exceptions import PlanStoreError
from ..plan_cache import write_plan_store
from .faults import fault_point

__all__ = ["ANSWER_STORE_FORMAT", "Snapshotter", "read_answer_store"]

logger = logging.getLogger(__name__)

#: On-disk format version of persisted answer stores.
ANSWER_STORE_FORMAT = 1

#: File names inside the snapshot directory.
PLANS_FILE = "plans.pkl"
ANSWERS_FILE = "answers.pkl"


def read_answer_store(path: str) -> dict:
    """Read a persisted answer store, validating its format version.

    Raises the versioned :class:`~repro.exceptions.PlanStoreError` on a
    truncated/corrupt pickle or a format mismatch — same contract as
    :func:`~repro.engine.plan_cache.read_plan_store`, and the same pickle
    warning applies: only load stores this deployment wrote itself.
    """
    if not os.path.exists(path):
        raise PlanStoreError(f"Answer store {path!r} does not exist", path=path)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        ValueError,
        IndexError,
        KeyError,
        TypeError,
    ) as exc:
        raise PlanStoreError(
            f"Answer store {path!r} is corrupt (truncated or garbled "
            f"pickle): {exc}",
            path=path,
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != ANSWER_STORE_FORMAT:
        found = payload.get("format") if isinstance(payload, dict) else None
        raise PlanStoreError(
            f"Answer store {path!r} has format version {found!r}; this "
            f"library reads version {ANSWER_STORE_FORMAT}",
            path=path,
            format_version=found,
        )
    if "entries" not in payload or not isinstance(payload["entries"], list):
        raise PlanStoreError(
            f"Answer store {path!r} is corrupt: payload carries no entry list",
            path=path,
            format_version=payload.get("format"),
        )
    return payload


class Snapshotter:
    """Periodic crash-consistent persistence of an engine's warm state.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.PrivateQueryEngine` to snapshot.
    directory:
        Snapshot directory (created if missing); holds ``plans.pkl`` and
        ``answers.pkl``.
    interval:
        Seconds between background snapshots.  ``start()`` is a no-op for
        a non-positive interval — :meth:`snapshot` can still be called
        explicitly (admin endpoints, tests, shutdown).
    prune:
        Forwarded to ``save_plans`` — ``True`` (default) writes live-cache
        plans only.
    """

    def __init__(
        self,
        engine,
        directory: str,
        interval: float = 30.0,
        prune: bool = True,
    ) -> None:
        self._engine = engine
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.plans_path = os.path.join(self.directory, PLANS_FILE)
        self.answers_path = os.path.join(self.directory, ANSWERS_FILE)
        self.interval = float(interval)
        self._prune = bool(prune)
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self.snapshots_taken = 0
        self.last_error: Optional[str] = None

    # -------------------------------------------------------------- snapshots
    def snapshot(self) -> Tuple[int, int]:
        """Write one crash-consistent snapshot; returns (plans, answers) counts.

        Two independently atomic writes: plans first, answers second, with
        the ``mid-snapshot`` crash point between them — a crash there
        leaves the fresh plan store beside the *previous* answer store,
        both intact and mutually safe (answer entries never reference plan
        entries; stale answers simply re-pay on divergence).
        """
        saved_plans = self._engine.save_plans(self.plans_path, prune=self._prune)
        fault_point("mid-snapshot")
        saved_answers = self._save_answers()
        with self._lock:
            self.snapshots_taken += 1
        return saved_plans, saved_answers

    def _save_answers(self) -> int:
        cache = self._engine.answer_cache
        if cache is None:
            return 0
        entries = cache.export_entries()
        payload = {
            "format": ANSWER_STORE_FORMAT,
            "entries": entries,
            # The largest draw id any persisted measurement references: a
            # restore advances the engine's counter past it so fresh
            # invocations never collide with recovered draws.
            "max_draw_id": cache.max_draw_id(),
        }
        write_plan_store(self.answers_path, payload)
        return len(entries)

    # ---------------------------------------------------------------- restore
    def restore(self) -> Tuple[int, int]:
        """Load whatever snapshot exists; returns (plans, answers) loaded.

        Missing files mean a first boot (0 loaded, no complaint); corrupt
        files degrade to a cold start with a WARN log — a half-written or
        incompatible snapshot must never keep the server down.
        """
        plans_loaded = 0
        if os.path.exists(self.plans_path):
            plans_loaded = self._engine.load_plans(self.plans_path, on_corrupt="cold")
        answers_loaded = 0
        cache = self._engine.answer_cache
        if cache is not None and os.path.exists(self.answers_path):
            try:
                payload = read_answer_store(self.answers_path)
            except PlanStoreError as exc:
                logger.warning(
                    "answer store %s unusable (%s); degrading to cold "
                    "answer cache",
                    self.answers_path,
                    exc,
                )
            else:
                answers_loaded = cache.absorb(payload["entries"])
                self._engine._advance_draw_ids(int(payload.get("max_draw_id", 0)) + 1)
        return plans_loaded, answers_loaded

    # ------------------------------------------------------------- background
    def start(self) -> None:
        """Start the background snapshot thread (daemon; idempotent)."""
        if self.interval <= 0 or self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-snapshotter", daemon=True
        )
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.snapshot()
                with self._lock:
                    self.last_error = None
            except Exception as exc:  # keep snapshotting; a full disk may clear
                with self._lock:
                    self.last_error = f"{type(exc).__name__}: {exc}"
                logger.warning("background snapshot failed: %s", exc)

    def stop(self, final_snapshot: bool = True) -> None:
        """Stop the background thread, taking one last snapshot by default."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=30.0)
        if final_snapshot:
            try:
                self.snapshot()
            except Exception as exc:
                logger.warning("final snapshot failed: %s", exc)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Snapshotter({self.directory!r}, interval={self.interval}, "
            f"taken={self.snapshots_taken})"
        )
