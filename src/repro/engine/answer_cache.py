"""Noisy-answer cache: re-asked queries are free, consolidation is draw-aware.

Differential privacy (and Blowfish privacy) is closed under post-processing:
once a noisy answer has been *paid for*, replaying the stored vector to any
number of clients consumes **zero** additional budget.  The cache therefore
keys entries by ``(policy, workload, epsilon)`` content signatures and hands
the identical noisy vector back on every replay.

The cache also supports *consistency consolidation*: all paid-for
measurements under one policy are noisy views ``y_i ≈ W_i x`` of the same
histogram, so a least-squares solve yields a single estimate ``x̂`` from
which every cached workload is re-answered as ``W_i x̂``.  This is pure
post-processing — zero budget — and makes every cached answer mutually
consistent.

**Covariance model.**  Consolidation solves a *generalised* least squares
over how the measurements were physically produced, not an independence
assumption:

* every stored :class:`Measurement` records the **draw ids** of the
  mechanism invocation(s) that produced it — one id per unsharded batch
  invocation, one per per-shard invocation for scatter/gathered answers;
* data-independent mechanisms additionally attach an honest *noise model*
  (:class:`~repro.mechanisms.base.NoiseModel`): per-row standard deviations
  plus, where the noise is linear, a factor basis ``R`` per draw such that
  the measurement's noise is ``Σ_d R_d η_d`` for i.i.d. unit-variance
  factors ``η_d`` shared with every batch-mate of draw ``d``;
* the consolidation stack assembles the implied **block-sparse covariance**:
  within-draw blocks ``R_i,d R_j,dᵀ`` between measurements sharing draw
  ``d`` (shard invocations included), honest diagonal variances for
  measurements that state only their per-row scales, and the conservative
  ``2/ε²`` proxy for measurements predating the metadata (data-dependent
  estimators such as DAWA, whose noise cannot be stated a priori);
* :func:`~repro.postprocess.generalised_least_squares_estimate` solves the
  whitened system, degenerating **bit-identically** to the weighted solver
  whenever the assembled covariance is diagonal (all draw ids distinct and
  no factor bases) — so uncorrelated caches behave exactly as before.

Entries may hold *several* measurements of the same workload: the engine's
``top_up`` buys a fresh measurement at a small extra ε and GLS-combines it
with the cached ones, charging only the increment.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.workload import Workload
from ..policy.graph import PolicyGraph
from ..postprocess.least_squares import (
    generalised_least_squares_estimate,
    weighted_least_squares_estimate,
)
from .signature import answer_key, policy_signature

AnswerKey = Tuple[str, str, str]

#: Relative floor applied to covariance diagonals: rows with (near-)zero
#: declared noise — e.g. all-zero gathered queries outside every shard —
#: must not make the covariance singular.
_VARIANCE_FLOOR = 1e-12


@dataclass
class Measurement:
    """One paid-for noisy measurement of a cached workload.

    ``answers`` is the vector exactly as the mechanism released it.
    ``draw_id`` / ``shard_draw_ids`` identify the invocation(s) whose noise
    it carries (batch-mates sharing an id share a draw); ``noise_stds`` and
    ``noise_bases`` are the honest noise model when the mechanism could
    state one — ``noise_bases`` maps each draw id to the factor rows ``R_d``
    of this measurement within that invocation's factor space, so
    ``Cov = Σ_d R_d R_dᵀ`` and cross-measurement blocks follow from shared
    draw ids.  Without bases the measurement is modelled as uncorrelated at
    ``noise_stds`` (or at the ``2/ε²`` proxy when even those are unknown).
    """

    answers: np.ndarray
    epsilon: float
    draw_id: Optional[int] = None
    shard_draw_ids: Optional[Dict[int, int]] = None
    noise_stds: Optional[np.ndarray] = None
    noise_bases: Optional[Dict[int, sp.csr_matrix]] = None

    def draw_ids(self) -> Iterator[int]:
        """Every invocation draw id this measurement mixes."""
        if self.shard_draw_ids:
            yield from self.shard_draw_ids.values()
        elif self.draw_id is not None:
            yield self.draw_id

    def variances(self) -> np.ndarray:
        """Honest per-row variances, or the ε-implied proxy when unknown.

        The proxy is ``2/ε²`` — the variance of a sensitivity-1 Laplace
        release at budget ε — so it lives on the SAME scale as the honest
        ``noise_stds²``: a mixed stack (honest rows next to proxy rows)
        must not systematically over-weight the proxy side.
        """
        if self.noise_stds is not None:
            return np.asarray(self.noise_stds, dtype=np.float64) ** 2
        return np.full(self.answers.shape[0], 2.0 / self.epsilon**2)


@dataclass
class CachedAnswer:
    """One cached workload: its served answers plus every raw measurement.

    ``answers`` is what replays serve and may be overwritten by
    consolidation or top-ups.  ``measurements`` keeps each paid-for vector
    exactly as released — consolidation always solves from the raw
    measurements, since re-solving from already-blended vectors would treat
    correlated answers as independent evidence and double-count information.
    ``epsilon`` is the entry's *key* budget (the ε the query was asked at);
    :attr:`total_epsilon` additionally counts top-up increments.
    """

    key: AnswerKey
    workload: Workload
    epsilon: float
    answers: np.ndarray
    measurements: List[Measurement] = field(default_factory=list)
    replays: int = 0
    consolidated: bool = False

    # ------------------------------------------------- original-buy views
    @property
    def raw_answers(self) -> np.ndarray:
        """The original measurement, exactly as the mechanism released it."""
        return self.measurements[0].answers

    @property
    def draw_id(self) -> Optional[int]:
        """Draw id of the original buy (``None`` for gathered multi-shard)."""
        return self.measurements[0].draw_id

    @property
    def shard_draw_ids(self) -> Optional[Dict[int, int]]:
        """Per-shard draw ids of the original buy, when it was scattered."""
        return self.measurements[0].shard_draw_ids

    @property
    def total_epsilon(self) -> float:
        """Budget actually sunk into this entry (original buy + top-ups)."""
        return float(sum(m.epsilon for m in self.measurements))


@dataclass
class AnswerCacheStats:
    """Hit/miss counters of an :class:`AnswerCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: Fresh measurements bought through :meth:`AnswerCache.append_measurement`
    #: (the engine's ``top_up``), each charging only its increment.
    top_ups: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class AnswerCache:
    """Bounded LRU cache of noisy answers, grouped by policy for consolidation.

    Parameters
    ----------
    maxsize:
        Maximum number of paid-for answer vectors kept.  Least-recently-used
        entries are evicted first; an evicted answer simply has to be paid
        for again on the next ask, so eviction affects cost, never
        correctness.
    metrics:
        Optional :class:`~repro.engine.observability.MetricsRegistry`; when
        given, lookups additionally bump
        ``engine_answer_cache_lookups_total`` counters (labelled
        ``result="hit"``/``"miss"``).  :attr:`stats` counts either way.
    """

    def __init__(self, maxsize: int = 1024, metrics=None) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: "OrderedDict[AnswerKey, CachedAnswer]" = OrderedDict()
        self._by_policy: Dict[str, List[AnswerKey]] = {}
        self._lock = threading.Lock()
        self.stats = AnswerCacheStats()
        if metrics is None:
            self._m_hits = self._m_misses = None
        else:
            self._m_hits = metrics.counter(
                "engine_answer_cache_lookups_total",
                "Answer-cache lookups by result",
                result="hit",
            )
            self._m_misses = metrics.counter(
                "engine_answer_cache_lookups_total",
                "Answer-cache lookups by result",
                result="miss",
            )

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ access
    def lookup(
        self, policy: PolicyGraph, workload: Workload, epsilon: float
    ) -> Optional[CachedAnswer]:
        """Return the cached entry for this query, counting the hit/miss."""
        key = answer_key(policy, workload, epsilon)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                if self._m_misses is not None:
                    self._m_misses.inc()
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()
            entry.replays += 1
            return entry

    def peek(
        self, policy: PolicyGraph, workload: Workload, epsilon: float
    ) -> Optional[CachedAnswer]:
        """Return the entry without counting a hit/miss or touching LRU order."""
        key = answer_key(policy, workload, epsilon)
        with self._lock:
            return self._entries.get(key)

    def find(self, policy: PolicyGraph, workload: Workload) -> List[CachedAnswer]:
        """Every cached entry for this (policy, workload), across all ε keys.

        Counter- and LRU-neutral; used by the engine's ``top_up`` to locate
        the measurement to upgrade when the caller does not name the ε it
        was originally bought at.
        """
        policy_sig = policy_signature(policy)
        workload_sig = workload.signature()
        with self._lock:
            return [
                self._entries[key]
                for key in self._by_policy.get(policy_sig, ())
                if key[1] == workload_sig and key in self._entries
            ]

    def store(
        self,
        policy: PolicyGraph,
        workload: Workload,
        epsilon: float,
        answers: np.ndarray,
        draw_id: Optional[int] = None,
        shard_draw_ids: Optional[Dict[int, int]] = None,
        noise_stds: Optional[np.ndarray] = None,
        noise_bases: Optional[Dict[int, sp.csr_matrix]] = None,
    ) -> CachedAnswer:
        """Store a freshly paid-for answer vector.

        ``draw_id`` tags the mechanism invocation the measurement came from
        (batch-mates stored with the same id share a noise draw); sharded
        answers pass ``shard_draw_ids`` instead, one id per per-shard
        invocation the gathered vector mixes.  ``noise_stds`` /
        ``noise_bases`` attach the mechanism's honest noise model when it
        could state one (see :class:`Measurement`).
        """
        key = answer_key(policy, workload, epsilon)
        vector = np.asarray(answers, dtype=np.float64).copy()
        measurement = Measurement(
            answers=vector.copy(),
            epsilon=float(epsilon),
            draw_id=draw_id,
            shard_draw_ids=dict(shard_draw_ids) if shard_draw_ids else None,
            noise_stds=(
                np.asarray(noise_stds, dtype=np.float64).copy()
                if noise_stds is not None
                else None
            ),
            noise_bases=dict(noise_bases) if noise_bases else None,
        )
        entry = CachedAnswer(
            key=key,
            workload=workload,
            epsilon=float(epsilon),
            answers=vector,
            measurements=[measurement],
        )
        with self._lock:
            already_present = key in self._entries
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if not already_present:
                self._by_policy.setdefault(key[0], []).append(key)
            while len(self._entries) > self._maxsize:
                evicted_key, _ = self._entries.popitem(last=False)
                policy_keys = self._by_policy.get(evicted_key[0])
                if policy_keys is not None:
                    policy_keys.remove(evicted_key)
                    if not policy_keys:
                        del self._by_policy[evicted_key[0]]
                self.stats.evictions += 1
        return entry

    def append_measurement(
        self,
        key: AnswerKey,
        workload: Workload,
        measurement: Measurement,
        key_epsilon: float,
    ) -> CachedAnswer:
        """Attach a top-up measurement to the live entry under ``key``.

        The entry's served answers are re-solved by GLS over *its own*
        measurements (draws of distinct invocations are independent, so the
        combined estimate is variance-optimal given the declared models).
        If the entry was evicted or superseded while the top-up executed,
        the fresh measurement is stored as a new entry under the same key —
        the budget was spent and the release exists, so it must be served.
        ``key_epsilon`` is the ε the key was originally asked at, preserved
        on the re-created entry (``CachedAnswer.epsilon`` is the key ε by
        contract, never the top-up increment).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                entry = CachedAnswer(
                    key=key,
                    workload=workload,
                    epsilon=float(key_epsilon),
                    answers=measurement.answers.copy(),
                    measurements=[measurement],
                )
                self._entries[key] = entry
                self._entries.move_to_end(key)
                self._by_policy.setdefault(key[0], []).append(key)
                # Same bound discipline as store(): the race re-insert must
                # not push the cache past its documented maxsize.
                while len(self._entries) > self._maxsize:
                    evicted_key, _ = self._entries.popitem(last=False)
                    policy_keys = self._by_policy.get(evicted_key[0])
                    if policy_keys is not None:
                        policy_keys.remove(evicted_key)
                        if not policy_keys:
                            del self._by_policy[evicted_key[0]]
                    self.stats.evictions += 1
                self.stats.top_ups += 1
                return entry
            entry.measurements.append(measurement)
            self._entries.move_to_end(key)
            self.stats.top_ups += 1
            measurements = list(entry.measurements)
        # Solve outside the lock (the stack is small but the solve is not
        # free); write back under the lock, identity-checked like
        # consolidate's write-back.
        matrix, values, covariance = stack_measurements(
            [(entry.workload, m) for m in measurements]
        )
        estimate = generalised_least_squares_estimate(matrix, values, covariance)
        combined = np.asarray(entry.workload.matrix @ estimate).ravel()
        with self._lock:
            if (
                self._entries.get(key) is entry
                and len(entry.measurements) == len(measurements)
            ):
                # Identity AND count verified: a racing top-up that appended
                # after our snapshot wins with its fresher combined vector.
                entry.answers = combined
        return entry

    # ------------------------------------------------------------ persistence
    def export_entries(self) -> List[Tuple[AnswerKey, CachedAnswer]]:
        """Snapshot the entries in LRU order (oldest first), for persistence.

        The snapshot is taken under the lock, so it is internally consistent
        against concurrent stores; the entries themselves are shared (not
        deep-copied) — the snapshotter pickles them immediately, and every
        mutation path replaces ``answers`` wholesale rather than editing in
        place, so a racing consolidation cannot tear a pickled vector.
        """
        with self._lock:
            return list(self._entries.items())

    def absorb(self, entries: List[Tuple[AnswerKey, CachedAnswer]]) -> int:
        """Insert persisted entries, evicting LRU-style past ``maxsize``.

        Entries already present under the same key are left in place (the
        live entry is at least as fresh as the persisted one).  Returns the
        number of inserted entries that survived the bound, mirroring
        :meth:`PlanCache.absorb`.
        """
        inserted: List[AnswerKey] = []
        with self._lock:
            for key, entry in entries:
                if key in self._entries:
                    continue
                self._entries[key] = entry
                self._entries.move_to_end(key)
                self._by_policy.setdefault(key[0], []).append(key)
                inserted.append(key)
                while len(self._entries) > self._maxsize:
                    evicted_key, _ = self._entries.popitem(last=False)
                    policy_keys = self._by_policy.get(evicted_key[0])
                    if policy_keys is not None:
                        policy_keys.remove(evicted_key)
                        if not policy_keys:
                            del self._by_policy[evicted_key[0]]
                    self.stats.evictions += 1
            return sum(1 for key in inserted if key in self._entries)

    def max_draw_id(self) -> int:
        """The largest draw id any cached measurement references (0 if none).

        A restore must advance the engine's draw-id counter past this, or
        fresh invocations would collide with recovered measurements and the
        GLS consolidation would treat independent draws as shared.
        """
        largest = 0
        with self._lock:
            for entry in self._entries.values():
                for measurement in entry.measurements:
                    for draw in measurement.draw_ids():
                        largest = max(largest, int(draw))
        return largest

    def count_follower_hit(self) -> None:
        """Count an intra-flush duplicate replay as a cache hit.

        The engine resolves same-flush duplicates from their leader's freshly
        stored answer; that replay is semantically a cache hit, so the
        counters must agree with the replay counter.  Taken under the cache
        lock because concurrent flushes may report hits simultaneously.
        """
        with self._lock:
            self.stats.hits += 1
            if self._m_hits is not None:
                self._m_hits.inc()

    def entries_by_draw(self, policy: PolicyGraph) -> Dict[int, List[AnswerKey]]:
        """Group this policy's cached measurements by their noise draw.

        Returns ``{draw_id: [answer keys]}`` over every measurement of every
        entry (top-ups included); groups with two or more keys are exactly
        the batch-mates whose measurement errors are correlated — the
        correlation structure the GLS consolidation models.  A sharded
        answer appears under *every* per-shard draw id it mixes.  Untagged
        measurements are omitted.
        """
        sig = policy_signature(policy)
        grouped: Dict[int, List[AnswerKey]] = {}
        with self._lock:
            for key in self._by_policy.get(sig, ()):
                entry = self._entries.get(key)
                if entry is None:
                    continue
                seen: set = set()
                for measurement in entry.measurements:
                    for draw in measurement.draw_ids():
                        if draw in seen:
                            continue
                        seen.add(draw)
                        grouped.setdefault(draw, []).append(key)
        return grouped

    # ------------------------------------------------------------ consolidation
    def consolidate(self, policy: PolicyGraph, method: str = "gls") -> int:
        """Least-squares-consolidate every cached answer under ``policy``.

        Stacks every raw measurement ``(W_i, y_i)`` for the policy and
        solves for a single histogram estimate ``x̂``, then replaces each
        cached vector by ``W_i x̂``.  Consumes no budget (post-processing).

        ``method="gls"`` (default) solves the generalised least squares over
        the draw-id covariance structure described in the module docstring —
        variance-optimal given the declared noise models, and bit-identical
        to the weighted solve when the assembled covariance is diagonal.
        ``method="wls"`` restores the legacy *weighted* solve: every
        measurement treated as independent and weighted by its ε-implied
        proxy variance ``2/ε²`` alone, honest noise models ignored (a
        uniform variance scale never changes a weighted solution, so this
        is the PR 1 baseline the GLS upgrade is measured against).

        Returns the number of **live** entries updated: the solve runs
        outside the lock, so the write-back re-verifies each entry by object
        identity and skips entries a concurrent ``store()`` superseded —
        mutating a superseded object would leave the live entry
        unconsolidated while still counting it.  0 or 1 cached entries are
        left untouched (nothing to reconcile).
        """
        if method not in ("gls", "wls"):
            raise ValueError(f"Unknown consolidation method {method!r}")
        sig = policy_signature(policy)
        with self._lock:
            keys = [k for k in self._by_policy.get(sig, ()) if k in self._entries]
            entries = [self._entries[k] for k in keys]
            # Snapshot each entry's measurement list under the lock: the
            # solve below runs lock-free, and a concurrent top-up appending
            # to the live list must not tear the stack.
            snapshots = [list(entry.measurements) for entry in entries]
        if len(entries) < 2:
            return 0
        stack = [
            (entry.workload, measurement)
            for entry, measurements in zip(entries, snapshots)
            for measurement in measurements
        ]
        matrix, values, covariance = stack_measurements(stack)
        if method == "wls":
            variances = np.concatenate(
                [
                    np.full(workload.num_queries, 2.0 / measurement.epsilon**2)
                    for workload, measurement in stack
                ]
            )
            estimate = weighted_least_squares_estimate(matrix, values, variances)
        else:
            estimate = generalised_least_squares_estimate(matrix, values, covariance)
        updated = 0
        with self._lock:
            for key, entry, measurements in zip(keys, entries, snapshots):
                if self._entries.get(key) is not entry:
                    # Superseded by a concurrent store(): the live entry's
                    # measurement was not part of this solve, so leave it
                    # alone (and do not count the dead object).
                    continue
                if len(entry.measurements) != len(measurements):
                    # A concurrent top_up bought a measurement this solve
                    # never saw; overwriting its combined vector would throw
                    # paid-for evidence away.  Leave the fresher answer.
                    continue
                entry.answers = np.asarray(entry.workload.matrix @ estimate).ravel()
                entry.consolidated = True
                updated += 1
        return updated

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._by_policy.clear()


# ---------------------------------------------------------------------------
# Covariance assembly (module-level so tests can probe the model directly).
# ---------------------------------------------------------------------------
def stack_measurements(
    stack: List[Tuple[Workload, Measurement]],
) -> Tuple[sp.csr_matrix, np.ndarray, sp.csr_matrix]:
    """Stack measurements into ``(A, y, Σ)`` for a generalised LS solve.

    ``Σ`` is the block-sparse covariance the draw bookkeeping implies:

    * measurements carrying factor bases contribute ``R_i,d R_j,dᵀ`` blocks
      for every draw ``d`` they share (``i = j`` included — a measurement's
      own rows correlate through their common draw);
    * measurements with only per-row stds contribute an honest diagonal;
    * measurements with no metadata contribute the ``2/ε²`` proxy diagonal
      (the variance of a sensitivity-1 Laplace release at ε — the same
      scale as honest stds, so mixed stacks are not mis-weighted).

    Cross-blocks between a based and an unbased measurement are unknown and
    honestly modelled as zero.  The diagonal is floored at a small relative
    value so exactly-noiseless rows (all-zero gathered queries) cannot make
    ``Σ`` singular.
    """
    if not stack:
        return (
            sp.csr_matrix((0, 0)),
            np.empty(0, dtype=np.float64),
            sp.csr_matrix((0, 0)),
        )
    matrix = sp.vstack([workload.matrix for workload, _ in stack], format="csr")
    values = np.concatenate(
        [np.asarray(m.answers, dtype=np.float64) for _, m in stack]
    )
    total = int(values.shape[0])

    diagonal = np.zeros(total, dtype=np.float64)
    by_draw: Dict[int, List[Tuple[int, sp.csr_matrix]]] = {}
    offset = 0
    for workload, measurement in stack:
        rows = workload.num_queries
        if measurement.noise_bases:
            # The factor model describes this measurement's noise entirely;
            # its diagonal emerges from the basis products below.
            for draw, basis in measurement.noise_bases.items():
                by_draw.setdefault(draw, []).append((offset, sp.csr_matrix(basis)))
        else:
            diagonal[offset : offset + rows] = measurement.variances()
        offset += rows

    parts: List[sp.coo_matrix] = []
    if np.any(diagonal):
        parts.append(sp.coo_matrix(sp.diags(diagonal)))
    for items in by_draw.values():
        for i, (offset_i, basis_i) in enumerate(items):
            for offset_j, basis_j in items[i:]:
                block = sp.coo_matrix(basis_i @ basis_j.T)
                parts.append(
                    sp.coo_matrix(
                        (block.data, (block.row + offset_i, block.col + offset_j)),
                        shape=(total, total),
                    )
                )
                if offset_i != offset_j:
                    parts.append(
                        sp.coo_matrix(
                            (block.data, (block.col + offset_j, block.row + offset_i)),
                            shape=(total, total),
                        )
                    )
    if parts:
        covariance = sp.csr_matrix(sum(part.tocsr() for part in parts))
    else:
        covariance = sp.csr_matrix((total, total))
    # Floor the diagonal: zero-variance rows (noiseless exact zeros) and
    # numerically vanished ones must not make the whitening singular.
    current = covariance.diagonal()
    floor = _VARIANCE_FLOOR * max(float(current.max(initial=0.0)), 1.0)
    deficit = np.maximum(floor - current, 0.0)
    if np.any(deficit > 0):
        covariance = sp.csr_matrix(covariance + sp.diags(deficit))
    return matrix, values, covariance
