"""Noisy-answer cache: re-asked queries are free.

Differential privacy (and Blowfish privacy) is closed under post-processing:
once a noisy answer has been *paid for*, replaying the stored vector to any
number of clients consumes **zero** additional budget.  The cache therefore
keys entries by ``(policy, workload, epsilon)`` content signatures and hands
the identical noisy vector back on every replay.

The cache also supports *consistency consolidation*: all paid-for
measurements under one policy are noisy views ``y_i ≈ W_i x`` of the same
histogram, so a variance-weighted least-squares solve yields a single
estimate ``x̂`` from which every cached workload is re-answered as
``W_i x̂``.  This is pure post-processing — zero budget — and makes every
cached answer mutually consistent.

The variance weighting treats measurements as independent, which is an
approximation: answers bought in the same batch (and the rows within one
answer) share a noise draw, so correlated measurements receive somewhat more
weight than a full generalised-least-squares treatment would give them.
Consolidation is therefore always *sound* (post-processing) and always
*consistent*, but only approximately variance-optimal; tracking per-draw
covariance is an open item in ROADMAP.md.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.workload import Workload
from ..policy.graph import PolicyGraph
from ..postprocess.least_squares import weighted_least_squares_estimate
from .signature import answer_key, policy_signature

AnswerKey = Tuple[str, str, str]


@dataclass
class CachedAnswer:
    """One paid-for noisy answer vector and the workload it answers.

    ``raw_answers`` keeps the measurement exactly as the mechanism released
    it; ``answers`` is what replays serve and may be overwritten by
    consolidation.  Consolidation always solves from the raw measurements —
    re-solving from already-blended vectors would treat correlated answers as
    independent evidence and double-count information.
    """

    key: AnswerKey
    workload: Workload
    epsilon: float
    answers: np.ndarray
    raw_answers: np.ndarray = None  # type: ignore[assignment]
    replays: int = 0
    consolidated: bool = False
    #: Identifier of the mechanism invocation that produced ``raw_answers``.
    #: Entries sharing a draw id were bought in one batched invocation and
    #: therefore share a noise draw — their measurement errors are correlated.
    #: The ε²-weighted consolidation still treats them as independent (see the
    #: module docstring); the draw id is the bookkeeping the road-mapped
    #: generalised-least-squares upgrade needs to model that correlation.
    #: ``None`` marks measurements from engines or code paths predating the
    #: tagging, and sharded answers gathered from several per-shard
    #: invocations (their draw structure lives in ``shard_draw_ids``).
    draw_id: Optional[int] = None
    #: Sharded answers: ``{shard index: draw id}``, one id per per-shard
    #: invocation the gathered vector mixes.  Two cached answers correlate
    #: exactly on the shard ids they share.
    shard_draw_ids: Optional[Dict[int, int]] = None

    def __post_init__(self) -> None:
        if self.raw_answers is None:
            self.raw_answers = self.answers.copy()


@dataclass
class AnswerCacheStats:
    """Hit/miss counters of an :class:`AnswerCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class AnswerCache:
    """Bounded LRU cache of noisy answers, grouped by policy for consolidation.

    Parameters
    ----------
    maxsize:
        Maximum number of paid-for answer vectors kept.  Least-recently-used
        entries are evicted first; an evicted answer simply has to be paid
        for again on the next ask, so eviction affects cost, never
        correctness.
    """

    def __init__(self, maxsize: int = 1024) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: "OrderedDict[AnswerKey, CachedAnswer]" = OrderedDict()
        self._by_policy: Dict[str, List[AnswerKey]] = {}
        self._lock = threading.Lock()
        self.stats = AnswerCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ access
    def lookup(
        self, policy: PolicyGraph, workload: Workload, epsilon: float
    ) -> Optional[CachedAnswer]:
        """Return the cached entry for this query, counting the hit/miss."""
        key = answer_key(policy, workload, epsilon)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            entry.replays += 1
            return entry

    def store(
        self,
        policy: PolicyGraph,
        workload: Workload,
        epsilon: float,
        answers: np.ndarray,
        draw_id: Optional[int] = None,
        shard_draw_ids: Optional[Dict[int, int]] = None,
    ) -> CachedAnswer:
        """Store a freshly paid-for answer vector.

        ``draw_id`` tags the mechanism invocation the measurement came from;
        batch-mates stored with the same id share a noise draw.  Sharded
        answers pass ``shard_draw_ids`` instead: one id per per-shard
        invocation the gathered vector mixes.
        """
        key = answer_key(policy, workload, epsilon)
        entry = CachedAnswer(
            key=key,
            workload=workload,
            epsilon=float(epsilon),
            answers=np.asarray(answers, dtype=np.float64).copy(),
            draw_id=draw_id,
            shard_draw_ids=dict(shard_draw_ids) if shard_draw_ids else None,
        )
        with self._lock:
            already_present = key in self._entries
            self._entries[key] = entry
            self._entries.move_to_end(key)
            if not already_present:
                self._by_policy.setdefault(key[0], []).append(key)
            while len(self._entries) > self._maxsize:
                evicted_key, _ = self._entries.popitem(last=False)
                policy_keys = self._by_policy.get(evicted_key[0])
                if policy_keys is not None:
                    policy_keys.remove(evicted_key)
                    if not policy_keys:
                        del self._by_policy[evicted_key[0]]
                self.stats.evictions += 1
        return entry

    def count_follower_hit(self) -> None:
        """Count an intra-flush duplicate replay as a cache hit.

        The engine resolves same-flush duplicates from their leader's freshly
        stored answer; that replay is semantically a cache hit, so the
        counters must agree with the replay counter.  Taken under the cache
        lock because concurrent flushes may report hits simultaneously.
        """
        with self._lock:
            self.stats.hits += 1

    def entries_by_draw(self, policy: PolicyGraph) -> Dict[int, List[AnswerKey]]:
        """Group this policy's cached measurements by their noise draw.

        Returns ``{draw_id: [answer keys]}`` for entries that carry draw
        ids; groups with two or more keys are exactly the batch-mates whose
        measurement errors are correlated (the input the road-mapped GLS
        consolidation will consume).  A sharded answer appears under *every*
        per-shard draw id it mixes — two gathered answers correlate exactly
        on the shard invocations they share.  Untagged entries are omitted.
        """
        sig = policy_signature(policy)
        grouped: Dict[int, List[AnswerKey]] = {}
        with self._lock:
            for key in self._by_policy.get(sig, ()):
                entry = self._entries.get(key)
                if entry is None:
                    continue
                if entry.shard_draw_ids:
                    for shard_draw_id in entry.shard_draw_ids.values():
                        grouped.setdefault(shard_draw_id, []).append(key)
                elif entry.draw_id is not None:
                    grouped.setdefault(entry.draw_id, []).append(key)
        return grouped

    # ------------------------------------------------------------ consolidation
    def consolidate(self, policy: PolicyGraph) -> int:
        """Least-squares-consolidate every cached answer under ``policy``.

        Stacks all cached measurements ``(W_i, y_i)`` for the policy, solves a
        *variance-weighted* least squares (a measurement bought at budget ε
        carries Laplace noise of scale ∝ 1/ε, so rows are weighted by ε² —
        otherwise one very noisy cheap measurement would drag every precise
        answer toward it) and replaces each cached vector by ``W_i x̂``.
        Returns the number of entries updated (0 or 1 entries are left
        untouched — there is nothing to reconcile).  Consumes no budget.
        """
        sig = policy_signature(policy)
        with self._lock:
            keys = [k for k in self._by_policy.get(sig, ()) if k in self._entries]
            entries = [self._entries[k] for k in keys]
        if len(entries) < 2:
            return 0
        matrix = sp.vstack([e.workload.matrix for e in entries], format="csr")
        measurements = np.concatenate([e.raw_answers for e in entries])
        variances = np.concatenate(
            [np.full(e.workload.num_queries, 1.0 / e.epsilon**2) for e in entries]
        )
        estimate = weighted_least_squares_estimate(matrix, measurements, variances)
        with self._lock:
            for entry in entries:
                entry.answers = np.asarray(entry.workload.matrix @ estimate).ravel()
                entry.consolidated = True
        return len(entries)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
            self._by_policy.clear()
