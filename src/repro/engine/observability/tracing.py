"""Per-flush tracing: one :class:`Trace` per flush/top-up, spans per stage/unit.

A trace is the flight recorder of a single pipeline run: the
:class:`~repro.engine.FlushPipeline` opens one per flush, adds one
:class:`Span` per pipeline stage (plan/charge/execute/resolve, one set per
round) and one per execute work unit, and the process backend ships
**worker-measured** spans back with the answers (piggybacked on the PR 5
kernel-seconds return channel), so a single flush yields a coherent tree
spanning the parent and worker processes.

Clocks: span boundaries are ``time.time()`` epoch seconds — the one clock a
parent and a spawned worker process share — so worker spans nest correctly
under their parent-measured unit spans.  (Durations the cost model consumes
stay ``perf_counter``-based; tracing never feeds routing.)

Traces are thread-safe (concurrent flushes each hold their *own* trace, but
the execute stage may resolve futures from several threads) and exportable
two ways: :meth:`Trace.to_dict`/:meth:`Trace.to_json` produce the nested
span tree, :meth:`Trace.waterfall` renders an aligned ASCII timeline for
terminals and logs.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Dict, List, Optional, Union

__all__ = ["Span", "Trace", "Tracer"]


class Span:
    """One timed operation inside a trace (epoch-seconds boundaries)."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attributes")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        end: float,
        attributes: dict,
    ) -> None:
        self.name = str(name)
        self.span_id = int(span_id)
        self.parent_id = parent_id
        self.start = float(start)
        self.end = float(end)
        self.attributes = dict(attributes)

    @property
    def duration(self) -> float:
        """Span wall-clock in seconds (never negative)."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration * 1e3:.3f} ms)"


class Trace:
    """One flush/top-up's span tree; created via :meth:`Tracer.start_trace`."""

    def __init__(
        self,
        trace_id: str,
        name: str,
        tracer: Optional["Tracer"] = None,
        attributes: Optional[dict] = None,
    ) -> None:
        self.trace_id = str(trace_id)
        self.name = str(name)
        self.attributes = dict(attributes or {})
        self.start = time.time()
        self.end: Optional[float] = None
        self._tracer = tracer
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._span_ids = itertools.count(1)

    # ----------------------------------------------------------------- spans
    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Union[Span, int, None] = None,
        **attributes,
    ) -> Span:
        """Record an externally measured span (worker spans, stage spans)."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(name, next(self._span_ids), parent_id, start, end, attributes)
        with self._lock:
            self._spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, parent: Union[Span, int, None] = None, **attributes):
        """Measure a block as a span: ``with trace.span("plan"): ...``."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        started = time.time()
        span = Span(name, next(self._span_ids), parent_id, started, started, attributes)
        try:
            yield span
        finally:
            span.end = time.time()
            with self._lock:
                self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        """Snapshot of the recorded spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def find(self, name: str) -> List[Span]:
        """Every span named ``name`` (test/assertion helper)."""
        return [span for span in self.spans if span.name == name]

    # -------------------------------------------------------------- lifecycle
    def finish(self) -> "Trace":
        """Close the trace (idempotent) and hand it to the owning tracer."""
        if self.end is None:
            self.end = time.time()
            if self._tracer is not None:
                self._tracer._complete(self)
        return self

    @property
    def duration(self) -> float:
        end = self.end if self.end is not None else time.time()
        return max(0.0, end - self.start)

    # -------------------------------------------------------------- exporters
    def to_dict(self) -> dict:
        """The nested span tree (children grouped under their parents)."""
        spans = self.spans
        nodes: Dict[int, dict] = {span.span_id: span.to_dict() for span in spans}
        for node in nodes.values():
            node["children"] = []
        roots: List[dict] = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id is not None else None
            (parent["children"] if parent is not None else roots).append(node)
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "spans": roots,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True, default=str)

    def waterfall(self, width: int = 56) -> str:
        """ASCII waterfall: tree-indented spans on a shared timeline."""
        spans = self.spans
        end = self.end if self.end is not None else time.time()
        for span in spans:  # a worker clock may run past the parent's finish
            end = max(end, span.end)
        total = max(end - self.start, 1e-9)
        header = (
            f"trace {self.trace_id} ({self.name}): "
            f"{total * 1e3:.2f} ms, {len(spans)} spans"
        )
        lines = [header]
        children: Dict[Optional[int], List[Span]] = {}
        for span in spans:
            children.setdefault(span.parent_id, []).append(span)

        def render(span: Span, depth: int) -> None:
            offset = int((span.start - self.start) / total * width)
            offset = min(max(offset, 0), width - 1)
            length = max(1, int(span.duration / total * width))
            length = min(length, width - offset)
            bar = " " * offset + "#" * length
            label = ("  " * depth) + span.name
            lines.append(
                f"  {label:<22.22s} |{bar:<{width}s}| {span.duration * 1e3:9.3f} ms"
            )
            for child in sorted(children.get(span.span_id, []), key=lambda s: s.start):
                render(child, depth + 1)

        for root in sorted(children.get(None, []), key=lambda s: s.start):
            render(root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace({self.trace_id!r}, name={self.name!r}, "
            f"spans={len(self.spans)}, finished={self.end is not None})"
        )


class Tracer:
    """Factory and bounded ring buffer of completed traces."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._lock = threading.Lock()
        self._completed: "deque[Trace]" = deque(maxlen=int(capacity))
        self._trace_ids = itertools.count(1)

    def start_trace(self, name: str, **attributes) -> Trace:
        """Open a new trace; it joins :meth:`traces` when ``finish()`` runs."""
        trace_id = f"trace-{next(self._trace_ids):05d}"
        return Trace(trace_id, name, tracer=self, attributes=attributes)

    def _complete(self, trace: Trace) -> None:
        with self._lock:
            self._completed.append(trace)

    def traces(self) -> List[Trace]:
        """Completed traces, oldest first (bounded by ``capacity``)."""
        with self._lock:
            return list(self._completed)

    def last(self) -> Optional[Trace]:
        """The most recently completed trace, if any."""
        with self._lock:
            return self._completed[-1] if self._completed else None

    def find(self, trace_id: str) -> Optional[Trace]:
        """Look a completed trace up by id."""
        with self._lock:
            for trace in self._completed:
                if trace.trace_id == trace_id:
                    return trace
        return None
