"""The durable ε-audit stream: append-only JSON-lines privacy event log.

Every mutation of privacy state — charge, rollback, refusal, scope open and
close, top-up — becomes one :class:`AuditLog` event.  Events carry the ids
needed to reconstruct *who spent what, when, and under which flush*: ticket
id, session/client id, ε amount, and the trace id of the pipeline run that
caused the mutation (see the package docstring for the full schema).

Durability: when constructed with a ``path``, each event is serialised as
one JSON line and flushed to the file immediately, so the stream survives a
crashed process up to the last completed event.  A bounded in-memory deque
mirrors recent events for tests and the ``tail`` inspection helper.

Ambient context: emit sites deep in the pipeline (the accountant's
``charge`` does not know which flush invoked it) get their trace/ticket ids
from a thread-local context stack — the pipeline wraps each charge in
``audit.context(trace_id=..., ticket_id=..., client_id=...)`` and the
accountant's unqualified ``emit("charge", ...)`` inherits those fields.
Thread-locality is exactly right here: concurrent flushes run on distinct
threads, so their contexts never bleed into each other's events.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import IO, Iterator, List, Optional, Union

__all__ = ["AuditLog", "read_audit_events"]

logger = logging.getLogger(__name__)


class AuditLog:
    """Append-only privacy event stream with optional JSON-lines durability.

    Parameters
    ----------
    path:
        Optional file path; events are appended as JSON lines and flushed
        per event.  The file is opened lazily on first emit and closed by
        :meth:`close`.
    stream:
        Optional already-open text stream (takes precedence over ``path``);
        useful for tests and for piping the stream elsewhere.  Not closed
        by :meth:`close`.
    capacity:
        Bound on the in-memory mirror of recent events.
    fsync:
        Durability policy for the owned file.  ``False`` (default) flushes
        each event to the OS — durable against *process* death, the crash
        model the recovery tests exercise.  ``True`` additionally
        ``os.fsync``\\ s after every event — durable against power loss, at
        a per-event syscall cost (matches a ``synchronous=FULL`` ledger).
        Ignored for caller-owned ``stream`` sinks.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        stream: Optional[IO[str]] = None,
        capacity: int = 4096,
        fsync: bool = False,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._path = str(path) if path is not None else None
        self._stream = stream
        self._file: Optional[IO[str]] = None
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        self._events: "deque[dict]" = deque(maxlen=int(capacity))
        self._seq = 0
        self._local = threading.local()

    # --------------------------------------------------------------- context
    @contextmanager
    def context(self, **fields):
        """Push ambient fields merged into every event emitted on this thread."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        frame = {k: v for k, v in fields.items() if v is not None}
        stack.append(frame)
        try:
            yield
        finally:
            stack.pop()

    def _ambient(self) -> dict:
        merged: dict = {}
        for frame in getattr(self._local, "stack", ()):
            merged.update(frame)
        return merged

    # ------------------------------------------------------------------ emit
    def emit(self, event: str, **fields) -> dict:
        """Record one event; explicit fields override ambient context."""
        record = self._ambient()
        record.update((k, v) for k, v in fields.items() if v is not None)
        record["event"] = str(event)
        record["ts"] = time.time()
        with self._lock:
            self._seq += 1
            record["seq"] = self._seq
            self._events.append(record)
            sink = self._stream
            if sink is None and self._path is not None:
                if self._file is None:
                    self._file = open(self._path, "a", encoding="utf-8")
                sink = self._file
            if sink is not None:
                sink.write(json.dumps(record, sort_keys=True, default=str) + "\n")
                sink.flush()
                if self._fsync and sink is self._file:
                    os.fsync(sink.fileno())
        return record

    # ------------------------------------------------------------ inspection
    @property
    def count(self) -> int:
        """Events emitted over the log's lifetime (not bounded by capacity)."""
        with self._lock:
            return self._seq

    def events(self, event: Optional[Union[str, tuple]] = None) -> List[dict]:
        """Recent events, optionally filtered by event name(s)."""
        with self._lock:
            snapshot = list(self._events)
        if event is None:
            return snapshot
        names = (event,) if isinstance(event, str) else tuple(event)
        return [record for record in snapshot if record["event"] in names]

    def tail(self, n: int = 10) -> List[dict]:
        """The most recent ``n`` events, oldest first."""
        with self._lock:
            return list(self._events)[-int(n):]

    # --------------------------------------------------------------- cleanup
    def close(self) -> None:
        """Close the owned file handle, if one was opened (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = self._path or ("<stream>" if self._stream else "<memory>")
        return f"AuditLog({target}, events={self.count})"


def read_audit_events(path: str, strict: bool = False) -> List[dict]:
    """Read a JSONL audit stream back, tolerating a torn final line.

    A process killed mid-``write`` leaves a truncated last line (JSON cut
    off anywhere, or a line without its newline).  Crash recovery must read
    *through* that — every completed event is intact, only the tail is torn
    — so a malformed **final** line is skipped with a warning instead of
    raising; pass ``strict=True`` to raise on it instead (for readers that
    need every byte accounted for).  A malformed line *followed by further
    lines* is real corruption, not a torn tail (a crash can only truncate
    the end), and always raises ``ValueError``.
    """
    events: List[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            events.append(json.loads(stripped))
        except json.JSONDecodeError as exc:
            if index == len(lines) - 1 and not strict:
                logger.warning(
                    "audit stream %s ends in a torn line (%d bytes) — "
                    "skipped; the process died mid-write",
                    path,
                    len(line),
                )
                break
            raise ValueError(
                f"audit stream {path!r} line {index + 1} is corrupt "
                f"(not valid JSON): {exc}"
            ) from exc
    return events


def iter_audit_events(path: str) -> Iterator[dict]:
    """Iterate a JSONL audit stream with the same torn-tail tolerance."""
    yield from read_audit_events(path)
