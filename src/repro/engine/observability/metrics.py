"""A thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the engine's single source of numeric truth:
:class:`~repro.engine.EngineStats` is re-derived from registry counters on
every snapshot (the counters ARE the stats — the two can never drift), and
the latency/size distributions the aggregate counters cannot express live in
fixed-bucket histograms with p50/p95/p99 estimation.

Design points:

* **One shared lock.**  Every instrument mutates under the registry's
  re-entrant ``lock``, so a multi-field snapshot (``EngineStats``, the
  exporters) taken under that same lock is internally consistent — the
  guarantee the engine's former dedicated stats lock provided.
* **Fixed buckets.**  Histograms count into preconfigured upper bounds
  (Prometheus ``le`` semantics: bucket *i* counts observations ≤
  ``bounds[i]``, plus one overflow bucket).  Quantiles are estimated by
  linear interpolation within the bucket that crosses the rank — exact
  enough for latency dashboards, O(1) per observation, bounded memory.
* **Labels.**  Instruments are keyed by ``(name, sorted label items)``;
  registration is get-or-create, so hook sites simply re-ask the registry
  and hot paths hold pre-bound instrument references instead.
* **Exporters.**  :meth:`MetricsRegistry.to_prometheus_text` renders the
  Prometheus text exposition format (what a future HTTP serving tier mounts
  at ``/metrics``); :meth:`MetricsRegistry.to_json` a structured snapshot
  for benchmark reports and tests.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bounds for latencies, in seconds: 10 µs … 10 s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Default histogram bounds for payload sizes, in bytes: 256 B … 64 MiB.
DEFAULT_BYTE_BUCKETS: Tuple[float, ...] = tuple(
    float(256 * 4**i) for i in range(10)
)


def _label_suffix(labels: Tuple[Tuple[str, str], ...]) -> str:
    """Render a label set in Prometheus selector syntax (empty when unlabelled)."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class _Instrument:
    """Base: a named, labelled instrument sharing its registry's lock."""

    kind = "untyped"

    def __init__(
        self, registry: "MetricsRegistry", name: str, labels: Tuple[Tuple[str, str], ...]
    ) -> None:
        self.name = name
        self.labels = labels
        self._lock = registry.lock


class Counter(_Instrument):
    """A monotonically increasing value (floats allowed: seconds accumulate)."""

    kind = "counter"

    def __init__(self, registry, name, labels) -> None:
        super().__init__(registry, name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"Counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Gauge(_Instrument):
    """A value that can go up and down (queue depths, open sessions)."""

    kind = "gauge"

    def __init__(self, registry, name, labels) -> None:
        super().__init__(registry, name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"value": self.value}


class Histogram(_Instrument):
    """Fixed-bucket histogram with rank-interpolated quantile estimates.

    Buckets follow Prometheus ``le`` semantics: bucket *i* counts
    observations ``<= bounds[i]``; an implicit overflow bucket counts the
    rest.  :meth:`quantile` walks the cumulative counts to the bucket that
    crosses the requested rank and interpolates linearly inside it (the
    overflow bucket reports the maximum ever observed — an honest upper
    bound rather than an invented interior point).
    """

    kind = "histogram"

    def __init__(self, registry, name, labels, buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(registry, name, labels)
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS)))
        if not bounds:
            raise ValueError(f"Histogram {name!r} needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: overflow bucket
        self._sum = 0.0
        self._count = 0
        self._max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of the observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = q * self._count
            cumulative = 0.0
            lower = 0.0
            for index, bound in enumerate(self.bounds):
                bucket = self._counts[index]
                if bucket and cumulative + bucket >= target:
                    fraction = (target - cumulative) / bucket
                    return lower + (min(bound, self._max) - lower) * max(0.0, fraction)
                cumulative += bucket
                lower = bound
            return self._max

    def percentiles(self) -> Dict[str, float]:
        """The dashboard trio: p50/p95/p99 estimates."""
        return {"p50": self.quantile(0.50), "p95": self.quantile(0.95), "p99": self.quantile(0.99)}

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            total, observed_sum, observed_max = self._count, self._sum, self._max
        return {
            "buckets": [
                [bound, counts[index]] for index, bound in enumerate(self.bounds)
            ] + [["+Inf", counts[-1]]],
            "count": total,
            "sum": observed_sum,
            "max": observed_max,
            **self.percentiles(),
        }


class MetricsRegistry:
    """Get-or-create registry of instruments sharing one re-entrant lock.

    Thread-safe throughout; ``lock`` is public so multi-instrument snapshots
    (``EngineStats``) can read a consistent cut in one critical section.
    """

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self._instruments: "OrderedDict[Tuple[str, Tuple[Tuple[str, str], ...]], _Instrument]" = (
            OrderedDict()
        )
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    def _register(self, cls, name: str, help: str, labels: dict, **extra) -> _Instrument:
        label_key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        key = (str(name), label_key)
        with self.lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"Metric {name!r} already registered as {existing.kind}, "
                        f"not {cls.kind}"
                    )
                return existing
            kind = self._kinds.get(key[0])
            if kind is not None and kind != cls.kind:
                raise ValueError(
                    f"Metric name {name!r} already used by a {kind} instrument"
                )
            instrument = cls(self, key[0], label_key, **extra)
            self._instruments[key] = instrument
            self._kinds[key[0]] = cls.kind
            if help:
                self._help.setdefault(key[0], str(help))
            return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get or create a counter (labels become part of its identity)."""
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        """Get or create a gauge."""
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def instruments(self) -> List[_Instrument]:
        """Every registered instrument, in registration order."""
        with self.lock:
            return list(self._instruments.values())

    # -------------------------------------------------------------- exporters
    def to_json(self) -> str:
        """Structured snapshot: ``{kind: {"name{labels}": snapshot}}``."""
        with self.lock:
            payload: Dict[str, Dict[str, dict]] = {}
            for (name, labels), instrument in self._instruments.items():
                series = name + _label_suffix(labels)
                payload.setdefault(instrument.kind + "s", {})[series] = (
                    instrument.snapshot()
                )
        return json.dumps(payload, sort_keys=True)

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (one ``# TYPE`` per name)."""
        lines: List[str] = []
        with self.lock:
            announced: set = set()
            for (name, labels), instrument in self._instruments.items():
                if name not in announced:
                    announced.add(name)
                    help_text = self._help.get(name)
                    if help_text:
                        lines.append(f"# HELP {name} {help_text}")
                    lines.append(f"# TYPE {name} {instrument.kind}")
                if isinstance(instrument, Histogram):
                    cumulative = 0
                    for index, bound in enumerate(instrument.bounds):
                        cumulative += instrument._counts[index]
                        bucket_labels = labels + (("le", repr(float(bound))),)
                        lines.append(
                            f"{name}_bucket{_label_suffix(bucket_labels)} {cumulative}"
                        )
                    total = cumulative + instrument._counts[-1]
                    inf_labels = labels + (("le", "+Inf"),)
                    lines.append(f"{name}_bucket{_label_suffix(inf_labels)} {total}")
                    lines.append(f"{name}_sum{_label_suffix(labels)} {instrument._sum}")
                    lines.append(f"{name}_count{_label_suffix(labels)} {total}")
                else:
                    lines.append(
                        f"{name}{_label_suffix(labels)} {instrument._value}"
                    )
        return "\n".join(lines) + "\n"
