"""Flight-recorder observability for the serving engine.

Three coordinated facilities, bundled behind one :class:`Observability` hub
that the engine owns:

* :mod:`~repro.engine.observability.tracing` — one :class:`Trace` per flush
  or top-up with a :class:`Span` per pipeline stage and per execute work
  unit; process-backend spans are measured inside the worker and shipped
  back with the answers, so a single flush yields one coherent tree that
  crosses the process boundary.  Export as JSON or a rendered waterfall.
* :mod:`~repro.engine.observability.metrics` — a thread-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket histograms
  (p50/p95/p99) with Prometheus-text and JSON exporters.  ``EngineStats``
  is re-derived from the registry's counters, so the two can never drift.
* :mod:`~repro.engine.observability.audit` — the durable ε-audit stream:
  an append-only JSON-lines :class:`AuditLog` recording every privacy-state
  mutation with enough ids to reconstruct who spent what under which flush.

Cost discipline: everything is **off-by-default cheap**.  A disabled hub
returns ``None`` from :meth:`Observability.start_trace`, the pipeline's
hooks reduce to one branch each, and the engine's counters go through the
registry either way (a counter increment under an uncontended lock — the
same cost as the plain-int-under-lock scheme it replaces).  The overhead
gate lives in ``benchmarks/bench_observability.py``.

ε-audit event schema
====================

Each :class:`AuditLog` line is one JSON object.  Common fields:

``event``
    One of ``"charge"``, ``"rollback"``, ``"refusal"``, ``"expired"``,
    ``"scope_open"``, ``"scope_close"``, ``"top_up"``.
``ts`` / ``seq``
    Epoch-seconds timestamp and a monotonically increasing sequence number
    (assigned under the log's lock — ``seq`` totally orders the stream).
``trace_id``
    Id of the pipeline :class:`Trace` whose run caused the mutation
    (ambient; present whenever tracing is enabled for the run).
``ticket_id`` / ``client_id``
    The query ticket and session owner, when the mutation is attributable
    to one (charges/rollbacks/refusals during a flush; top-ups carry
    ``client_id`` and a ``ticket`` label).

Per-event fields:

``charge``
    ``label`` (accountant operation label), ``epsilon`` (amount charged),
    ``spent`` / ``remaining`` (ledger totals after the charge).
``rollback``
    ``label``, ``epsilon`` (amount refunded), ``spent`` / ``remaining``
    (totals after the refund).
``refusal``
    ``epsilon`` (amount that was requested), ``error`` (truncated reason).
``expired``
    ``epsilon`` (amount that was *not* charged — the ticket's deadline
    passed before its charge stage, so the drop is free by construction).
``scope_open``
    ``scope`` (scope label), ``epsilon`` (reservation charged up front).
``scope_close``
    ``scope``, ``spent`` (ε consumed inside the scope), ``refunded``
    (unused reservation returned to the parent).
``top_up``
    ``label``, ``epsilon`` (incremental ε spent), ``draws`` (total draws
    after consolidation).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .audit import AuditLog, read_audit_events
from .metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .tracing import Span, Trace, Tracer

__all__ = [
    "AuditLog",
    "Counter",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Trace",
    "Tracer",
    "read_audit_events",
]


class Observability:
    """The engine's observability hub: metrics + tracing + ε-audit.

    Parameters
    ----------
    enabled:
        Master switch for tracing and distribution metrics.  The engine's
        aggregate counters always flow through :attr:`metrics` (they back
        ``EngineStats``), but histograms, traces, and hook-side work are
        taken only when ``enabled``.
    metrics / tracer / audit:
        Optional pre-built components (shared registries, test doubles).
        Missing ones are constructed with defaults; ``audit`` defaults to
        ``None`` unless ``audit_path`` is given — the audit stream is
        opt-in independently of ``enabled``.
    audit_path:
        Convenience: build an :class:`AuditLog` appending to this path.
    trace_capacity:
        Ring-buffer size of the tracer built when none is supplied.
    """

    def __init__(
        self,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        audit: Optional[AuditLog] = None,
        audit_path: Optional[str] = None,
        trace_capacity: int = 256,
    ) -> None:
        self.enabled = bool(enabled)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(capacity=trace_capacity)
        if audit is None and audit_path is not None:
            audit = AuditLog(path=audit_path)
        self.audit = audit

    def start_trace(self, name: str, **attributes) -> Optional[Trace]:
        """Open a trace when enabled; the single branch a disabled hook takes."""
        if not self.enabled:
            return None
        return self.tracer.start_trace(name, **attributes)

    @contextmanager
    def request_context(self, name: str = "request", **fields):
        """Per-request trace + ambient ε-audit attribution for front-ends.

        The HTTP serving tier wraps each request in this: ``fields``
        (``request_id`` from the ``X-Request-Id`` header, ``client_id``,
        method/path) become trace attributes, and — when the audit stream is
        bound — ambient :meth:`AuditLog.context` fields, so every charge,
        refusal or scope event the request causes carries the request that
        caused it.  ``None``-valued fields are dropped rather than stacked
        (an absent header must not mask an outer context).  Yields the
        request :class:`Trace`, or ``None`` when tracing is disabled; the
        trace is finished on exit either way.
        """
        present = {key: value for key, value in fields.items() if value is not None}
        trace = self.start_trace(name, **present)
        try:
            if self.audit is not None and present:
                with self.audit.context(**present):
                    yield trace
            else:
                yield trace
        finally:
            if trace is not None:
                trace.finish()

    def close(self) -> None:
        """Release owned resources (the audit file handle)."""
        if self.audit is not None:
            self.audit.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Observability(enabled={self.enabled}, "
            f"audit={'on' if self.audit is not None else 'off'})"
        )
