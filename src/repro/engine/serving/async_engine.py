"""`AsyncQueryEngine` — the event-loop front-end over one engine.

The thread front-end (:class:`~repro.engine.BatchingExecutor`) spends one
OS thread per blocked client: every ``ask`` parks a thread on the ticket's
event until some flush resolves it.  That is exactly the cost model a
network serving tier cannot afford — millions of users means thousands of
concurrently pending tickets, and thousands of parked threads.

This front-end serves the same engine from an event loop instead:

* **awaitable tickets** — :meth:`AsyncQueryEngine.submit` attaches a
  :class:`~repro.engine.serving.LoopTicketWaiter` to the ticket and returns
  an :class:`AsyncTicket`; awaiting it suspends a coroutine, not a thread.
  Any number of pending tickets cost zero threads.
* **event-loop deadline flusher** — the size/deadline policy is the same
  :class:`~repro.engine.waiters.BatchTriggers` the thread executor uses,
  but the deadline is realised as one ``loop.call_later`` timer instead of
  a daemon flusher thread.
* **sync flushes, off the loop** — :meth:`PrivateQueryEngine.flush` is
  synchronous CPU work (mechanism kernels) and must not stall the loop, so
  flushes run on one dedicated flusher thread (a single-worker pool — a
  fixed cost, not a per-client one).  The flush drives the *same* staged
  pipeline with the same per-flush RNG child derivation, so a seeded
  engine's draws and ε ledgers through this front-end are byte-identical
  to a direct ``flush()`` issuing the same batches in the same order.

The front-end adds **no privacy semantics** — like the thread executor it
only decides *when* ``flush`` runs.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Set

import numpy as np

from ...core.workload import Workload
from ...exceptions import AskTimeoutError, MechanismError
from ...policy.graph import PolicyGraph
from ..durability import fault_point
from ..pipeline import QueryTicket
from ..waiters import BatchTriggers
from .waiters import LoopTicketWaiter

logger = logging.getLogger(__name__)


class AsyncTicket:
    """Awaitable handle on one :class:`~repro.engine.pipeline.QueryTicket`.

    ``await ticket`` yields the noisy answers (raising
    :class:`~repro.exceptions.PrivacyBudgetError` on refusal, exactly like
    :meth:`QueryTicket.result`); :meth:`wait` and :meth:`result` bound the
    wait with a timeout.  The underlying ticket stays accessible as
    :attr:`ticket` for callers that want statuses, draw ids, or to hand it
    to thread-side code — both kinds of waiter can watch one ticket at once.
    """

    __slots__ = ("_ticket", "_waiter")

    def __init__(self, ticket: QueryTicket, loop: asyncio.AbstractEventLoop) -> None:
        self._ticket = ticket
        self._waiter = LoopTicketWaiter(loop)
        ticket.add_waiter(self._waiter)

    @property
    def ticket(self) -> QueryTicket:
        """The underlying engine ticket."""
        return self._ticket

    @property
    def ticket_id(self) -> int:
        return self._ticket.ticket_id

    def done(self) -> bool:
        """``True`` once the ticket reached a terminal status."""
        return self._ticket.done()

    async def wait(self, timeout: Optional[float] = None) -> bool:
        """Suspend until the ticket resolves; ``False`` on timeout.

        The waiter's future is shielded from the timeout cancellation, so a
        timed-out wait leaves the ticket (and any other coroutine awaiting
        it) fully intact — a later flush still resolves everything.
        """
        future = self._waiter.future
        if timeout is None:
            await future
            return True
        try:
            await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            return False
        return True

    async def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Await the noisy answers; :class:`AskTimeoutError` on timeout."""
        if not await self.wait(timeout):
            raise AskTimeoutError(self._ticket, timeout)
        return self._ticket.result()

    def __await__(self):
        return self.result().__await__()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncTicket(ticket_id={self._ticket.ticket_id}, "
            f"status={self._ticket.status!r})"
        )


class AsyncQueryEngine:
    """Event-loop front-end: awaitable tickets, ``call_later`` deadline flusher.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.PrivateQueryEngine` to serve through.  It
        may simultaneously be served by thread front-ends; tickets carry
        their own waiters, so the two kinds of client coexist on one engine.
    max_batch_size / max_delay:
        The shared :class:`~repro.engine.waiters.BatchTriggers` policy —
        identical semantics to :class:`~repro.engine.BatchingExecutor`.

    The front-end binds to the event loop running when the first query is
    submitted; all submissions must come from that loop (the usual one-loop
    asyncio deployment).  Flushes run on one dedicated flusher thread.
    """

    def __init__(
        self,
        engine,
        max_batch_size: int = 32,
        max_delay: float = 0.02,
    ) -> None:
        self._engine = engine
        self._triggers = BatchTriggers(max_batch_size, max_delay)
        self._flush_pool = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-async-flush"
        )
        self._deadline_handle: Optional[asyncio.TimerHandle] = None
        self._inflight: Set[asyncio.Future] = set()
        self._closed = False
        #: Callbacks fed each observed flush latency (seconds) from the
        #: flusher thread — admission control hangs its Retry-After EWMA
        #: here.  Single flusher thread, so observers need no locking.
        self._flush_observers: List[Callable[[float], None]] = []

    # -------------------------------------------------------------- properties
    @property
    def engine(self):
        """The engine this front-end serves."""
        return self._engine

    @property
    def triggers(self) -> BatchTriggers:
        """The size/deadline flush policy."""
        return self._triggers

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`aclose` ran; submissions are then rejected."""
        return self._closed

    def add_flush_observer(self, observer: Callable[[float], None]) -> None:
        """Register a callback fed each flush's wall-clock latency (seconds).

        Called from the flusher thread after every flush — including failed
        ones, whose latency is still an honest signal of how busy the flush
        path is.  Admission control registers its EWMA feed here.
        """
        self._flush_observers.append(observer)

    # ------------------------------------------------------------- submissions
    def submit(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph] = None,
        partition: Optional[Sequence] = None,
        deadline: Optional[float] = None,
    ) -> AsyncTicket:
        """Queue a query; returns its awaitable ticket immediately.

        Must run on the event loop (it schedules the deadline timer there).
        Validation errors surface here exactly as in
        :meth:`PrivateQueryEngine.submit`; the budget is only touched when
        a flush picks the ticket up.  ``deadline`` (absolute
        ``time.monotonic()``) forwards to the engine: expired tickets are
        dropped before the charge stage at zero ε.
        """
        if self._closed:
            raise MechanismError("AsyncQueryEngine is closed")
        loop = asyncio.get_running_loop()
        ticket = self._engine.submit(
            client_id,
            workload,
            epsilon,
            policy=policy,
            partition=partition,
            deadline=deadline,
        )
        async_ticket = AsyncTicket(ticket, loop)
        if self._triggers.size_reached(self._engine.pending_count):
            # Size trigger: the flush starts now (on the flusher thread);
            # the pending deadline timer would only find an empty queue, so
            # let it stand — empty flushes are free and burn no RNG child.
            self._start_flush(loop)
        elif self._deadline_handle is None:
            self._deadline_handle = loop.call_later(
                self._triggers.max_delay, self._deadline_fired, loop
            )
        return async_ticket

    async def ask(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph] = None,
        partition: Optional[Sequence] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Awaitable submit: suspends until whichever flush resolves the ticket.

        ``timeout`` bounds the wait; on expiry an
        :class:`~repro.exceptions.AskTimeoutError` carrying the ticket is
        raised and a later flush still resolves the ticket normally.
        ``deadline`` instead bounds the *query*: an expired ticket resolves
        to ``"expired"`` at zero ε and ``result()`` raises
        :class:`~repro.exceptions.DeadlineExpiredError`.
        """
        ticket = self.submit(
            client_id,
            workload,
            epsilon,
            policy=policy,
            partition=partition,
            deadline=deadline,
        )
        return await ticket.result(timeout=timeout)

    async def flush(self) -> List[QueryTicket]:
        """Flush pending queries now (on the flusher thread) and await them."""
        loop = asyncio.get_running_loop()
        return await self._start_flush(loop)

    # ---------------------------------------------------------------- lifecycle
    async def aclose(self) -> None:
        """Drain and shut down: cancel the timer, finish flushes, final flush.

        When ``aclose`` returns every ticket this front-end accepted is
        resolved (the same deterministic-teardown contract as
        :meth:`BatchingExecutor.close`), and the flusher thread is joined.
        """
        if self._closed:
            return
        self._closed = True
        if self._deadline_handle is not None:
            self._deadline_handle.cancel()
            self._deadline_handle = None
        inflight = list(self._inflight)
        if inflight:
            await asyncio.gather(*inflight, return_exceptions=True)
        # Final drain: anything submitted before the closed flag flipped and
        # not picked up by a trigger flush.
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._flush_pool, self._run_flush_measured)
        self._flush_pool.shutdown(wait=True)

    async def __aenter__(self) -> "AsyncQueryEngine":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------------ flusher
    def _deadline_fired(self, loop: asyncio.AbstractEventLoop) -> None:
        """The ``call_later`` counterpart of the executor's flusher thread."""
        self._deadline_handle = None
        if self._closed or not self._engine.pending_count:
            return
        self._start_flush(loop)

    def _start_flush(self, loop: asyncio.AbstractEventLoop) -> asyncio.Future:
        """Run ``engine.flush()`` on the flusher thread; track it for aclose."""
        future = loop.run_in_executor(self._flush_pool, self._run_flush_measured)
        self._inflight.add(future)
        future.add_done_callback(self._track_flush_done)
        return future

    def _track_flush_done(self, future: asyncio.Future) -> None:
        self._inflight.discard(future)
        # Retrieve the exception so a deadline-triggered flush that failed
        # (chaos injection, broken backend) logs a warning instead of an
        # "exception was never retrieved" message at GC time.  Awaiters of
        # an explicit flush() still see the exception through the future.
        if future.cancelled():
            return
        exc = future.exception()
        if exc is not None:
            logger.warning("serving flush failed: %s", exc)

    def _run_flush_measured(self) -> List[QueryTicket]:
        """The flusher-thread body: chaos hook, flush, latency observation.

        ``fault_point("serving-flush")`` lets the chaos harness stall or
        fail the flusher exactly here — on the flusher thread, before the
        pipeline runs — without touching the pinned crash-point matrix.
        The latency fed to observers covers the whole body (stall
        included): under a stalled flusher the Retry-After hint grows,
        which is precisely the back-pressure signal clients should see.
        """
        start = time.monotonic()
        try:
            fault_point("serving-flush")
            return self._engine.flush()
        finally:
            elapsed = time.monotonic() - start
            for observer in self._flush_observers:
                try:
                    observer(elapsed)
                except Exception:  # pragma: no cover - observer bugs
                    logger.warning("flush observer failed", exc_info=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AsyncQueryEngine({self._triggers!r}, closed={self._closed})"
        )
