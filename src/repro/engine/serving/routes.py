"""Route handlers for the HTTP front-end.

Thin translation layers only: each handler parses the wire shape
(:mod:`~repro.engine.serving.queries`), calls the engine or the async
front-end, and maps library exceptions onto HTTP statuses.  The full
endpoint reference — request/response schemas, status codes, pagination —
lives in ``docs/serving_http_api.md``.

Status-code conventions:

* ``400`` — malformed request (bad JSON, unknown workload kind, invalid
  sort field, bad pagination parameters).
* ``403`` — the privacy layer refused (opening a session past the global
  budget, submitting on a closed session, invalid ε).
* ``404`` — unknown client or ticket.
* ``409`` — conflict (registering an already-open client id, closing a
  closed session, cancelling a ticket that already resolved).
* ``429`` / ``503`` with ``Retry-After`` — the admission edge shed the
  submit *before* any ε was touched: 429 when the client is over its rate
  limit, 503 when the server is saturated or draining.
* A *refused query* is **not** an HTTP error: the poll payload carries
  ``status: "refused"`` plus the reason, because the transport request
  succeeded — the refusal is the (privacy-mandated) answer.  The same
  holds for ``expired`` and ``cancelled`` terminal statuses.
"""

from __future__ import annotations

import math
import time

from ...exceptions import (
    DomainError,
    PolicyError,
    PrivacyBudgetError,
    WorkloadError,
)
from .http import HTTPError, Request, Response
from .queries import (
    apply_sort,
    paginate,
    parse_sort,
    parse_workload,
    ticket_payload,
)

#: Sortable fields of the two collection endpoints.
TICKET_SORT_FIELDS = ("ticket_id", "client_id", "status", "epsilon")
CLIENT_SORT_FIELDS = ("client_id", "allotment", "spent", "remaining")

#: Terminal + pending statuses accepted by the ``status`` list filter.
QUERY_STATUS_FILTERS = ("pending", "answered", "refused", "expired", "cancelled")


def install_routes(app) -> None:
    """Register every endpoint on ``app`` (the app-factory hook)."""
    app.add_route("GET", "/health", health)
    app.add_route("GET", "/ready", ready)
    app.add_route("GET", "/metrics", metrics)
    app.add_route("GET", "/api/clients", list_clients)
    app.add_route("POST", "/api/clients", register_client)
    app.add_route("GET", "/api/clients/{client_id}/budget", client_budget)
    app.add_route("DELETE", "/api/clients/{client_id}", close_client)
    app.add_route("GET", "/api/queries", list_queries)
    app.add_route("POST", "/api/queries", submit_query)
    app.add_route("GET", "/api/queries/{ticket_id}", poll_query)
    app.add_route("DELETE", "/api/queries/{ticket_id}", cancel_query)
    app.add_route("POST", "/api/flush", flush_now)
    if getattr(app, "enable_chaos", False):
        app.add_route("POST", "/api/chaos", chaos)


# -------------------------------------------------------------------- service
async def health(app, request: Request) -> Response:
    """Liveness: the engine is up and accepting submissions."""
    return Response(
        {
            "status": "ok",
            "pending": app.engine.pending_count,
            "sessions": len(app.engine.sessions()),
            "tickets": len(app.tickets),
        }
    )


async def ready(app, request: Request) -> Response:
    """Readiness: 503 while draining so the load balancer routes away.

    Distinct from ``/health`` on purpose — a draining server is still
    *alive* (liveness stays 200 so the orchestrator does not kill it
    mid-drain) but must stop receiving new traffic.
    """
    if app.draining:
        return Response(
            {"status": "draining"},
            status=503,
            headers={"Retry-After": _retry_after_header(app.admission.retry_after())},
        )
    return Response({"status": "ready", "pending": app.engine.pending_count})


async def metrics(app, request: Request) -> Response:
    """The engine's metrics registry in Prometheus text exposition format."""
    registry = app.engine.observability.metrics
    return Response(
        text=registry.to_prometheus_text(),
        content_type="text/plain; version=0.0.4; charset=utf-8",
    )


async def flush_now(app, request: Request) -> Response:
    """Flush pending queries immediately (admin/testing hook)."""
    tickets = await app.async_engine.flush()
    return Response({"resolved": len(tickets)})


# -------------------------------------------------------------------- clients
async def register_client(app, request: Request) -> Response:
    """``POST /api/clients`` — open a budgeted session (201)."""
    body = request.json()
    client_id = body.get("client_id")
    if not isinstance(client_id, str) or not client_id:
        raise HTTPError(400, "client_id must be a non-empty string")
    allotment = body.get("epsilon_allotment")
    if not isinstance(allotment, (int, float)):
        raise HTTPError(400, "epsilon_allotment must be a number")
    try:
        session = app.engine.open_session(client_id, float(allotment))
    except PrivacyBudgetError as exc:
        status = 409 if "already open" in str(exc) else 403
        raise HTTPError(status, str(exc)) from exc
    return Response(session.budget_snapshot(), status=201)


async def list_clients(app, request: Request) -> Response:
    """``GET /api/clients`` — paginated budget snapshots."""
    snapshots = [session.budget_snapshot() for session in app.engine.sessions()]
    try:
        keys = parse_sort(request.query.get("sort"), CLIENT_SORT_FIELDS)
        snapshots = apply_sort(snapshots, keys or [("client_id", False)])
        page = paginate(
            snapshots, request.query.get("limit"), request.query.get("offset")
        )
    except ValueError as exc:
        raise HTTPError(400, str(exc)) from exc
    return Response(page)


async def client_budget(app, request: Request, client_id: str) -> Response:
    """``GET /api/clients/{id}/budget`` — one session's budget introspection."""
    try:
        session = app.engine.session(client_id)
    except PolicyError as exc:
        raise HTTPError(404, str(exc)) from exc
    return Response(session.budget_snapshot())


async def close_client(app, request: Request, client_id: str) -> Response:
    """``DELETE /api/clients/{id}`` — close the session, refunding unspent ε."""
    try:
        session = app.engine.session(client_id)
    except PolicyError as exc:
        raise HTTPError(404, str(exc)) from exc
    if session.closed:
        raise HTTPError(409, f"Session {client_id!r} is already closed")
    refunded = session.close()
    return Response({"client_id": client_id, "refunded": refunded})


# -------------------------------------------------------------------- queries
def _retry_after_header(seconds: float) -> str:
    """``Retry-After`` is delta-seconds, integral, at least 1."""
    return str(max(1, math.ceil(seconds)))


def _shed_response(decision) -> Response:
    """A 429/503 shed envelope with the computed ``Retry-After``."""
    return Response(
        {
            "error": decision.message,
            "reason": decision.reason,
            "retry_after": decision.retry_after,
        },
        status=decision.status,
        headers={"Retry-After": _retry_after_header(decision.retry_after)},
    )


def _parse_deadline(request: Request):
    """``X-Request-Deadline`` (unix-epoch seconds) → engine monotonic deadline.

    The wire carries wall-clock time (the only clock client and server
    share); the engine's deadline clock is ``time.monotonic()``.  Convert
    by offsetting the remaining wall-clock budget onto the monotonic clock
    at parse time — an already-past deadline simply converts to a
    monotonic instant in the past and the pipeline drops the ticket at
    zero ε.
    """
    raw = request.header("x-request-deadline")
    if raw is None:
        return None
    try:
        epoch = float(raw)
    except ValueError:
        raise HTTPError(
            400,
            f"X-Request-Deadline must be unix-epoch seconds, got {raw!r}",
        ) from None
    if not math.isfinite(epoch):
        raise HTTPError(400, "X-Request-Deadline must be finite")
    return time.monotonic() + (epoch - time.time())


async def submit_query(app, request: Request) -> Response:
    """``POST /api/queries`` — admission check, submit; optionally await.

    ``wait=false`` (default) answers ``202`` with the pending ticket for
    later polling.  ``wait=true`` awaits resolution (bounded by ``timeout``
    seconds when given) and answers ``200`` with the resolved payload; a
    wait that times out degrades to the ``202`` pending envelope — the
    ticket stays queued and a later flush resolves it.

    The admission edge runs **before** session lookup and workload
    parsing: an overloaded server answers shed traffic from a few integer
    compares and a dict lookup, touching neither ε nor the (relatively)
    expensive request machinery.  An ``X-Request-Deadline`` header
    (unix-epoch seconds) attaches a deadline: a ticket still unflushed at
    its deadline resolves to ``"expired"`` at zero ε.
    """
    body = request.json()
    client_id = body.get("client_id")
    if not isinstance(client_id, str) or not client_id:
        raise HTTPError(400, "client_id must be a non-empty string")
    decision = app.admission.admit(client_id, draining=app.draining)
    if decision is not None:
        return _shed_response(decision)
    deadline = _parse_deadline(request)
    epsilon = body.get("epsilon")
    if not isinstance(epsilon, (int, float)):
        raise HTTPError(400, "epsilon must be a number")
    wait = body.get("wait", False)
    if not isinstance(wait, bool):
        raise HTTPError(400, "wait must be a boolean")
    timeout = body.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise HTTPError(400, "timeout must be a number of seconds")
    try:
        app.engine.session(client_id)
    except PolicyError as exc:
        raise HTTPError(404, str(exc)) from exc
    try:
        workload = parse_workload(app.engine.database.domain, body.get("workload"))
    except (WorkloadError, DomainError) as exc:
        raise HTTPError(400, str(exc)) from exc
    partition = body.get("partition")
    if partition is not None and not isinstance(partition, list):
        raise HTTPError(400, "partition must be a list of domain cell indices")
    try:
        async_ticket = app.async_engine.submit(
            client_id,
            workload,
            float(epsilon),
            partition=partition,
            deadline=deadline,
        )
    except PrivacyBudgetError as exc:
        raise HTTPError(403, str(exc)) from exc
    except (WorkloadError, DomainError, PolicyError) as exc:
        raise HTTPError(400, str(exc)) from exc
    app.admission.register(async_ticket.ticket)
    app.tickets.add(async_ticket.ticket)
    if wait:
        resolved = await async_ticket.wait(
            float(timeout) if timeout is not None else None
        )
        if resolved:
            return Response(ticket_payload(async_ticket.ticket), status=200)
    return Response(ticket_payload(async_ticket.ticket), status=202)


async def cancel_query(app, request: Request, ticket_id: str) -> Response:
    """``DELETE /api/queries/{ticket_id}`` — cancel a still-pending ticket.

    Cancellation wins only while the ticket is unclaimed: a cancelled
    ticket resolves to the ``"cancelled"`` terminal status and is excluded
    from every future flush — its not-yet-charged ε is never spent.  Once
    the pipeline claimed (or resolved) the ticket the race is lost and
    this answers ``409`` with the ticket's current payload: already-charged
    work is **not** refunded, because its privacy cost was already paid
    and rolling it back would let a client probe answers for free.
    """
    try:
        numeric_id = int(ticket_id)
    except ValueError as exc:
        raise HTTPError(400, f"ticket id must be an integer, got {ticket_id!r}") from exc
    ticket = app.tickets.get(numeric_id)
    if ticket is None:
        raise HTTPError(404, f"no ticket {numeric_id} (unknown or aged out)")
    if ticket.cancel():
        return Response(ticket_payload(ticket), status=200)
    return Response(ticket_payload(ticket), status=409)


async def poll_query(app, request: Request, ticket_id: str) -> Response:
    """``GET /api/queries/{ticket_id}`` — one ticket's status and answers."""
    try:
        numeric_id = int(ticket_id)
    except ValueError as exc:
        raise HTTPError(400, f"ticket id must be an integer, got {ticket_id!r}") from exc
    ticket = app.tickets.get(numeric_id)
    if ticket is None:
        raise HTTPError(404, f"no ticket {numeric_id} (unknown or aged out)")
    return Response(ticket_payload(ticket))


async def list_queries(app, request: Request) -> Response:
    """``GET /api/queries`` — paginated poll results.

    Filters: ``client_id``, ``status`` (any of
    ``pending``/``answered``/``refused``/``expired``/``cancelled``).
    Sorting per Snippet 3 (``sort=-ticket_id`` etc.); answers are elided
    from list items — poll the single-ticket endpoint for vectors.
    """
    status = request.query.get("status")
    if status is not None and status not in QUERY_STATUS_FILTERS:
        raise HTTPError(400, f"invalid status filter {status!r}")
    tickets = app.tickets.list(
        client_id=request.query.get("client_id"), status=status
    )
    payloads = [ticket_payload(ticket, include_answers=False) for ticket in tickets]
    try:
        keys = parse_sort(request.query.get("sort"), TICKET_SORT_FIELDS)
        payloads = apply_sort(payloads, keys or [("ticket_id", False)])
        page = paginate(
            payloads, request.query.get("limit"), request.query.get("offset")
        )
    except ValueError as exc:
        raise HTTPError(400, str(exc)) from exc
    return Response(page)


# ---------------------------------------------------------------------- chaos
async def chaos(app, request: Request) -> Response:
    """``POST /api/chaos`` — arm live fault injection (chaos deployments only).

    Installed only when the app was built with ``enable_chaos=True``
    (``--chaos`` on the CLI).  Actions:

    * ``{"action": "stall", "point": ..., "seconds": S, "hits": N}`` —
      sleep ``S`` seconds on the N-th visit of the fault point.
    * ``{"action": "fail", "point": ..., "hits": N}`` — raise a
      ``RuntimeError`` at the point.
    * ``{"action": "disk_full", "point": ..., "hits": N}`` — raise
      ``OSError(ENOSPC)`` at the point (e.g. ``ledger-append``).
    * ``{"action": "kill_worker"}`` — SIGKILL one live execute-backend
      worker process, immediately.
    * ``{"action": "clear"}`` — uninstall the active injector.

    The handler validates the point name against the known crash/serving
    fault points so a typo cannot silently arm nothing.
    """
    from ..durability import (
        CRASH_POINTS,
        SERVING_FAULT_POINTS,
        FaultInjector,
        kill_one_worker,
    )

    body = request.json()
    action = body.get("action")
    if action == "clear":
        FaultInjector.clear()
        return Response({"status": "cleared"})
    if action == "kill_worker":
        backend = getattr(app.engine, "_execute_backend", None)
        try:
            pid = kill_one_worker(backend)
        except RuntimeError as exc:
            raise HTTPError(409, str(exc)) from exc
        return Response({"status": "killed", "pid": pid})
    if action not in ("stall", "fail", "disk_full"):
        raise HTTPError(
            400,
            "action must be one of stall/fail/disk_full/kill_worker/clear",
        )
    point = body.get("point")
    known_points = CRASH_POINTS + SERVING_FAULT_POINTS + ("ledger-append",)
    if point not in known_points:
        raise HTTPError(
            400, f"unknown fault point {point!r}; known: {', '.join(known_points)}"
        )
    hits = body.get("hits", 1)
    if not isinstance(hits, int) or hits < 1:
        raise HTTPError(400, "hits must be a positive integer")
    injector = FaultInjector.active() or FaultInjector()
    # The injector's hit counts are cumulative over its lifetime, but a
    # remote chaos client thinks in visits *from now* — re-arming after an
    # earlier fault fired must not leave the new fault pointing at a visit
    # number that already passed.
    hits += injector.hits(point)
    if action == "stall":
        seconds = body.get("seconds")
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise HTTPError(400, "seconds must be a non-negative number")
        injector.stall_at(point, float(seconds), hits=hits)
    elif action == "fail":
        injector.fail_at(
            point, lambda: RuntimeError(f"injected failure at {point}"), hits=hits
        )
    else:
        injector.disk_full_at(point, hits=hits)
    injector.install()
    return Response({"status": "armed", "action": action, "point": point})
