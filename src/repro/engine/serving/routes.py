"""Route handlers for the HTTP front-end.

Thin translation layers only: each handler parses the wire shape
(:mod:`~repro.engine.serving.queries`), calls the engine or the async
front-end, and maps library exceptions onto HTTP statuses.  The full
endpoint reference — request/response schemas, status codes, pagination —
lives in ``docs/serving_http_api.md``.

Status-code conventions:

* ``400`` — malformed request (bad JSON, unknown workload kind, invalid
  sort field, bad pagination parameters).
* ``403`` — the privacy layer refused (opening a session past the global
  budget, submitting on a closed session, invalid ε).
* ``404`` — unknown client or ticket.
* ``409`` — conflict (registering an already-open client id, closing a
  closed session).
* A *refused query* is **not** an HTTP error: the poll payload carries
  ``status: "refused"`` plus the reason, because the transport request
  succeeded — the refusal is the (privacy-mandated) answer.
"""

from __future__ import annotations

from ...exceptions import (
    DomainError,
    PolicyError,
    PrivacyBudgetError,
    WorkloadError,
)
from .http import HTTPError, Request, Response
from .queries import (
    apply_sort,
    paginate,
    parse_sort,
    parse_workload,
    ticket_payload,
)

#: Sortable fields of the two collection endpoints.
TICKET_SORT_FIELDS = ("ticket_id", "client_id", "status", "epsilon")
CLIENT_SORT_FIELDS = ("client_id", "allotment", "spent", "remaining")


def install_routes(app) -> None:
    """Register every endpoint on ``app`` (the app-factory hook)."""
    app.add_route("GET", "/health", health)
    app.add_route("GET", "/metrics", metrics)
    app.add_route("GET", "/api/clients", list_clients)
    app.add_route("POST", "/api/clients", register_client)
    app.add_route("GET", "/api/clients/{client_id}/budget", client_budget)
    app.add_route("DELETE", "/api/clients/{client_id}", close_client)
    app.add_route("GET", "/api/queries", list_queries)
    app.add_route("POST", "/api/queries", submit_query)
    app.add_route("GET", "/api/queries/{ticket_id}", poll_query)
    app.add_route("POST", "/api/flush", flush_now)


# -------------------------------------------------------------------- service
async def health(app, request: Request) -> Response:
    """Liveness: the engine is up and accepting submissions."""
    return Response(
        {
            "status": "ok",
            "pending": app.engine.pending_count,
            "sessions": len(app.engine.sessions()),
            "tickets": len(app.tickets),
        }
    )


async def metrics(app, request: Request) -> Response:
    """The engine's metrics registry in Prometheus text exposition format."""
    registry = app.engine.observability.metrics
    return Response(
        text=registry.to_prometheus_text(),
        content_type="text/plain; version=0.0.4; charset=utf-8",
    )


async def flush_now(app, request: Request) -> Response:
    """Flush pending queries immediately (admin/testing hook)."""
    tickets = await app.async_engine.flush()
    return Response({"resolved": len(tickets)})


# -------------------------------------------------------------------- clients
async def register_client(app, request: Request) -> Response:
    """``POST /api/clients`` — open a budgeted session (201)."""
    body = request.json()
    client_id = body.get("client_id")
    if not isinstance(client_id, str) or not client_id:
        raise HTTPError(400, "client_id must be a non-empty string")
    allotment = body.get("epsilon_allotment")
    if not isinstance(allotment, (int, float)):
        raise HTTPError(400, "epsilon_allotment must be a number")
    try:
        session = app.engine.open_session(client_id, float(allotment))
    except PrivacyBudgetError as exc:
        status = 409 if "already open" in str(exc) else 403
        raise HTTPError(status, str(exc)) from exc
    return Response(session.budget_snapshot(), status=201)


async def list_clients(app, request: Request) -> Response:
    """``GET /api/clients`` — paginated budget snapshots."""
    snapshots = [session.budget_snapshot() for session in app.engine.sessions()]
    try:
        keys = parse_sort(request.query.get("sort"), CLIENT_SORT_FIELDS)
        snapshots = apply_sort(snapshots, keys or [("client_id", False)])
        page = paginate(
            snapshots, request.query.get("limit"), request.query.get("offset")
        )
    except ValueError as exc:
        raise HTTPError(400, str(exc)) from exc
    return Response(page)


async def client_budget(app, request: Request, client_id: str) -> Response:
    """``GET /api/clients/{id}/budget`` — one session's budget introspection."""
    try:
        session = app.engine.session(client_id)
    except PolicyError as exc:
        raise HTTPError(404, str(exc)) from exc
    return Response(session.budget_snapshot())


async def close_client(app, request: Request, client_id: str) -> Response:
    """``DELETE /api/clients/{id}`` — close the session, refunding unspent ε."""
    try:
        session = app.engine.session(client_id)
    except PolicyError as exc:
        raise HTTPError(404, str(exc)) from exc
    if session.closed:
        raise HTTPError(409, f"Session {client_id!r} is already closed")
    refunded = session.close()
    return Response({"client_id": client_id, "refunded": refunded})


# -------------------------------------------------------------------- queries
async def submit_query(app, request: Request) -> Response:
    """``POST /api/queries`` — submit; optionally await the answer.

    ``wait=false`` (default) answers ``202`` with the pending ticket for
    later polling.  ``wait=true`` awaits resolution (bounded by ``timeout``
    seconds when given) and answers ``200`` with the resolved payload; a
    wait that times out degrades to the ``202`` pending envelope — the
    ticket stays queued and a later flush resolves it.
    """
    body = request.json()
    client_id = body.get("client_id")
    if not isinstance(client_id, str) or not client_id:
        raise HTTPError(400, "client_id must be a non-empty string")
    epsilon = body.get("epsilon")
    if not isinstance(epsilon, (int, float)):
        raise HTTPError(400, "epsilon must be a number")
    wait = body.get("wait", False)
    if not isinstance(wait, bool):
        raise HTTPError(400, "wait must be a boolean")
    timeout = body.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise HTTPError(400, "timeout must be a number of seconds")
    try:
        app.engine.session(client_id)
    except PolicyError as exc:
        raise HTTPError(404, str(exc)) from exc
    try:
        workload = parse_workload(app.engine.database.domain, body.get("workload"))
    except (WorkloadError, DomainError) as exc:
        raise HTTPError(400, str(exc)) from exc
    partition = body.get("partition")
    if partition is not None and not isinstance(partition, list):
        raise HTTPError(400, "partition must be a list of domain cell indices")
    try:
        async_ticket = app.async_engine.submit(
            client_id, workload, float(epsilon), partition=partition
        )
    except PrivacyBudgetError as exc:
        raise HTTPError(403, str(exc)) from exc
    except (WorkloadError, DomainError, PolicyError) as exc:
        raise HTTPError(400, str(exc)) from exc
    app.tickets.add(async_ticket.ticket)
    if wait:
        resolved = await async_ticket.wait(
            float(timeout) if timeout is not None else None
        )
        if resolved:
            return Response(ticket_payload(async_ticket.ticket), status=200)
    return Response(ticket_payload(async_ticket.ticket), status=202)


async def poll_query(app, request: Request, ticket_id: str) -> Response:
    """``GET /api/queries/{ticket_id}`` — one ticket's status and answers."""
    try:
        numeric_id = int(ticket_id)
    except ValueError as exc:
        raise HTTPError(400, f"ticket id must be an integer, got {ticket_id!r}") from exc
    ticket = app.tickets.get(numeric_id)
    if ticket is None:
        raise HTTPError(404, f"no ticket {numeric_id} (unknown or aged out)")
    return Response(ticket_payload(ticket))


async def list_queries(app, request: Request) -> Response:
    """``GET /api/queries`` — paginated poll results.

    Filters: ``client_id``, ``status`` (``pending``/``answered``/
    ``refused``).  Sorting per Snippet 3 (``sort=-ticket_id`` etc.);
    answers are elided from list items — poll the single-ticket endpoint
    for vectors.
    """
    status = request.query.get("status")
    if status is not None and status not in ("pending", "answered", "refused"):
        raise HTTPError(400, f"invalid status filter {status!r}")
    tickets = app.tickets.list(
        client_id=request.query.get("client_id"), status=status
    )
    payloads = [ticket_payload(ticket, include_answers=False) for ticket in tickets]
    try:
        keys = parse_sort(request.query.get("sort"), TICKET_SORT_FIELDS)
        payloads = apply_sort(payloads, keys or [("ticket_id", False)])
        page = paginate(
            payloads, request.query.get("limit"), request.query.get("offset")
        )
    except ValueError as exc:
        raise HTTPError(400, str(exc)) from exc
    return Response(page)
