"""Wire-format helpers for the HTTP front-end: workloads, tickets, pages.

The route handlers (:mod:`repro.engine.serving.routes`) stay thin by
delegating everything schema-shaped here, mirroring the exemplar's
``routes/`` + ``queries/`` split:

* :func:`parse_workload` — the JSON workload spec → a
  :class:`~repro.core.workload.Workload` over the engine's domain.
* :func:`ticket_payload` — one ticket's poll representation.
* :func:`paginate` / :func:`parse_sort` — offset pagination and
  ``sort=-field,other:asc`` parsing, following the Paper-Scanner
  conventions documented in SNIPPETS.md Snippet 3: responses are
  ``{"items": [...], "page": {"total", "limit", "offset", "has_more"}}``,
  ``limit`` defaults to 50 and caps at 200, and invalid sort fields are a
  client error (HTTP 400).
* :class:`TicketRegistry` — the bounded ticket-id → ticket map behind the
  poll endpoints.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ...core.workload import (
    Workload,
    cumulative_workload,
    identity_workload,
    marginal_workload,
    total_workload,
    workload_from_rows,
)
from ...exceptions import WorkloadError
from ..pipeline import QueryTicket

DEFAULT_PAGE_LIMIT = 50
MAX_PAGE_LIMIT = 200

#: Workload spec kinds accepted by ``POST /api/queries``.
WORKLOAD_KINDS = ("identity", "cumulative", "total", "marginal", "rows")


# ------------------------------------------------------------------ workloads
def parse_workload(domain, spec) -> Workload:
    """Build a workload over ``domain`` from its JSON wire spec.

    The spec is ``{"kind": ...}`` plus kind-specific fields::

        {"kind": "identity"}
        {"kind": "cumulative"}
        {"kind": "total"}
        {"kind": "marginal", "axis": 0}
        {"kind": "rows", "rows": [[...], ...], "name": "optional"}

    Raises :class:`~repro.exceptions.WorkloadError` on any malformed spec —
    the routes layer maps that to HTTP 400.
    """
    if not isinstance(spec, dict):
        raise WorkloadError(
            f"workload spec must be an object with a 'kind', got {type(spec).__name__}"
        )
    kind = spec.get("kind")
    if kind == "identity":
        return identity_workload(domain)
    if kind == "cumulative":
        return cumulative_workload(domain)
    if kind == "total":
        return total_workload(domain)
    if kind == "marginal":
        axis = spec.get("axis", 0)
        if not isinstance(axis, int):
            raise WorkloadError(f"marginal workload needs an integer axis, got {axis!r}")
        return marginal_workload(domain, axis)
    if kind == "rows":
        rows = spec.get("rows")
        if not isinstance(rows, list) or not rows:
            raise WorkloadError("rows workload needs a non-empty 'rows' list")
        try:
            matrix = [np.asarray(row, dtype=np.float64) for row in rows]
        except (TypeError, ValueError) as exc:
            raise WorkloadError(f"rows workload has non-numeric entries: {exc}") from exc
        widths = {row.size for row in matrix}
        if len(widths) != 1 or widths != {domain.size}:
            raise WorkloadError(
                f"rows workload rows must all have {domain.size} cells "
                f"(the domain size), got widths {sorted(widths)}"
            )
        return workload_from_rows(domain, matrix, name=str(spec.get("name", "")))
    raise WorkloadError(
        f"unknown workload kind {kind!r}; expected one of {WORKLOAD_KINDS}"
    )


# -------------------------------------------------------------------- tickets
def ticket_payload(ticket: QueryTicket, include_answers: bool = True) -> dict:
    """One ticket's JSON poll representation.

    A refusal is a *successful* poll whose payload carries
    ``status: "refused"`` and the refusal reason — the HTTP status stays
    2xx, because the protocol request (tell me about this ticket) worked.
    The ``expired`` and ``cancelled`` terminal statuses carry their reason
    the same way (both resolved at zero ε for any not-yet-charged work).
    """
    payload = {
        "ticket_id": ticket.ticket_id,
        "client_id": ticket.client_id,
        "status": ticket.status,
        "epsilon": ticket.epsilon,
        "rows": ticket.workload.shape[0],
        "from_cache": ticket.from_cache,
        "draw_id": ticket.draw_id,
    }
    if ticket.status == "answered" and include_answers:
        payload["answers"] = [float(value) for value in ticket.answers]
    if ticket.status in ("refused", "expired", "cancelled"):
        payload["error"] = ticket.error or (
            f"Query did not produce an answer (ticket {ticket.ticket_id}, "
            f"client {ticket.client_id!r}, status {ticket.status!r})"
        )
    return payload


class TicketRegistry:
    """Bounded ticket-id → ticket map behind the poll endpoints.

    Pending tickets are pinned (a client is still owed their answer);
    resolved tickets age out oldest-first once ``capacity`` is exceeded, so
    a long-running server's registry stays bounded no matter how many
    queries it has served.  Thread-safe: flushes resolve tickets from
    arbitrary threads while the loop reads them.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._tickets: "OrderedDict[int, QueryTicket]" = OrderedDict()
        self._lock = threading.Lock()

    def add(self, ticket: QueryTicket) -> None:
        with self._lock:
            self._tickets[ticket.ticket_id] = ticket
            excess = len(self._tickets) - self._capacity
            if excess > 0:
                for ticket_id in [
                    tid for tid, t in self._tickets.items() if t.done()
                ][:excess]:
                    del self._tickets[ticket_id]

    def get(self, ticket_id: int) -> Optional[QueryTicket]:
        with self._lock:
            return self._tickets.get(ticket_id)

    def list(
        self,
        client_id: Optional[str] = None,
        status: Optional[str] = None,
    ) -> List[QueryTicket]:
        """Snapshot of registered tickets, optionally filtered."""
        with self._lock:
            tickets = list(self._tickets.values())
        if client_id is not None:
            tickets = [t for t in tickets if t.client_id == client_id]
        if status is not None:
            tickets = [t for t in tickets if t.status == status]
        return tickets

    def __len__(self) -> int:
        with self._lock:
            return len(self._tickets)


# ------------------------------------------------------------------ pagination
def parse_sort(
    sort: Optional[str], allowed: Sequence[str]
) -> List[Tuple[str, bool]]:
    """Parse a Snippet 3 ``sort`` parameter into ``(field, descending)`` keys.

    Accepts comma-separated ``field``, ``field:asc``, ``field:desc`` and
    ``-field`` forms.  Unknown fields or directions raise ``ValueError`` —
    the routes layer maps that to HTTP 400.
    """
    if not sort:
        return []
    keys: List[Tuple[str, bool]] = []
    for token in sort.split(","):
        token = token.strip()
        if not token:
            continue
        descending = False
        if token.startswith("-"):
            descending = True
            token = token[1:]
        elif ":" in token:
            token, _, direction = token.partition(":")
            if direction not in ("asc", "desc"):
                raise ValueError(
                    f"invalid sort direction {direction!r}; use 'asc' or 'desc'"
                )
            descending = direction == "desc"
        if token not in allowed:
            raise ValueError(
                f"invalid sort field {token!r}; allowed: {', '.join(allowed)}"
            )
        keys.append((token, descending))
    return keys


def apply_sort(items: List[dict], keys: List[Tuple[str, bool]]) -> List[dict]:
    """Stable multi-key sort of payload dicts (later keys applied first)."""
    for field_name, descending in reversed(keys):
        items = sorted(items, key=lambda item: item.get(field_name), reverse=descending)
    return items


def paginate(
    items: List[dict],
    limit: Optional[str] = None,
    offset: Optional[str] = None,
) -> dict:
    """Slice ``items`` into the Snippet 3 page envelope.

    ``limit``/``offset`` arrive as raw query-string values; malformed or
    out-of-range values raise ``ValueError`` (→ HTTP 400).
    """
    try:
        limit_value = DEFAULT_PAGE_LIMIT if limit is None else int(limit)
        offset_value = 0 if offset is None else int(offset)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"limit/offset must be integers: {exc}") from exc
    if limit_value <= 0:
        raise ValueError(f"limit must be positive, got {limit_value}")
    if offset_value < 0:
        raise ValueError(f"offset must be non-negative, got {offset_value}")
    limit_value = min(limit_value, MAX_PAGE_LIMIT)
    total = len(items)
    page_items = items[offset_value : offset_value + limit_value]
    return {
        "items": page_items,
        "page": {
            "total": total,
            "limit": limit_value,
            "offset": offset_value,
            "has_more": offset_value + len(page_items) < total,
        },
    }
