"""Network serving tier: asyncio front-end + stdlib HTTP API over one engine.

The engine core (:mod:`repro.engine`) is synchronous and thread-centric;
this package adapts it to an event loop without duplicating any privacy
logic:

* :class:`AsyncQueryEngine` / :class:`AsyncTicket`
  (:mod:`~repro.engine.serving.async_engine`) — awaitable tickets via
  :class:`LoopTicketWaiter` and a ``loop.call_later`` deadline flusher;
  flushes run the *same* sync :meth:`~repro.engine.PrivateQueryEngine.flush`
  on one dedicated thread, so seeded draws and ε ledgers are byte-identical
  to the direct path.
* :func:`create_app` / :class:`~repro.engine.serving.app.ServingApp`
  (:mod:`~repro.engine.serving.app`) — the router + engine bindings,
  following the app-factory + routes/queries split of the Paper-Scanner
  exemplar (SNIPPETS.md Snippet 3).
* :class:`ServingServer` (:mod:`~repro.engine.serving.http`) — the
  asyncio-streams HTTP/1.1 server; no framework, no new dependencies.
* :class:`AdmissionController` / :class:`TokenBucket`
  (:mod:`~repro.engine.serving.admission`) — the overload edge: bounded
  pending queue, global in-flight cap, per-client token buckets.  Shed
  submits answer 429/503 with ``Retry-After`` *before* any ε is touched.
* :mod:`~repro.engine.serving.routes` / :mod:`~repro.engine.serving.queries`
  — endpoint handlers and wire formats (pagination, sorting, workload
  specs); the API reference lives in ``docs/serving_http_api.md``.

Import isolation: :mod:`repro.engine` never imports this package — engines
that only ever flush synchronously load no asyncio machinery.  Run a demo
server with ``python -m repro.engine.serving``.
"""

from .admission import AdmissionController, ShedDecision, TokenBucket
from .app import ServingApp, create_app
from .async_engine import AsyncQueryEngine, AsyncTicket
from .http import HTTPError, Request, Response, ServingServer, read_request
from .queries import (
    DEFAULT_PAGE_LIMIT,
    MAX_PAGE_LIMIT,
    TicketRegistry,
    apply_sort,
    paginate,
    parse_sort,
    parse_workload,
    ticket_payload,
)
from .waiters import LoopTicketWaiter

__all__ = [
    "AdmissionController",
    "AsyncQueryEngine",
    "AsyncTicket",
    "DEFAULT_PAGE_LIMIT",
    "HTTPError",
    "LoopTicketWaiter",
    "MAX_PAGE_LIMIT",
    "Request",
    "Response",
    "ServingApp",
    "ServingServer",
    "ShedDecision",
    "TicketRegistry",
    "TokenBucket",
    "apply_sort",
    "create_app",
    "paginate",
    "parse_sort",
    "parse_workload",
    "read_request",
    "ticket_payload",
]
