"""The event-loop realisation of the ticket-waiter protocol.

This module is the only place where the ticket lifecycle meets ``asyncio``:
:class:`LoopTicketWaiter` turns the exactly-once ``notify`` of
:class:`~repro.engine.waiters.TicketLifecycle` into an ``asyncio.Future``
resolved on its owning loop.  It lives in :mod:`repro.engine.serving` (not
next to :class:`~repro.engine.waiters.ThreadTicketWaiter`) so that engines
which never serve a network path import no asyncio machinery.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..waiters import TicketWaiter


class LoopTicketWaiter(TicketWaiter):
    """Resolve an ``asyncio.Future`` when the ticket resolves.

    ``notify`` runs on whichever *thread* flushed the ticket — typically the
    async engine's flusher thread, or some thread-front-end's flush sharing
    the same engine — so the future is completed through
    ``loop.call_soon_threadsafe``, the one thread-safe entry point an event
    loop has.  The future may be awaited by any number of coroutines on the
    owning loop; waiters attached after resolution find it already done.
    """

    __slots__ = ("_loop", "_future")

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._future: "asyncio.Future[bool]" = self._loop.create_future()

    @property
    def future(self) -> "asyncio.Future[bool]":
        """The future completed (with ``True``) when the ticket resolves."""
        return self._future

    def notify(self) -> None:
        try:
            self._loop.call_soon_threadsafe(self._complete)
        except RuntimeError:
            # The owning loop already closed — nobody can await the future
            # any more, so the notification has no observer to wake.  This
            # happens when a thread front-end (e.g. BatchingExecutor.close)
            # drains tickets after their submitting loop shut down.
            pass

    def _complete(self) -> None:
        if not self._future.done():
            self._future.set_result(True)
