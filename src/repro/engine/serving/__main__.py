"""``python -m repro.engine.serving`` — boot a demo HTTP server.

Serves a seeded engine over a synthetic salary histogram (the same dataset
as ``examples/serving_demo.py``) so the HTTP API can be exercised without
any setup::

    PYTHONPATH=src python -m repro.engine.serving --port 8080

    curl -s localhost:8080/health
    curl -s -X POST localhost:8080/api/clients \\
        -d '{"client_id": "alice", "epsilon_allotment": 1.0}'
    curl -s -X POST localhost:8080/api/queries \\
        -d '{"client_id": "alice", "workload": {"kind": "identity"},
             "epsilon": 0.25, "wait": true}'

The CI serving-smoke job boots exactly this module in a fresh process and
asserts ``/health`` plus one answered query; the chaos-serving-smoke job
boots it with ``--chaos`` and drives the fault matrix over the wire.
``--port 0`` (the default) binds an ephemeral port and prints it on the
first line.

Graceful shutdown: SIGTERM (or SIGINT) starts a drain — readiness flips to
503 and new submits shed, in-flight tickets complete through their final
flush, the engine closes (taking its final snapshot when a snapshotter is
attached), and the process exits 0 after printing a ``drain complete``
line the drain tests parse.
"""

from __future__ import annotations

import argparse
import asyncio
import signal

import numpy as np

from ...core import Database, Domain
from ...policy import line_policy
from ..engine import PrivateQueryEngine
from .app import create_app
from .http import ServingServer


def build_demo_engine(
    cells: int = 256,
    total_epsilon: float = 8.0,
    seed: int = 7,
    durable_ledger=None,
    execute_backend=None,
    execute_workers=None,
) -> PrivateQueryEngine:
    """A seeded engine over the demo salary histogram."""
    rng = np.random.default_rng(0)
    domain = Domain((cells,))
    counts = np.zeros(domain.size)
    counts[rng.integers(20, cells - 26, size=40)] = rng.integers(1, 200, size=40)
    database = Database(domain, counts, name="salaries")
    options = {}
    if durable_ledger is not None:
        options["durable_ledger"] = durable_ledger
    if execute_backend is not None:
        options["execute_backend"] = execute_backend
    if execute_workers is not None:
        options["execute_workers"] = execute_workers
    return PrivateQueryEngine(
        database,
        total_epsilon=total_epsilon,
        default_policy=line_policy(domain),
        random_state=seed,
        **options,
    )


async def serve(args: argparse.Namespace) -> None:
    engine = build_demo_engine(
        args.cells,
        args.epsilon,
        args.seed,
        durable_ledger=args.durable_ledger,
        execute_backend=args.execute_backend,
        execute_workers=args.execute_workers,
    )
    app = create_app(engine, enable_chaos=args.chaos)
    server = ServingServer(app, host=args.host, port=args.port)
    await server.start()
    # The smoke job parses this line for the bound (possibly ephemeral) port.
    print(f"serving on http://{server.host}:{server.port}", flush=True)

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()

    def _begin_drain() -> None:
        # Signal handler: flip readiness and stop admitting *now* (cheap,
        # loop-thread safe), then let the main coroutine run the drain.
        app.drain()
        stop.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, _begin_drain)
    try:
        # start() already accepts connections; this coroutine only needs to
        # stay alive until a signal asks for the drain.
        await stop.wait()
    finally:
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.remove_signal_handler(signum)
        # Drain order matters: complete every in-flight ticket *before*
        # closing the listener, so clients blocked in wait=true submits
        # receive their answers over the still-open connections.
        await app.aclose()
        await server.aclose()
        engine.close()
        stats = engine.stats
        # The drain tests parse this line: every admitted ticket resolved.
        print(
            "drain complete: "
            f"pending={engine.pending_count} "
            f"answered={stats.queries_answered} "
            f"refused={stats.queries_refused} "
            f"expired={stats.queries_expired} "
            f"cancelled={stats.queries_cancelled}",
            flush=True,
        )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.serving",
        description="Demo HTTP server over a seeded private query engine",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--cells", type=int, default=256, help="domain size")
    parser.add_argument(
        "--epsilon", type=float, default=8.0, help="global privacy budget"
    )
    parser.add_argument("--seed", type=int, default=7, help="engine random_state")
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="install POST /api/chaos fault injection (test deployments only)",
    )
    parser.add_argument(
        "--durable-ledger",
        default=None,
        metavar="PATH",
        help="journal epsilon charges write-ahead to this SQLite ledger",
    )
    parser.add_argument(
        "--execute-backend",
        default=None,
        choices=("inline", "thread", "process", "adaptive"),
        help="execute-stage backend (engine default when omitted)",
    )
    parser.add_argument(
        "--execute-workers",
        type=int,
        default=None,
        help="execute-stage worker count (engine default when omitted)",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(serve(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
