"""``python -m repro.engine.serving`` — boot a demo HTTP server.

Serves a seeded engine over a synthetic salary histogram (the same dataset
as ``examples/serving_demo.py``) so the HTTP API can be exercised without
any setup::

    PYTHONPATH=src python -m repro.engine.serving --port 8080

    curl -s localhost:8080/health
    curl -s -X POST localhost:8080/api/clients \\
        -d '{"client_id": "alice", "epsilon_allotment": 1.0}'
    curl -s -X POST localhost:8080/api/queries \\
        -d '{"client_id": "alice", "workload": {"kind": "identity"},
             "epsilon": 0.25, "wait": true}'

The CI serving-smoke job boots exactly this module in a fresh process and
asserts ``/health`` plus one answered query.  ``--port 0`` (the default)
binds an ephemeral port and prints it on the first line.
"""

from __future__ import annotations

import argparse
import asyncio

import numpy as np

from ...core import Database, Domain
from ...policy import line_policy
from ..engine import PrivateQueryEngine
from .app import create_app
from .http import ServingServer


def build_demo_engine(
    cells: int = 256, total_epsilon: float = 8.0, seed: int = 7
) -> PrivateQueryEngine:
    """A seeded engine over the demo salary histogram."""
    rng = np.random.default_rng(0)
    domain = Domain((cells,))
    counts = np.zeros(domain.size)
    counts[rng.integers(20, cells - 26, size=40)] = rng.integers(1, 200, size=40)
    database = Database(domain, counts, name="salaries")
    return PrivateQueryEngine(
        database,
        total_epsilon=total_epsilon,
        default_policy=line_policy(domain),
        random_state=seed,
    )


async def serve(args: argparse.Namespace) -> None:
    engine = build_demo_engine(args.cells, args.epsilon, args.seed)
    app = create_app(engine)
    server = ServingServer(app, host=args.host, port=args.port)
    await server.start()
    # The smoke job parses this line for the bound (possibly ephemeral) port.
    print(f"serving on http://{server.host}:{server.port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.serving",
        description="Demo HTTP server over a seeded private query engine",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--cells", type=int, default=256, help="domain size")
    parser.add_argument(
        "--epsilon", type=float, default=8.0, help="global privacy budget"
    )
    parser.add_argument("--seed", type=int, default=7, help="engine random_state")
    args = parser.parse_args(argv)
    try:
        asyncio.run(serve(args))
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":
    main()
