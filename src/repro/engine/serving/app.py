"""The app factory: engine bindings + router the HTTP server dispatches into.

:func:`create_app` is the composition point (the exemplar's FastAPI
``create_app`` shape): it wires one :class:`~repro.engine.PrivateQueryEngine`
to an :class:`~repro.engine.serving.AsyncQueryEngine` front-end, a
:class:`~repro.engine.serving.queries.TicketRegistry` for the poll
endpoints, and the route table from
:mod:`~repro.engine.serving.routes` — then hands the assembled
:class:`ServingApp` to a :class:`~repro.engine.serving.http.ServingServer`
(or to tests, which dispatch :class:`~repro.engine.serving.http.Request`
objects straight into :meth:`ServingApp.dispatch` without a socket).

Observability: every dispatch runs inside
:meth:`~repro.engine.observability.Observability.request_context`, which
opens a per-request trace and stacks the ``X-Request-Id`` header (plus
method/path) as ambient ε-audit context — a charge or refusal caused by an
HTTP request is attributable to that request in the audit stream.
"""

from __future__ import annotations

import logging
import re
from typing import Callable, List, Optional, Pattern, Tuple

from .admission import AdmissionController
from .async_engine import AsyncQueryEngine
from .http import HTTPError, Request, Response, error_response
from .queries import TicketRegistry

logger = logging.getLogger(__name__)

RouteEntry = Tuple[str, Pattern, Callable]


class ServingApp:
    """Router + engine bindings; the object a :class:`ServingServer` serves.

    Handlers are ``async def handler(app, request, **path_params)`` and are
    registered with :meth:`add_route`; path patterns use
    ``{name}`` placeholders matching one non-``/`` segment.
    """

    def __init__(
        self,
        engine,
        async_engine: AsyncQueryEngine,
        tickets: TicketRegistry,
        admission: Optional[AdmissionController] = None,
        enable_chaos: bool = False,
    ) -> None:
        self.engine = engine
        self.async_engine = async_engine
        self.tickets = tickets
        self.admission = (
            admission if admission is not None else AdmissionController(engine)
        )
        self.async_engine.add_flush_observer(self.admission.observe_flush_seconds)
        #: When ``True`` the ``POST /api/chaos`` fault-injection endpoint is
        #: installed.  Never enable outside a test/chaos deployment.
        self.enable_chaos = enable_chaos
        #: Flipped by :meth:`drain` (SIGTERM path): ``/ready`` turns 503 and
        #: every new submit sheds, while in-flight work keeps completing.
        self.draining = False
        self._routes: List[RouteEntry] = []

    # ---------------------------------------------------------------- routing
    def add_route(self, method: str, pattern: str, handler: Callable) -> None:
        """Register ``handler`` for ``method`` on the ``{param}`` pattern."""
        regex = re.compile(
            "^"
            + re.sub(r"\{([a-zA-Z_][a-zA-Z0-9_]*)\}", r"(?P<\1>[^/]+)", pattern)
            + "$"
        )
        self._routes.append((method.upper(), regex, handler))

    async def dispatch(self, request: Request) -> Response:
        """Route one request; error envelopes for every failure mode."""
        matched_path = False
        for method, regex, handler in self._routes:
            match = regex.match(request.path)
            if match is None:
                continue
            matched_path = True
            if method != request.method:
                continue
            observability = self.engine.observability
            try:
                with observability.request_context(
                    "http_request",
                    request_id=request.header("x-request-id"),
                    method=request.method,
                    path=request.path,
                ):
                    return await handler(self, request, **match.groupdict())
            except HTTPError as exc:
                return error_response(exc.status, exc.message)
            except Exception as exc:  # noqa: BLE001 - the server must answer
                logger.exception(
                    "unhandled error serving %s %s", request.method, request.path
                )
                return error_response(500, f"{type(exc).__name__}: {exc}")
        if matched_path:
            return error_response(405, f"method {request.method} not allowed")
        return error_response(404, f"no route for {request.path}")

    def drain(self) -> None:
        """Stop admitting queries; readiness flips to 503.

        The first half of graceful shutdown: after ``drain()`` the load
        balancer (watching ``/ready``) routes away and every new submit
        sheds with 503, while tickets already admitted keep flowing through
        their flushes.  :meth:`aclose` then completes them.
        """
        self.draining = True

    async def aclose(self) -> None:
        """Drain the async front-end (every accepted ticket resolves)."""
        self.draining = True
        await self.async_engine.aclose()


def create_app(
    engine,
    max_batch_size: int = 32,
    max_delay: float = 0.02,
    registry_capacity: int = 4096,
    async_engine: Optional[AsyncQueryEngine] = None,
    admission: Optional[AdmissionController] = None,
    enable_chaos: bool = False,
) -> ServingApp:
    """Assemble the serving app for ``engine``.

    ``max_batch_size`` / ``max_delay`` configure the async front-end's
    :class:`~repro.engine.waiters.BatchTriggers`; pass a pre-built
    ``async_engine`` to share one front-end between apps or to inject a
    configured one.  ``admission`` overrides the default
    :class:`~repro.engine.serving.admission.AdmissionController` (pending
    bound 256, in-flight cap 1024, no per-client rate limit);
    ``enable_chaos=True`` installs the ``POST /api/chaos`` fault-injection
    endpoint — test deployments only.
    """
    from .routes import install_routes

    if async_engine is None:
        async_engine = AsyncQueryEngine(
            engine, max_batch_size=max_batch_size, max_delay=max_delay
        )
    app = ServingApp(
        engine,
        async_engine,
        TicketRegistry(registry_capacity),
        admission=admission,
        enable_chaos=enable_chaos,
    )
    install_routes(app)
    return app
