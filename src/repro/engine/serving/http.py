"""Stdlib-only HTTP/1.1 machinery for the serving tier: asyncio streams.

No web framework, no new dependencies: requests are parsed off an
``asyncio.StreamReader``, responses are rendered straight back onto the
``StreamWriter``, and connections are kept alive per HTTP/1.1 defaults so a
polling client pays one TCP handshake, not one per poll.  The machinery is
deliberately small — request line + headers + ``Content-Length`` body,
JSON-first responses — because the API surface
(:mod:`repro.engine.serving.routes`) only needs that much; it is **not** a
general-purpose HTTP implementation.

Layering (the app-factory + routes split of the Paper-Scanner exemplar,
SNIPPETS.md Snippet 3):

* this module — the protocol: :class:`Request`, :class:`Response`,
  :class:`HTTPError`, :func:`read_request`, and :class:`ServingServer`,
  which owns the listening socket and the per-connection loop;
* :mod:`~repro.engine.serving.app` — :func:`~repro.engine.serving.create_app`
  builds the :class:`~repro.engine.serving.app.ServingApp` (router + engine
  bindings) that :class:`ServingServer` dispatches into;
* :mod:`~repro.engine.serving.routes` — the handlers;
* :mod:`~repro.engine.serving.queries` — wire formats and pagination.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Dict, Optional
from urllib.parse import parse_qsl, unquote

logger = logging.getLogger(__name__)

#: Cap on accepted request bodies; a query over a big domain ships dense
#: workload rows, so this is generous — but unbounded reads would let one
#: client exhaust server memory.
MAX_BODY_BYTES = 16 * 1024 * 1024
MAX_HEADER_LINE = 64 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """Raise from a handler to answer with an error status + JSON body."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = int(status)
        self.message = message


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body", "keep_alive")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body
        self.keep_alive = keep_alive

    def json(self) -> dict:
        """The request body as a JSON object; HTTP 400 when it is not one."""
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HTTPError(400, f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return payload

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Request({self.method} {self.path})"


class Response:
    """One response: a JSON payload (or preformatted text) plus a status."""

    __slots__ = ("status", "body", "content_type", "headers")

    def __init__(
        self,
        payload=None,
        status: int = 200,
        text: Optional[str] = None,
        content_type: Optional[str] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.status = int(status)
        if text is not None:
            self.body = text.encode("utf-8")
            self.content_type = content_type or "text/plain; charset=utf-8"
        elif payload is not None:
            self.body = json.dumps(payload).encode("utf-8")
            self.content_type = content_type or "application/json"
        else:
            self.body = b""
            self.content_type = content_type or "application/json"
        self.headers = dict(headers or {})

    def encode(self, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [
            f"HTTP/1.1 {self.status} {reason}",
            f"Content-Type: {self.content_type}",
            f"Content-Length: {len(self.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        for name, value in self.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


def error_response(status: int, message: str) -> Response:
    """The uniform JSON error envelope."""
    return Response({"error": message}, status=status)


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Malformed requests raise :class:`HTTPError` (the connection loop
    answers 400 and closes).
    """
    try:
        line = await reader.readline()
    except (ConnectionError, asyncio.LimitOverrunError):
        return None
    if not line:
        return None
    if len(line) > MAX_HEADER_LINE:
        raise HTTPError(400, "request line too long")
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HTTPError(400, "malformed request line") from None
    headers: Dict[str, str] = {}
    while True:
        header_line = await reader.readline()
        if header_line in (b"\r\n", b"\n", b""):
            break
        if len(header_line) > MAX_HEADER_LINE:
            raise HTTPError(400, "header line too long")
        name, separator, value = header_line.decode("latin-1").partition(":")
        if not separator:
            raise HTTPError(400, f"malformed header line {header_line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise HTTPError(400, "malformed Content-Length") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HTTPError(413, f"request body over {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    path, _, query_string = target.partition("?")
    query = {key: value for key, value in parse_qsl(query_string)}
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version.upper() == "HTTP/1.1"
        else connection == "keep-alive"
    )
    return Request(
        method=method.upper(),
        path=unquote(path),
        query=query,
        headers=headers,
        body=body,
        keep_alive=keep_alive,
    )


class ServingServer:
    """The asyncio-streams HTTP server wrapping one app.

    ``port=0`` binds an ephemeral port (the default for tests and demos);
    :attr:`port` reports the bound one after :meth:`start`.  Connections
    are served keep-alive until the client closes or sends
    ``Connection: close``.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0) -> None:
        self._app = app
        self._host = host
        self._port = port
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def app(self):
        return self._app

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        return self._port

    @property
    def host(self) -> str:
        return self._host

    async def start(self) -> "ServingServer":
        """Bind the socket and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        logger.info("serving HTTP on %s:%d", self._host, self._port)
        return self

    async def serve_forever(self) -> None:
        """Block serving until cancelled (the ``__main__`` entry point)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, close the listener, and drain the app."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self._app.aclose()

    async def __aenter__(self) -> "ServingServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    # ------------------------------------------------------------- connection
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HTTPError as exc:
                    writer.write(
                        error_response(exc.status, exc.message).encode(keep_alive=False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                response = await self._app.dispatch(request)
                writer.write(response.encode(keep_alive=request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServingServer({self._host}:{self._port})"
