"""Admission control for the serving edge: shed load before ε is touched.

The serving tier's overload discipline mirrors the isolation-of-paths idea
the HTAP literature applies to ingest vs analytics: *admission* is isolated
from *execution*, so a flood of submits degrades into fast, cheap shed
responses at the door instead of corrupting latency — or budget — for the
work already admitted.  Everything in this module runs **before**
``engine.submit``: a shed query never creates a ticket, never joins a
flush, and never reaches the charge stage, so its ε cost is exactly zero
(asserted by ledger byte-compare in ``benchmarks/bench_overload.py``).

Three independent limits, checked in order:

* **draining** — the app flipped readiness (SIGTERM/``aclose``): every
  submit sheds with 503 while in-flight work completes.
* **pending queue bound** — the engine's pending queue reached
  ``max_pending``: 503, the server as a whole is saturated.
* **global in-flight cap** — ``max_inflight`` admitted-but-unresolved
  tickets exist across all clients: 503.  Released by a
  :class:`TicketWaiter` attached to each admitted ticket, so every
  terminal path (answered, refused, expired, cancelled) frees the slot
  exactly once.
* **per-client token bucket** — ``client_rate``/``client_burst``: 429,
  this *client* is over its rate while the server may be fine.

Shed responses carry ``Retry-After`` computed from the observed flush
latency (an EWMA fed by the async front-end's flusher thread): the honest
"come back when a flush slot has likely turned over" hint, not a constant.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from ..waiters import TicketWaiter

__all__ = ["AdmissionController", "ShedDecision", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Lazily refilled on each :meth:`try_acquire` from a monotonic clock, so
    idle buckets cost nothing.  Thread-safe; one bucket per client.
    """

    __slots__ = ("rate", "burst", "_tokens", "_updated", "_lock")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError(
                f"token bucket rate and burst must be positive, got "
                f"rate={rate}, burst={burst}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Take one token; ``False`` when the bucket is dry."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            elapsed = max(0.0, now - self._updated)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


@dataclass
class ShedDecision:
    """Why a submit was shed, plus the retry hint the edge should emit."""

    #: HTTP status the edge maps this to: 429 (client over rate) or 503
    #: (server saturated / draining).
    status: int
    #: Machine-readable reason: ``rate_limited``, ``queue_full``,
    #: ``inflight_cap`` or ``draining``.
    reason: str
    #: Human-readable explanation for the error payload.
    message: str
    #: Suggested wait before retrying, seconds (float; the edge also emits
    #: the integer-ceiling ``Retry-After`` header from it).
    retry_after: float


class _ReleaseWaiter(TicketWaiter):
    """Frees one in-flight slot when its admitted ticket resolves.

    The lifecycle latch delivers ``notify`` exactly once per waiter, so the
    slot cannot double-free no matter which path (answer, refusal, expiry,
    cancellation) resolves the ticket.
    """

    __slots__ = ("_controller",)

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller

    def notify(self) -> None:
        self._controller._release_inflight()


class AdmissionController:
    """Pre-submit gate: bounded queue, in-flight cap, per-client rate limit.

    Parameters
    ----------
    engine:
        The served engine — consulted for ``pending_count`` (the bounded
        admission queue is the engine's own pending queue, bounded here at
        the edge) and for the metrics registry the shed counters live in.
    max_pending:
        Pending-queue depth beyond which submits shed with 503.
    max_inflight:
        Admitted-but-unresolved tickets (across all clients) beyond which
        submits shed with 503.
    client_rate / client_burst:
        Per-client token bucket: sustained queries/second and burst
        capacity.  ``client_rate=None`` disables per-client limiting.
    """

    def __init__(
        self,
        engine,
        max_pending: int = 256,
        max_inflight: int = 1024,
        client_rate: Optional[float] = None,
        client_burst: Optional[float] = None,
    ) -> None:
        if max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        if max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {max_inflight}")
        self._engine = engine
        self.max_pending = int(max_pending)
        self.max_inflight = int(max_inflight)
        self.client_rate = None if client_rate is None else float(client_rate)
        self.client_burst = float(
            client_burst if client_burst is not None else (client_rate or 1.0)
        )
        self._buckets: Dict[str, TokenBucket] = {}
        self._buckets_lock = threading.Lock()
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        # EWMA of observed flush latency, fed by the async front-end's
        # flusher thread (single writer; readers take the float atomically).
        # Seeds at zero: until a flush has been observed the retry hint
        # falls back to the floor below.
        self._flush_ewma = 0.0
        #: Floor for Retry-After so a cold server never suggests 0 s.
        self.min_retry_after = 0.05
        metrics = engine.observability.metrics
        self._c_shed = {
            reason: metrics.counter(
                "serving_shed_total",
                "Submits shed at the admission edge before any epsilon was touched",
                reason=reason,
            )
            for reason in ("rate_limited", "queue_full", "inflight_cap", "draining")
        }
        self._g_inflight = metrics.gauge(
            "serving_inflight_tickets",
            "Admitted-but-unresolved tickets counted by admission control",
        )

    # -------------------------------------------------------------- admission
    def admit(self, client_id: str, draining: bool = False) -> Optional[ShedDecision]:
        """Check every limit; ``None`` admits, a :class:`ShedDecision` sheds.

        Order matters: drain beats saturation beats rate — the most global
        condition wins, so a drained server answers 503 even to a client
        with a full token bucket.
        """
        if draining:
            return self._shed(
                503,
                "draining",
                "server is draining: no new queries are admitted",
            )
        if self._engine.pending_count >= self.max_pending:
            return self._shed(
                503,
                "queue_full",
                f"pending queue is full ({self.max_pending} queries waiting)",
            )
        with self._inflight_lock:
            saturated = self._inflight >= self.max_inflight
        if saturated:
            return self._shed(
                503,
                "inflight_cap",
                f"too many queries in flight ({self.max_inflight})",
            )
        if self.client_rate is not None:
            with self._buckets_lock:
                bucket = self._buckets.get(client_id)
                if bucket is None:
                    bucket = self._buckets[client_id] = TokenBucket(
                        self.client_rate, self.client_burst
                    )
            if not bucket.try_acquire():
                return self._shed(
                    429,
                    "rate_limited",
                    f"client {client_id!r} is over its rate limit "
                    f"({self.client_rate:g}/s, burst {self.client_burst:g})",
                )
        return None

    def register(self, ticket) -> None:
        """Count an admitted ticket in flight until it resolves.

        Attaches a release waiter to the ticket's lifecycle; the latch
        notifies exactly once on any terminal path, so slots never leak and
        never double-free.  A ticket that resolved before registration
        (inline replay) releases immediately via the late-waiter path.
        """
        with self._inflight_lock:
            self._inflight += 1
            self._g_inflight.set(self._inflight)
        ticket.add_waiter(_ReleaseWaiter(self))

    def _release_inflight(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1
            self._g_inflight.set(self._inflight)

    @property
    def inflight(self) -> int:
        """Admitted-but-unresolved tickets currently counted."""
        with self._inflight_lock:
            return self._inflight

    def _shed(self, status: int, reason: str, message: str) -> ShedDecision:
        self._c_shed[reason].inc()
        retry = self.retry_after()
        return ShedDecision(
            status=status,
            reason=reason,
            message=message,
            retry_after=retry,
        )

    # ------------------------------------------------------------- flush hints
    def observe_flush_seconds(self, seconds: float) -> None:
        """Feed one observed flush latency into the Retry-After EWMA.

        Called from the async front-end's flusher thread — a single writer,
        so the read-modify-write needs no lock (readers only take the float).
        """
        if seconds < 0:
            return
        previous = self._flush_ewma
        self._flush_ewma = (
            seconds if previous == 0.0 else 0.8 * previous + 0.2 * seconds
        )

    def retry_after(self) -> float:
        """Suggested retry wait: two observed flush turnovers, floored.

        One flush turnover drains up to a full batch from the pending
        queue; two gives an honestly-loaded server room to work through
        the backlog the shed response is protecting.
        """
        return max(self.min_retry_after, 2.0 * self._flush_ewma)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionController(max_pending={self.max_pending}, "
            f"max_inflight={self.max_inflight}, "
            f"client_rate={self.client_rate}, inflight={self.inflight})"
        )
