"""`PrivateQueryEngine` — the budget-managed, plan-cached serving front-end.

The library's mechanisms are one-shot: every call re-derives the policy
transform, re-factorises strategy matrices and spends budget with no session
state.  The engine turns them into a multi-client query-answering service by
separating the **fast answering path** from the **expensive planning path**
(the split HTAP systems make between transactional serving and analytical
maintenance):

1. **Plan cache** — planning artefacts (``PolicyTransform``, spanners,
   strategy factorisations, transformed workloads) are memoised per
   ``(domain, policy, planner-config)`` in a :class:`~repro.engine.PlanCache`,
   so repeated queries skip planning entirely.  The artefacts are picklable
   end-to-end, so :meth:`PrivateQueryEngine.save_plans` /
   :meth:`~PrivateQueryEngine.load_plans` persist them across process
   lifetimes — a restarted server plans nothing cold.
2. **Sessions & budget** — each client holds a
   :class:`~repro.engine.ClientSession` whose epsilon allotment is reserved
   from the engine's global :class:`~repro.accounting.PrivacyAccountant`;
   queries are charged per session and refused with a clear
   :class:`~repro.exceptions.PrivacyBudgetError` once the allotment is gone.
3. **Staged flush pipeline** — every flush runs **plan → charge → execute →
   resolve** (:mod:`repro.engine.pipeline`): planning is lock-free, charging
   holds only the narrowed accountant lock, mechanism execution holds no lock
   at all, and resolution takes the stats/cache locks briefly.  Concurrent
   ``flush()`` callers therefore overlap their numerical work instead of
   queueing behind one engine-wide lock; compatible queries within a flush
   are still answered by **one** vectorised mechanism invocation.  With
   ``execute_workers``/``execute_backend`` the execute stage additionally
   fans out across threads or **worker processes**
   (:mod:`repro.engine.parallel`) — true multi-core execution for the
   GIL-bound mechanism kernels, with backend-independent noise derivations.
4. **Domain sharding** — policies whose graph decomposes into several
   connected components are served scatter/gather
   (:mod:`repro.engine.sharding`): component-confined workloads are split
   across per-component :class:`~repro.engine.DomainShard`\\ s, each with its
   own plan cache, and the noisy rows are gathered back.  By the paper's
   parallel-composition rule this is *exact* — the combined release costs the
   same ε the unsharded path would charge, byte for byte.
5. **Noisy-answer cache** — re-asked queries replay the already-paid-for
   noisy vector at zero additional budget (post-processing closure), and
   :meth:`PrivateQueryEngine.consolidate` least-squares-reconciles all cached
   answers under a policy, again for free.  Every stored measurement carries
   the draw id of the invocation that produced it, so batch-mates sharing a
   noise draw stay identifiable.

Accounting of a batch is conservative: the stacked invocation is a single
ε-release, yet every participating session is charged the full ε of its
query, so per-session budgets never undercount.

For concurrent clients, put a :class:`~repro.engine.BatchingExecutor` in
front: it accumulates cross-thread submissions and auto-flushes on a
deadline/size trigger, so batching wins materialise under real load.
"""

from __future__ import annotations

import itertools
import logging
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accounting.composition import PrivacyAccountant
from ..core.database import Database
from ..core.rng import RandomState, ensure_rng
from ..core.workload import Workload
from ..exceptions import (
    AskTimeoutError,
    DurabilityError,
    MechanismError,
    PlanStoreError,
    PolicyError,
    PrivacyBudgetError,
)
from ..policy.graph import PolicyGraph, is_bottom
from .answer_cache import AnswerCache, Measurement
from .durability.ledger_store import LedgerStore
from .durability.snapshotter import Snapshotter
from .factorisation import get_store as get_factorisation_store
from .observability import Observability
from .parallel import (
    ExecuteCostModel,
    ExecuteUnit,
    create_execute_backend,
    execute_unit_via,
)
from .pipeline import (
    ANSWERED,
    CANCELLED,
    EXPIRED,
    PENDING,
    REFUSED,
    STAGES,
    FlushPipeline,
    QueryTicket,
)
from .plan_cache import (
    PLAN_STORE_FORMAT,
    CachedPlan,
    PlanCache,
    read_plan_store,
    write_plan_store,
)
from .session import ClientSession
from .sharding import ShardSet
from .signature import PlanKey, policy_signature

__all__ = [
    "ANSWERED",
    "CANCELLED",
    "EXPIRED",
    "EngineStats",
    "PENDING",
    "PrivateQueryEngine",
    "QueryTicket",
    "REFUSED",
]

logger = logging.getLogger(__name__)


@dataclass
class EngineStats:
    """Aggregate serving statistics, snapshotted by :attr:`PrivateQueryEngine.stats`.

    Counters live in the engine's observability
    :class:`~repro.engine.observability.MetricsRegistry` — this snapshot is
    *derived* from the registry under its lock (taken once), so stats and
    exported metrics can never disagree and snapshots taken while flushes
    run on other threads stay internally consistent.  The ``*_seconds``
    fields accumulate wall-clock per pipeline stage across all flushes
    (concurrent flushes add up, so the totals can exceed elapsed time —
    they measure *work*, not span).
    """

    queries_submitted: int = 0
    queries_answered: int = 0
    queries_refused: int = 0
    #: Tickets whose deadline passed before the charge stage — always zero ε.
    queries_expired: int = 0
    #: Tickets cancelled by their client before the pipeline claimed them.
    queries_cancelled: int = 0
    answer_cache_replays: int = 0
    #: Fresh measurements bought through :meth:`PrivateQueryEngine.top_up`,
    #: each charging exactly its declared ε increment.
    top_ups: int = 0
    flushes: int = 0
    batches_executed: int = 0
    sharded_batches: int = 0
    mechanism_invocations: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    answer_hits: int = 0
    answer_misses: int = 0
    epsilon_spent: float = 0.0
    epsilon_remaining: float = 0.0
    open_sessions: int = 0
    plan_seconds: float = 0.0
    charge_seconds: float = 0.0
    execute_seconds: float = 0.0
    resolve_seconds: float = 0.0
    #: Which execute backend served the flushes: ``"inline"`` (no pool),
    #: ``"thread"``, ``"process"`` or ``"adaptive"``.
    execute_backend: str = "inline"
    #: Work units dispatched to the execute backend (0 for inline engines;
    #: for ``"adaptive"`` only pool-routed units count — inline-routed ones
    #: are tallied by :attr:`adaptive_inline`).
    worker_dispatches: int = 0
    #: Parent-side wall-clock spent pickling plans/payloads for the process
    #: backend (always 0.0 for inline/thread) — the observable cost of
    #: crossing the process boundary.
    serialization_seconds: float = 0.0
    #: Total bytes shipped over the process-pool pipe (payloads, digests,
    #: and blobs the miss-only protocol actually sent) — 0 for
    #: inline/thread engines.
    bytes_shipped: int = 0
    #: Worker-side resident-cache misses of the miss-only blob protocol
    #: (each one cost a resubmission round trip with full blobs).
    blob_cache_misses: int = 0
    #: Units the adaptive router kept inline on the flushing thread
    #: (0 unless ``execute_backend="adaptive"``).
    adaptive_inline: int = 0
    #: Units the adaptive router dispatched to a pool (thread or process).
    adaptive_dispatched: int = 0
    #: Times the process backend replaced a broken worker pool (a worker
    #: died mid-dispatch, e.g. OOM-kill or SIGKILL) and kept serving on a
    #: fresh pool.  0 for inline/thread engines; after the respawn budget
    #: is exhausted the engine falls back inline permanently.
    pool_respawns: int = 0
    #: Units that reached the backend fused into grouped dispatches (each
    #: member counts once).  0 with ``execute_fusion=False``, on inline
    #: engines, or while flushes stay at or below the backend's slot count.
    fused_units: int = 0
    #: Process-wide factorisation-store telemetry (the store is shared by
    #: every plan, shard cache and engine in the process — see
    #: :mod:`repro.engine.factorisation` — so these fields describe the
    #: process, not this engine alone).
    factorisation_hits: int = 0
    factorisation_misses: int = 0
    factorisation_entries: int = 0
    factorisation_build_seconds: float = 0.0

    @property
    def factorisation_hit_rate(self) -> float:
        """Fraction of factorisation-store lookups served from cache."""
        total = self.factorisation_hits + self.factorisation_misses
        return self.factorisation_hits / total if total else 0.0

    @property
    def stage_seconds(self) -> Dict[str, float]:
        """Per-stage timing totals keyed by stage name."""
        return {
            "plan": self.plan_seconds,
            "charge": self.charge_seconds,
            "execute": self.execute_seconds,
            "resolve": self.resolve_seconds,
        }

    @property
    def plan_cache_hit_rate(self) -> float:
        """Fraction of plan lookups served from the cache (warm-start gauge)."""
        total = self.plan_hits + self.plan_misses
        return self.plan_hits / total if total else 0.0


class PrivateQueryEngine:
    """A multi-client, budget-managed Blowfish/DP query serving engine.

    Parameters
    ----------
    database:
        The private database the engine serves.  It is held by the trusted
        curator; clients only ever see noisy answers.
    total_epsilon:
        Global privacy budget across *all* sessions (sequential composition).
    default_policy:
        Policy used when a query does not name one.
    plan_cache_size:
        LRU capacity of the plan cache.
    enable_answer_cache:
        When ``True`` (default), repeated queries are replayed for free.
    answer_cache_size:
        LRU capacity of the noisy-answer cache (evicted answers must simply
        be paid for again).
    prefer_data_dependent / consistency:
        Planner configuration forwarded to
        :func:`repro.blowfish.plan_mechanism`.
    random_state:
        Seed or generator for the engine's noise stream.  Concurrent flushes
        each derive an independent child stream from it; passing an explicit
        ``random_state`` to :meth:`flush` bypasses the derivation for
        reproducible single-flush tests.
    enable_sharding:
        When ``True`` (default), multi-component policies are served
        scatter/gather over per-component domain shards (exact under
        parallel composition).  Workloads that a shard split cannot represent
        exactly fall back to the unsharded path automatically.
    shard_plan_cache_size:
        LRU capacity of each per-shard plan cache.
    execute_workers:
        When set (> 1), the execute stage runs on a shared worker pool: the
        flush's batches are cut into work units (one per unsharded batch, one
        per touched shard of a sharded batch) and dispatched concurrently.
        Each unit gets its own child noise stream, so a flush's answers then
        depend on batch grouping rather than submission order.
    execute_backend:
        ``"thread"`` (default) runs work units on an in-process thread pool;
        ``"process"`` ships them to worker *processes*
        (:mod:`repro.engine.parallel`), the only way past the GIL for the
        scipy-sparse mechanism kernels; ``"adaptive"`` routes each unit
        per flush — inline, thread pool or process pool — by a measured
        cost model (EWMA kernel seconds per plan vs observed per-dispatch
        overhead), so tiny units skip IPC and heavy sharded batches still
        fan out across cores.  The RNG derivation is identical on every
        backend, so a seeded engine draws the same noise whichever serves —
        and ε ledgers never depend on the backend at all.  Ignored unless
        ``execute_workers`` > 1.
    execute_cost_model:
        Optional :class:`~repro.engine.ExecuteCostModel` for the adaptive
        backend (tests/benchmarks inject primed models to force routing
        decisions); the default model starts from overhead priors and
        learns from the served workload.  Ignored by the static backends.
    execute_fusion:
        When ``True`` (default), a flush holding more work units than the
        backend has workers coalesces compatible units (same planner config
        and noise flag) into fused :class:`~repro.engine.parallel.ExecuteUnitGroup`
        dispatches — one queue hop / pickle / IPC round trip for several
        kernels.  Fusion touches dispatch and transport only: every member
        keeps the RNG child it was dealt before grouping, so a seeded
        engine's draws and the ε ledgers are byte-identical with fusion on
        or off.  Ignored unless ``execute_workers`` > 1.
    process_start_method:
        ``multiprocessing`` start method of the process backend (default
        ``"spawn"``; ``"fork"`` starts faster but is unsafe with threads).
        The usual :mod:`multiprocessing` caveat applies: a *script* that
        builds a process-backed engine at module level must guard it with
        ``if __name__ == "__main__":`` — spawned workers re-import the main
        module, and an unguarded script would recurse.  (A worker crash is
        contained either way: the affected batch's charges roll back and
        its tickets refuse with a clear error.)
    serialize_flush:
        Compatibility/benchmark switch: when ``True`` the whole pipeline runs
        under one exclusive lock, restoring PR 1's single-lock behaviour
        (sound, fully serialising).  ``benchmarks/bench_concurrency.py`` uses
        it as the baseline the staged pipeline is measured against.
    observability:
        Optional :class:`~repro.engine.observability.Observability` hub.
        When omitted, a **disabled** hub is built: aggregate counters still
        flow through its metrics registry (they back :attr:`stats`), but
        tracing, latency histograms and the ε-audit stream stay off and the
        hot-path hooks reduce to one branch each.  Pass
        ``Observability(enabled=True)`` for per-flush traces and
        percentile histograms, and give it ``audit_path=``/``audit=`` for
        the durable ε-audit stream.
    durable_ledger:
        Optional path to a SQLite write-ahead ε-ledger
        (:class:`~repro.engine.durability.LedgerStore`).  A fresh store is
        initialised and bound: from then on every charge commits durably
        *before* its mechanism runs, and rollbacks/scope opens/closes are
        journalled too.  An existing store is **recovered** first — the
        accountant is rebuilt with every journalled charge, still-open
        ``session:`` scopes come back as :class:`ClientSession`\\ s (with
        ``recovered=True``), and the relaunched engine refuses queries
        against budget the crashed process already spent.  The store's
        journalled ``total_epsilon`` must match this constructor's, else
        :class:`~repro.exceptions.DurabilityError`.  ``None`` (default)
        keeps the pure in-memory fast path.
    snapshot_dir:
        Optional directory for crash-consistent warm-state snapshots
        (:class:`~repro.engine.durability.Snapshotter`): the plan store and
        the answer cache, each written atomically.  Whatever snapshot the
        directory already holds is restored at boot (corrupt files degrade
        to a cold start with a WARN); a background thread then re-snapshots
        every ``snapshot_interval`` seconds, plus once on :meth:`close`.
    snapshot_interval:
        Seconds between background snapshots (non-positive disables the
        thread; :meth:`snapshot` still works on demand).
    """

    def __init__(
        self,
        database: Database,
        total_epsilon: float,
        default_policy: Optional[PolicyGraph] = None,
        plan_cache_size: int = 64,
        enable_answer_cache: bool = True,
        answer_cache_size: int = 1024,
        prefer_data_dependent: bool = True,
        consistency: bool = True,
        random_state: RandomState = None,
        enable_sharding: bool = True,
        shard_plan_cache_size: int = 16,
        execute_workers: Optional[int] = None,
        execute_backend: str = "thread",
        process_start_method: str = "spawn",
        execute_cost_model: Optional["ExecuteCostModel"] = None,
        execute_fusion: bool = True,
        serialize_flush: bool = False,
        observability: Optional[Observability] = None,
        durable_ledger: Optional[str] = None,
        snapshot_dir: Optional[str] = None,
        snapshot_interval: float = 30.0,
    ) -> None:
        self._database = database
        obs = observability if observability is not None else Observability(enabled=False)
        self._observability = obs
        self._audit = obs.audit
        self._accountant = PrivacyAccountant(total_epsilon, audit=obs.audit)
        self._default_policy = default_policy
        if default_policy is not None and default_policy.domain != database.domain:
            raise PolicyError(
                f"Default policy domain {default_policy.domain} does not match the "
                f"database domain {database.domain}"
            )
        self._prefer_data_dependent = bool(prefer_data_dependent)
        self._consistency = bool(consistency)
        # Caches mirror their hit/miss tallies into the registry only when
        # the hub is enabled — their own CacheStats always count regardless.
        cache_metrics = obs.metrics if obs.enabled else None
        self.plan_cache = PlanCache(maxsize=plan_cache_size, metrics=cache_metrics)
        self.answer_cache: Optional[AnswerCache] = (
            AnswerCache(maxsize=answer_cache_size, metrics=cache_metrics)
            if enable_answer_cache
            else None
        )
        self._rng = ensure_rng(random_state)
        # Locking discipline (narrow, never nested around mechanism work):
        #   _queue_lock  — pending queue, session registry, rng derivation;
        #   metrics.lock — every serving counter and histogram (the registry
        #                  replaced the former dedicated stats lock);
        #   accountant.lock — every budget ledger (shared with its scopes);
        #   _serial_lock — only taken when serialize_flush=True.
        self._queue_lock = threading.Lock()
        self._serial_lock = threading.Lock()
        self._serialize_flush = bool(serialize_flush)
        self._sessions: Dict[str, ClientSession] = {}
        self._pending: List[QueryTicket] = []
        self._ticket_ids = itertools.count(1)
        self._draw_ids = itertools.count(1)
        # Serving counters are registry instruments, pre-bound here so hot
        # paths never re-ask the registry.  The pipeline increments the
        # _c_* / _h_* attributes directly.
        metrics = obs.metrics
        self._c_submitted = metrics.counter(
            "engine_queries_submitted_total", "Queries accepted by submit()"
        )
        self._c_answered = metrics.counter(
            "engine_queries_answered_total", "Tickets resolved with an answer"
        )
        self._c_refused = metrics.counter(
            "engine_queries_refused_total", "Tickets resolved with a refusal"
        )
        self._c_expired = metrics.counter(
            "engine_queries_expired_total",
            "Tickets dropped before the charge stage (deadline passed, zero epsilon)",
        )
        self._c_cancelled = metrics.counter(
            "engine_queries_cancelled_total",
            "Tickets cancelled by their client before the pipeline claimed them",
        )
        self._c_replays = metrics.counter(
            "engine_answer_cache_replays_total", "Zero-budget answer-cache replays"
        )
        self._c_top_ups = metrics.counter(
            "engine_top_ups_total", "Incremental measurements bought via top_up()"
        )
        self._c_flushes = metrics.counter(
            "engine_flushes_total", "Pipeline runs (non-empty flushes)"
        )
        self._c_batches = metrics.counter(
            "engine_batches_executed_total", "Batches that executed successfully"
        )
        self._c_sharded_batches = metrics.counter(
            "engine_sharded_batches_total", "Batches served scatter/gather"
        )
        self._c_invocations = metrics.counter(
            "engine_mechanism_invocations_total", "Vectorised mechanism invocations"
        )
        self._c_fused = metrics.counter(
            "engine_fused_units_total",
            "Work units dispatched inside fused execute groups",
        )
        self._c_stage = {
            stage: metrics.counter(
                "engine_stage_seconds_total",
                "Cumulative wall-clock per pipeline stage",
                stage=stage,
            )
            for stage in STAGES
        }
        # Distributions are enabled-only: the disabled engine never observes
        # them (the single branch per hook), so they cost nothing.
        self._h_flush = metrics.histogram(
            "engine_flush_latency_seconds", "End-to-end flush latency"
        )
        self._h_queue_wait = metrics.histogram(
            "engine_queue_wait_seconds", "Submit-to-flush-pickup wait per ticket"
        )
        self._h_stage = {
            stage: metrics.histogram(
                "engine_stage_latency_seconds",
                "Per-round pipeline stage latency",
                stage=stage,
            )
            for stage in STAGES
        }
        self._enable_sharding = bool(enable_sharding)
        self._shard_plan_cache_size = int(shard_plan_cache_size)
        # LRU-bounded like every other engine cache: each ShardSet pins
        # projected sub-databases, scatter memos and per-shard plan caches.
        self._shard_sets: "OrderedDict[str, Optional[ShardSet]]" = OrderedDict()
        self._shard_sets_maxsize = 32
        self._shard_lock = threading.Lock()
        # Cumulative plan-lookup counters of shard sets that left the LRU
        # (eviction, or replacement by a racing duplicate build) — keeps the
        # aggregated plan_hits/plan_misses monotonic across snapshots.
        self._retired_plan_hits = 0
        self._retired_plan_misses = 0
        # Per-shard plan entries loaded from a persisted store, applied when
        # the matching ShardSet is (re)built: {policy signature: {shard
        # index: [(key, entry), ...]}}.
        self._saved_shard_plans: Dict[str, Dict[int, list]] = {}
        self._pipeline = FlushPipeline(self)
        self._execute_fusion = bool(execute_fusion)
        # The factorisation store is process-global; binding is idempotent
        # per registry, so several enabled engines share one instrument set.
        if obs.enabled:
            get_factorisation_store().bind_metrics(metrics)
        self._execute_backend = create_execute_backend(
            execute_backend,
            0 if execute_workers is None else int(execute_workers),
            process_start_method=process_start_method,
            # Worker processes preload the served database through the pool
            # initializer, so it never crosses the pipe per dispatch.
            preload=(database,),
            cost_model=execute_cost_model,
            metrics=obs.metrics if obs.enabled else None,
        )
        # Final telemetry snapshot captured by close() so stats keep
        # reporting the backend's lifetime counters after shutdown.
        self._closed_backend_stats: Optional[Dict[str, object]] = None
        # Durable tier (both opt-in; the in-memory fast path above is
        # untouched when neither is configured).
        self._ledger_store: Optional[LedgerStore] = None
        self._snapshotter: Optional[Snapshotter] = None
        if durable_ledger is not None:
            self._boot_durable_ledger(durable_ledger, float(total_epsilon))
        if snapshot_dir is not None:
            self._snapshotter = Snapshotter(
                self, snapshot_dir, interval=snapshot_interval
            )
            self._snapshotter.restore()
            self._snapshotter.start()

    def _boot_durable_ledger(self, path: str, total_epsilon: float) -> None:
        """Open (or recover) the write-ahead ε-ledger and bind it.

        A fresh store is stamped with the engine's budget and attached to
        the accountant built above.  An existing store *replaces* that
        accountant with the recovered one — every journalled charge
        replayed, every still-open ``session:`` scope rebuilt as a
        :class:`ClientSession` — so the relaunched engine refuses queries
        against budget the previous process already spent.
        """
        store = LedgerStore(path)
        try:
            stored_total = store.total_epsilon()
            if stored_total is None:
                store.initialise(total_epsilon)
                store.bind(self._accountant)
            else:
                if float(stored_total) != total_epsilon:
                    raise DurabilityError(
                        f"Ledger store {path!r} journals total_epsilon="
                        f"{stored_total}, but the engine was constructed "
                        f"with {total_epsilon}; recovery refuses to guess "
                        "which budget is authoritative"
                    )
                state = store.recover(audit=self._audit)
                self._accountant = state.accountant
                prefix = "session:"
                for scope in state.scopes:
                    if not scope.label.startswith(prefix):
                        continue
                    client_id = scope.label[len(prefix):]
                    self._sessions[client_id] = ClientSession(
                        client_id, scope.accountant, recovered=True
                    )
                logger.info(
                    "recovered durable ledger %s: ε spent %.6g of %.6g, "
                    "%d open session(s) rebuilt",
                    path,
                    self._accountant.spent(),
                    total_epsilon,
                    len(self._sessions),
                )
        except BaseException:
            store.close()
            raise
        self._ledger_store = store

    # --------------------------------------------------------------- sessions
    @property
    def database(self) -> Database:
        """The served database."""
        return self._database

    @property
    def accountant(self) -> PrivacyAccountant:
        """The engine-wide accountant that session allotments are reserved from."""
        return self._accountant

    @property
    def observability(self) -> Observability:
        """The observability hub (metrics registry, tracer, ε-audit stream)."""
        return self._observability

    @property
    def ledger_store(self) -> Optional[LedgerStore]:
        """The bound write-ahead ε-ledger, or ``None`` for in-memory engines."""
        return self._ledger_store

    @property
    def snapshotter(self) -> Optional[Snapshotter]:
        """The background snapshotter, or ``None`` when not configured."""
        return self._snapshotter

    def snapshot(self) -> Tuple[int, int]:
        """Take one crash-consistent snapshot now; returns (plans, answers).

        Requires the engine to be built with ``snapshot_dir=``.
        """
        if self._snapshotter is None:
            raise DurabilityError(
                "snapshot() needs an engine built with snapshot_dir="
            )
        return self._snapshotter.snapshot()

    def open_session(self, client_id: str, epsilon_allotment: float) -> ClientSession:
        """Open a budgeted session; the allotment is reserved immediately.

        Raises
        ------
        PrivacyBudgetError
            When the reservation would exceed the engine's remaining global
            budget, or a session with this id is already open.
        """
        client_id = str(client_id)
        with self._queue_lock:
            existing = self._sessions.get(client_id)
            if existing is not None and not existing.closed:
                raise PrivacyBudgetError(f"Session {client_id!r} is already open")
            scope = self._accountant.open_scope(
                f"session:{client_id}", epsilon_allotment
            )
            session = ClientSession(client_id, scope)
            self._sessions[client_id] = session
            return session

    def session(self, client_id: str) -> ClientSession:
        """Look up an open session by client id."""
        session = self._sessions.get(str(client_id))
        if session is None:
            raise PolicyError(f"No session open for client {client_id!r}")
        return session

    def sessions(self) -> List[ClientSession]:
        """Snapshot of every session this engine has opened (open or closed).

        Taken under the queue lock so a concurrent ``open_session`` cannot
        tear the listing; the serving tier's client-listing endpoint pages
        over it.
        """
        with self._queue_lock:
            return list(self._sessions.values())

    def close_session(self, client_id: str) -> float:
        """Close a session, refunding its unspent allotment to the global budget."""
        return self.session(client_id).close()

    # ---------------------------------------------------------------- queries
    def submit(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph] = None,
        partition: Optional[Sequence] = None,
        deadline: Optional[float] = None,
    ) -> QueryTicket:
        """Queue a query for the next :meth:`flush`; returns its ticket.

        Submission performs validation only — budget is charged when the
        batch executes, and answer-cache replays are never charged at all.

        ``deadline``, when given, is an **absolute** ``time.monotonic()``
        instant.  A ticket whose deadline passes before the pipeline's
        charge stage is dropped with terminal status ``"expired"`` and
        **zero ε spent** — the client lost an answer, never budget.  An
        already-expired deadline is rejected at submit (nothing is queued).

        ``partition``, when given, must be a collection of **domain cell
        indices** covering every cell the workload touches; queries over
        disjoint partitions then compose in parallel within a session.  The
        engine verifies the coverage claim at submit.  At execution time the
        discount additionally requires the release to be a function of the
        declared partition alone: on the unsharded path that means a data
        *independent* plan (a data-dependent mechanism reads the whole
        histogram), while on the sharded path even data-dependent plans
        qualify — each per-shard invocation reads one component's cells only,
        and an edge-closed partition is a union of components.
        """
        resolved_policy, frozen_partition = self._validate_submission(
            client_id, workload, epsilon, policy, partition
        )
        if deadline is not None:
            deadline = float(deadline)
            if not math.isfinite(deadline):
                raise MechanismError(
                    f"Query deadline must be a finite monotonic instant, "
                    f"got {deadline}"
                )
        with self._queue_lock:
            session = self.session(client_id)
            if session.closed:
                raise PrivacyBudgetError(f"Session {client_id!r} is closed")
            ticket = QueryTicket(
                ticket_id=next(self._ticket_ids),
                client_id=session.client_id,
                workload=workload,
                policy=resolved_policy,
                epsilon=float(epsilon),
                session=session,
                partition=frozen_partition,
                # The queue-wait histogram needs a pickup-relative clock;
                # unstamped tickets (disabled hub) read 0.0 and are skipped.
                submitted_at=(
                    time.perf_counter() if self._observability.enabled else 0.0
                ),
                deadline=deadline,
                # Stamped so cancel() can count itself without an engine ref.
                _cancel_counter=self._c_cancelled,
            )
            if ticket.expired():
                # Born dead: resolve immediately without ever queueing it,
                # so the flush path cannot charge it even in principle.
                ticket._claim()
                self._pipeline._resolve_expired(ticket)
            else:
                self._pending.append(ticket)
        self._c_submitted.inc()
        return ticket

    def _validate_submission(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph],
        partition: Optional[Sequence],
    ) -> tuple:
        """Validate a submission outside the queue lock (pure checks only)."""
        session = self.session(client_id)
        if session.closed:
            raise PrivacyBudgetError(f"Session {client_id!r} is closed")
        resolved_policy = policy if policy is not None else self._default_policy
        if resolved_policy is None:
            raise PolicyError("No policy given and the engine has no default policy")
        if workload.domain != self._database.domain:
            raise PolicyError(
                f"Workload domain {workload.domain} does not match the database "
                f"domain {self._database.domain}"
            )
        if resolved_policy.domain != self._database.domain:
            raise PolicyError(
                f"Policy domain {resolved_policy.domain} does not match the database "
                f"domain {self._database.domain}"
            )
        if not math.isfinite(epsilon) or epsilon <= 0:
            raise PrivacyBudgetError(
                f"Query epsilon must be positive and finite, got {epsilon}"
            )
        frozen_partition: Optional[frozenset] = None
        if partition is not None:
            try:
                frozen_partition = frozenset(int(cell) for cell in partition)
            except (TypeError, ValueError) as exc:
                raise PolicyError(
                    "Engine partitions must be collections of domain cell indices"
                ) from exc
            touched = {int(c) for c in workload.touched_columns()}
            uncovered = touched - frozen_partition
            if uncovered:
                raise PrivacyBudgetError(
                    f"Query claims partition of {len(frozen_partition)} cells but "
                    f"touches {len(uncovered)} cells outside it (e.g. "
                    f"{sorted(uncovered)[:5]}); the parallel-composition discount "
                    "only applies to queries confined to their declared partition"
                )
            # Parallel composition further requires the partition to be closed
            # under the policy's edges: a record moving across a crossing edge
            # would change this query's answer AND a query outside the
            # partition, so "disjoint" partitions would not actually isolate
            # the releases.  This mirrors the paper's disjoint *edge groups*,
            # and makes every valid partition a union of connected policy
            # components (which the sharded execution path relies on).
            crossing = [
                (u, v)
                for u, v in resolved_policy.edges
                if not is_bottom(u)
                and not is_bottom(v)
                and (int(u) in frozen_partition) != (int(v) in frozen_partition)
            ]
            if crossing:
                raise PrivacyBudgetError(
                    f"Partition is not closed under the policy: {len(crossing)} "
                    f"policy edges cross its boundary (e.g. {crossing[:3]}); "
                    "parallel composition requires partitions aligned with "
                    "disjoint groups of policy edges"
                )
        return resolved_policy, frozen_partition

    @property
    def pending_count(self) -> int:
        """Number of queries waiting for the next flush."""
        return len(self._pending)

    def flush(self, random_state: RandomState = None) -> List[QueryTicket]:
        """Execute all pending queries and return their (resolved) tickets.

        Cache replays are answered first at zero budget, and identical
        queries submitted within the same flush are deduplicated — one ticket
        pays, the duplicates replay its answer for free.  Both behaviours are
        part of the replay semantics controlled by ``enable_answer_cache``:
        with the cache disabled, every ask is deliberately an independent,
        individually paid release (e.g. for averaging repeated noisy draws).
        The remaining queries are grouped by ``(policy, epsilon,
        planner-config)`` and each group is answered by **one** vectorised
        mechanism invocation — or one invocation per touched shard on the
        scatter/gather path; every member session is charged its query's
        epsilon (refusals resolve the ticket with an error instead of
        raising, so one exhausted client cannot block the batch).

        Thread safety: any number of threads may call ``flush`` concurrently.
        Each call drains the queue atomically and drives its own pipeline
        run; budget ledgers, caches and counters are internally locked.  Two
        racing flushes may both pay for the same brand-new query (a
        cache-miss race) — that wastes budget, never privacy.
        """
        with self._queue_lock:
            tickets, self._pending = self._pending, []
            if not tickets:
                # Empty flushes are common under the batched front-end (a
                # racing size-trigger drained the queue first); don't burn a
                # child stream on them.
                return tickets
            if random_state is None:
                # Concurrent flushes must not share the engine generator:
                # derive an independent child stream per flush (deterministic
                # for seeded engines).  An explicit random_state bypasses the
                # derivation so single-flush tests stay exactly reproducible.
                rng = self._spawn_flush_rng()
            else:
                rng = ensure_rng(random_state)
        if self._serialize_flush:
            with self._serial_lock:
                self._pipeline.run(tickets, rng)
        else:
            self._pipeline.run(tickets, rng)
        return tickets

    def ask(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph] = None,
        partition: Optional[Sequence] = None,
        random_state: RandomState = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Submit one query and execute it immediately (submit + flush).

        Other queued queries are flushed alongside it, preserving batching.

        ``deadline`` (absolute ``time.monotonic()``) forwards to
        :meth:`submit`: a ticket that expires before the charge stage
        resolves to ``"expired"`` with zero ε spent, and this call raises
        :class:`~repro.exceptions.DeadlineExpiredError` from ``result()``.

        When a concurrent flush races this one and drains the queue first,
        the ticket is resolved by *that* flush and this call waits for it.
        ``timeout`` bounds that wait in seconds (``None`` waits forever, the
        pre-PR 9 behaviour); on expiry an
        :class:`~repro.exceptions.AskTimeoutError` carrying the still-pending
        ticket is raised — the ticket stays owned by whichever flush picked
        it up and resolves normally, so ``exc.ticket`` can be re-polled.
        """
        ticket = self.submit(
            client_id,
            workload,
            epsilon,
            policy=policy,
            partition=partition,
            deadline=deadline,
        )
        self.flush(random_state=random_state)
        if not ticket.done():  # resolved by a concurrent flush that raced the queue
            if not ticket.wait(timeout):
                raise AskTimeoutError(ticket, timeout)
        return ticket.result()

    # ------------------------------------------------------------ consistency
    def consolidate(
        self, policy: Optional[PolicyGraph] = None, method: str = "gls"
    ) -> int:
        """Least-squares-reconcile all cached answers under ``policy`` for free.

        ``method="gls"`` (default) solves the draw-aware generalised least
        squares over the cached measurements' covariance structure;
        ``method="wls"`` restores the legacy independence-assuming weighted
        solve (the benchmark baseline).  Returns the number of live cached
        answer vectors updated; see
        :meth:`repro.engine.AnswerCache.consolidate`.
        """
        if self.answer_cache is None:
            return 0
        resolved = policy if policy is not None else self._default_policy
        if resolved is None:
            raise PolicyError("No policy given and the engine has no default policy")
        return self.answer_cache.consolidate(resolved, method=method)

    def top_up(
        self,
        client_id: str,
        workload: Workload,
        extra_epsilon: float,
        policy: Optional[PolicyGraph] = None,
        epsilon: Optional[float] = None,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Spend a little more on an already-cached workload, GLS-combining.

        Buys one fresh measurement of ``workload`` at ``extra_epsilon`` (a
        single unsharded mechanism invocation on the engine's execute
        backend) and combines it with the cached measurement(s) by
        generalised least squares under the honest noise models — the cached
        answer gets sharper while the session is charged **exactly the
        increment**, never the full re-buy price.  Replays of the workload
        keep hitting the same cache key and serve the upgraded vector.

        ``epsilon`` names the ε the workload was originally asked at; omit
        it when only one cached entry exists for the (policy, workload)
        pair.  A mid-top-up mechanism failure rolls the charge back — the
        ledger never leaks budget for a release that did not happen.

        Returns a copy of the upgraded answer vector.

        Raises
        ------
        MechanismError
            When the answer cache is disabled, no (or several) cached
            entries match, or the fresh measurement fails.
        PrivacyBudgetError
            When the session cannot afford ``extra_epsilon``.
        """
        if self.answer_cache is None:
            raise MechanismError(
                "top_up requires the answer cache (enable_answer_cache=True): "
                "there is no cached measurement to combine with"
            )
        if not math.isfinite(extra_epsilon) or extra_epsilon <= 0:
            raise PrivacyBudgetError(
                f"top_up epsilon must be positive and finite, got {extra_epsilon}"
            )
        resolved_policy, _ = self._validate_submission(
            client_id, workload, extra_epsilon, policy, None
        )
        if epsilon is not None:
            entry = self.answer_cache.peek(resolved_policy, workload, epsilon)
            if entry is None:
                raise MechanismError(
                    f"No cached measurement of this workload at epsilon={epsilon}; "
                    "pay for it first (ask/submit), then top it up"
                )
        else:
            candidates = self.answer_cache.find(resolved_policy, workload)
            if not candidates:
                raise MechanismError(
                    "No cached measurement of this workload under this policy; "
                    "pay for it first (ask/submit), then top it up"
                )
            if len(candidates) > 1:
                raise MechanismError(
                    f"{len(candidates)} cached entries match this workload (bought "
                    "at different epsilons); pass epsilon= to name the one to top up"
                )
            entry = candidates[0]

        # Plan before charging: a planning failure must charge nothing.
        plan = self.plan_cache.plan_for(
            resolved_policy,
            float(extra_epsilon),
            prefer_data_dependent=self._prefer_data_dependent,
            consistency=self._consistency,
        )
        with self._queue_lock:
            session = self.session(client_id)
            rng = (
                self._spawn_flush_rng()
                if random_state is None
                else ensure_rng(random_state)
            )
        label = f"top-up:{client_id}:{entry.key[1][:12]}"
        trace = self._observability.start_trace(
            "top_up", client=client_id, label=label
        )
        try:
            entry = self._run_top_up(
                session, entry, plan, workload, float(extra_epsilon), label, rng, trace
            )
        finally:
            if trace is not None:
                trace.finish()
        self._c_top_ups.inc()
        return entry.answers.copy()

    def _run_top_up(
        self, session, entry, plan, workload, extra_epsilon, label, rng, trace
    ):
        """Charge, execute and absorb one top-up measurement (body of
        :meth:`top_up`, factored so the trace/audit bracketing stays flat)."""
        audit = self._audit
        if audit is not None:
            # Ambient attribution: the accountant's own charge/rollback
            # events inherit these ids just like flush-path charges do.
            with audit.context(
                trace_id=trace.trace_id if trace is not None else None,
                client_id=session.client_id,
            ):
                return self._run_top_up_charged(
                    session, entry, plan, workload, extra_epsilon, label, rng, trace
                )
        return self._run_top_up_charged(
            session, entry, plan, workload, extra_epsilon, label, rng, trace
        )

    def _run_top_up_charged(
        self, session, entry, plan, workload, extra_epsilon, label, rng, trace
    ):
        operation = session.charge(label, extra_epsilon, None)
        unit = ExecuteUnit(
            plan=plan, workloads=[workload], database=self._database, rng=rng
        )
        try:
            # Shared backend semantics (crashed pool re-raises, closed
            # backend falls back inline) — see parallel.execute_unit_via.
            if trace is not None:
                with trace.span("execute", label=label):
                    vectors, model = execute_unit_via(self._execute_backend, unit)
            else:
                vectors, model = execute_unit_via(self._execute_backend, unit)
        except Exception as exc:
            # Nothing was released, so the increment must not stand.
            session.accountant.rollback(operation)
            raise MechanismError(
                f"top_up execution failed (increment rolled back): {exc}"
            ) from exc
        if model is not None and model.num_rows != workload.num_queries:
            # Mis-sized metadata is a mechanism bug, but metadata is
            # advisory (same guard as the pipeline): degrade to the proxy
            # rather than poisoning later covariance assembly.
            logger.warning(
                "top_up noise model reports %d rows but the workload has %d "
                "queries; degrading this measurement to the proxy noise model",
                model.num_rows,
                workload.num_queries,
            )
            model = None
        draw_id = self._next_draw_id()
        measurement = Measurement(
            answers=vectors[0],
            epsilon=extra_epsilon,
            draw_id=draw_id,
            noise_stds=model.stds if model is not None else None,
            noise_bases=(
                {draw_id: model.basis}
                if model is not None and model.basis is not None
                else None
            ),
        )
        entry = self.answer_cache.append_measurement(
            entry.key, workload, measurement, key_epsilon=entry.epsilon
        )
        if self._audit is not None:
            self._audit.emit(
                "top_up",
                label=label,
                epsilon=extra_epsilon,
                draws=len(entry.measurements),
            )
        return entry

    # -------------------------------------------------------------- sharding
    def _shard_set_for(self, policy: PolicyGraph) -> Optional[ShardSet]:
        """The memoised shard set for ``policy`` (``None`` when unshardable)."""
        if not self._enable_sharding:
            return None
        key = policy_signature(policy)
        with self._shard_lock:
            if key in self._shard_sets:
                self._shard_sets.move_to_end(key)
                return self._shard_sets[key]
        # Build outside the lock (component analysis over a large domain can
        # be slow); a racing build of the same policy is redundant, not wrong.
        shard_set = ShardSet.build(
            policy, self._database, plan_cache_size=self._shard_plan_cache_size
        )
        with self._shard_lock:
            previous = self._shard_sets.get(key)
            if previous is not None:
                # A racing build published first: adopt it — its per-shard
                # caches may already be warm, and its lookup counters stay
                # continuously aggregated.  Builds are deterministic, so the
                # sets are interchangeable and ours is simply discarded.
                self._shard_sets.move_to_end(key)
                return previous
            self._shard_sets[key] = shard_set
            self._shard_sets.move_to_end(key)
            while len(self._shard_sets) > self._shard_sets_maxsize:
                _, victim = self._shard_sets.popitem(last=False)
                self._retire_shard_set(victim)
            # The saved-plans read happens in the SAME critical section as
            # the publish: a load_plans() racing this build either updated
            # _saved_shard_plans before it (we see the entries here) or
            # snapshots _shard_sets after it (it hydrates the published
            # set).  Either way the persisted plans apply; hydration is
            # idempotent, so both happening is fine.
            saved = (
                self._saved_shard_plans.get(key) if shard_set is not None else None
            )
        if saved:
            # Warm-start: a persisted store carried per-shard plans for this
            # policy; shards are deterministic given (policy, database), so
            # index-aligned absorption is exact.
            self._hydrate_shard_set(shard_set, saved)
        return shard_set

    def shard_count(self, policy: Optional[PolicyGraph] = None) -> int:
        """Number of domain shards the engine would scatter this policy over.

        Returns 0 when the policy is served unsharded (connected policy,
        sharding disabled, or a component without edges).
        """
        resolved = policy if policy is not None else self._default_policy
        if resolved is None:
            raise PolicyError("No policy given and the engine has no default policy")
        shard_set = self._shard_set_for(resolved)
        return len(shard_set) if shard_set is not None else 0

    def _retire_shard_set(self, shard_set: Optional[ShardSet]) -> None:
        """Fold a departing shard set's lookup counters into the retired
        totals (caller must hold ``_shard_lock``)."""
        if shard_set is None:
            return
        for shard in shard_set.shards:
            self._retired_plan_hits += shard.plan_cache.stats.hits
            self._retired_plan_misses += shard.plan_cache.stats.misses

    @staticmethod
    def _hydrate_shard_set(
        shard_set: ShardSet, per_shard: Dict[int, list]
    ) -> int:
        """Absorb persisted per-shard plan entries into a shard set's caches."""
        absorbed = 0
        for shard in shard_set.shards:
            entries = per_shard.get(shard.index)
            if entries:
                absorbed += shard.plan_cache.absorb(entries)
        return absorbed

    # ------------------------------------------------------------ persistence
    def save_plans(self, path: str, prune: bool = False) -> int:
        """Persist every cached plan — engine-level and per-shard — to ``path``.

        The store is the serialisation layer's on-disk face: a restarted
        server that :meth:`load_plans` the file serves the same workload with
        **zero** cold plans (``stats.plan_cache_hit_rate == 1.0``).  Entries
        are keyed by content signatures, so loading a store against a
        different policy/workload mix is harmless — mismatched entries simply
        never hit.  Stores are pickles: load only stores this deployment
        wrote itself (see :func:`~repro.engine.plan_cache.read_plan_store`).
        Returns the number of entries written.

        ``prune=True`` writes only plans present in a **live** cache — the
        engine-level cache and the per-shard caches of currently built shard
        sets.  Staged entries (loaded from an earlier store but never
        queried since, or stranded when their shard set was LRU-evicted)
        are dropped from the written store, so a long-running server's
        periodic snapshots track what it actually serves instead of
        accreting every plan it ever loaded.  The in-memory staging is left
        untouched — plans it holds still hydrate shard sets built later.
        The default (``prune=False``) keeps the conservative semantics: a
        load→save cycle never shrinks the store.
        """
        with self._shard_lock:
            shard_sets = {
                key: shard_set
                for key, shard_set in self._shard_sets.items()
                if shard_set is not None
            }
            # Staged entries (loaded from a store but whose policy was never
            # queried, or whose shard set was LRU-evicted) carry through to
            # the new store — unless this save prunes to live caches only.
            shard_entries: Dict[str, Dict[int, List[Tuple[PlanKey, CachedPlan]]]] = (
                {}
                if prune
                else {
                    key: {
                        index: list(entries) for index, entries in per_shard.items()
                    }
                    for key, per_shard in self._saved_shard_plans.items()
                }
            )
        for key, shard_set in shard_sets.items():
            for shard in shard_set.shards:
                live = shard.plan_cache.export_entries()
                if not live:
                    continue
                # Merge live entries with staged ones per shard index: live
                # plans are fresher, but staged plans that the small live
                # cache LRU-evicted must still reach the store.
                staged = shard_entries.setdefault(key, {}).get(shard.index, [])
                live_keys = {plan_key for plan_key, _ in live}
                shard_entries[key][shard.index] = live + [
                    (plan_key, entry)
                    for plan_key, entry in staged
                    if plan_key not in live_keys
                ]
        entries = self.plan_cache.export_entries()
        payload = {
            "format": PLAN_STORE_FORMAT,
            "entries": entries,
            "shard_entries": shard_entries,
        }
        write_plan_store(path, payload)
        return len(entries) + sum(
            len(per) for shard in shard_entries.values() for per in shard.values()
        )

    def load_plans(self, path: str, on_corrupt: str = "raise") -> int:
        """Load a persisted plan store; returns the number of entries loaded.

        Engine-level entries go straight into :attr:`plan_cache`; per-shard
        entries hydrate already-built shard sets immediately and are kept
        around to hydrate shard sets built later (shard sets are constructed
        lazily, per policy) — staged entries count toward the return value,
        since they will serve as soon as their policy is first queried.

        A truncated/corrupt file or a format-version mismatch raises the
        versioned :class:`~repro.exceptions.PlanStoreError` (a
        :class:`~repro.exceptions.MechanismError`), never a raw unpickling
        exception.  With ``on_corrupt="cold"`` the engine instead degrades
        to a cold start — WARN log, return 0, every plan re-planned on
        first use — the right policy for boot-time restores, where a
        half-written snapshot must not keep the server down.  A *missing*
        file still raises either way (a wrong path is a configuration
        error, not corruption).
        """
        if on_corrupt not in ("raise", "cold"):
            raise ValueError(
                f"on_corrupt must be 'raise' or 'cold', got {on_corrupt!r}"
            )
        try:
            payload = read_plan_store(path)
        except PlanStoreError as exc:
            if on_corrupt == "raise":
                raise
            logger.warning(
                "plan store %s unusable (%s); degrading to cold start — "
                "plans will be re-planned on first use",
                path,
                exc,
            )
            return 0
        loaded = self.plan_cache.absorb(payload["entries"])
        shard_entries = payload.get("shard_entries", {})
        with self._shard_lock:
            built = {
                key: shard_set
                for key, shard_set in self._shard_sets.items()
                if shard_set is not None and key in shard_entries
            }
            # Actual-inserted semantics throughout: built shard sets count
            # what absorb() below really inserts; unbuilt policies count
            # entries not already staged.  Re-loading the same store (or a
            # store this engine just saved) is a no-op and returns 0.
            # Staging merges per shard index — a second store for the same
            # policy adds to the staged plans instead of replacing them.
            for key, per_shard in shard_entries.items():
                staged_policy = self._saved_shard_plans.setdefault(key, {})
                for index, entries in per_shard.items():
                    staged = staged_policy.setdefault(index, [])
                    known = {plan_key for plan_key, _ in staged}
                    fresh = [
                        (plan_key, entry)
                        for plan_key, entry in entries
                        if plan_key not in known
                    ]
                    staged.extend(fresh)
                    if key not in built:
                        loaded += len(fresh)
        for key, shard_set in built.items():
            loaded += self._hydrate_shard_set(shard_set, shard_entries[key])
        return loaded

    # ------------------------------------------------------------------ stats
    @property
    def stats(self) -> EngineStats:
        """A consistent snapshot of the engine's serving counters.

        Derived from the observability registry under its (re-entrant) lock,
        so every field is read from the same instant — the guarantee the old
        dedicated stats lock gave, now shared with the metric exporters.
        """
        with self._observability.metrics.lock:
            snapshot = EngineStats(
                queries_submitted=int(self._c_submitted.value),
                queries_answered=int(self._c_answered.value),
                queries_refused=int(self._c_refused.value),
                queries_expired=int(self._c_expired.value),
                queries_cancelled=int(self._c_cancelled.value),
                answer_cache_replays=int(self._c_replays.value),
                top_ups=int(self._c_top_ups.value),
                flushes=int(self._c_flushes.value),
                batches_executed=int(self._c_batches.value),
                sharded_batches=int(self._c_sharded_batches.value),
                mechanism_invocations=int(self._c_invocations.value),
                fused_units=int(self._c_fused.value),
                plan_seconds=self._c_stage["plan"].value,
                charge_seconds=self._c_stage["charge"].value,
                execute_seconds=self._c_stage["execute"].value,
                resolve_seconds=self._c_stage["resolve"].value,
            )
        backend = self._execute_backend
        if backend is not None:
            telemetry = self._backend_telemetry(backend)
        else:
            # Closed engines flush inline from here on, but the lifetime
            # telemetry of the backend that served must not read as zeros.
            telemetry = self._closed_backend_stats
        if telemetry is not None:
            for field_name, value in telemetry.items():
                setattr(snapshot, field_name, value)
        # Plan lookups happen in the engine-level cache AND the per-shard
        # caches (sharded policies plan exclusively through the latter), so
        # the warm-start gauge aggregates both — a cold sharded server must
        # not report zero misses, and a warm one must reach hit rate 1.0.
        snapshot.plan_hits = self.plan_cache.stats.hits
        snapshot.plan_misses = self.plan_cache.stats.misses
        with self._shard_lock:
            live_shard_sets = [
                shard_set
                for shard_set in self._shard_sets.values()
                if shard_set is not None
            ]
            snapshot.plan_hits += self._retired_plan_hits
            snapshot.plan_misses += self._retired_plan_misses
        for shard_set in live_shard_sets:
            for shard in shard_set.shards:
                snapshot.plan_hits += shard.plan_cache.stats.hits
                snapshot.plan_misses += shard.plan_cache.stats.misses
        snapshot.answer_hits = self.answer_cache.stats.hits if self.answer_cache else 0
        snapshot.answer_misses = (
            self.answer_cache.stats.misses if self.answer_cache else 0
        )
        # Factorisation-store telemetry is process-wide by design (the store
        # is what lets sibling engines and per-shard caches share Gram work).
        factorisation = get_factorisation_store().stats()
        snapshot.factorisation_hits = factorisation.hits
        snapshot.factorisation_misses = factorisation.misses
        snapshot.factorisation_entries = factorisation.entries
        snapshot.factorisation_build_seconds = factorisation.build_seconds
        snapshot.epsilon_spent = self._accountant.spent()
        snapshot.epsilon_remaining = self._accountant.remaining()
        snapshot.open_sessions = sum(
            1 for s in list(self._sessions.values()) if not s.closed
        )
        return snapshot

    @staticmethod
    def _backend_telemetry(backend) -> Dict[str, object]:
        """One backend's lifetime counters, keyed by their stats field names.

        Every backend exposes ``name``/``dispatches``/``serialization_seconds``;
        the blob-protocol and adaptive-routing counters exist only on the
        backends that pay those costs, so absent attributes honestly read 0.
        """
        return {
            "execute_backend": backend.name,
            "worker_dispatches": backend.dispatches,
            "serialization_seconds": backend.serialization_seconds,
            "bytes_shipped": getattr(backend, "bytes_shipped", 0),
            "blob_cache_misses": getattr(backend, "blob_cache_misses", 0),
            "adaptive_inline": getattr(backend, "adaptive_inline", 0),
            "adaptive_dispatched": getattr(backend, "adaptive_dispatched", 0),
            "pool_respawns": getattr(backend, "pool_respawns", 0),
        }

    def _record_stage_timings(self, timings: Dict[str, float]) -> None:
        """Accumulate one pipeline round's stage wall-clock into the totals."""
        enabled = self._observability.enabled
        for stage, seconds in timings.items():
            self._c_stage[stage].inc(seconds)
            if enabled:
                self._h_stage[stage].observe(seconds)

    def _next_draw_id(self) -> int:
        """Fresh identifier for one mechanism-invocation noise draw."""
        return next(self._draw_ids)

    def _advance_draw_ids(self, minimum: int) -> None:
        """Ensure future draw ids start at ``minimum`` or later.

        Restoring persisted answers re-seats measurements that carry draw
        ids from the previous process; a counter restarted at 1 would hand
        those same ids to fresh draws, and the resolve stage's shared-draw
        bookkeeping (GLS consolidation) would treat independent noise as
        correlated.  Draw ids only ever need to be unique, so skipping
        ahead is always safe.
        """
        with self._queue_lock:
            current = next(self._draw_ids)
            self._draw_ids = itertools.count(max(current, int(minimum)))

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release engine resources (the execute backend, when present).

        Worker threads and processes are not reclaimed by garbage
        collection, so engines built with ``execute_workers=`` should be
        closed (or used as context managers) when discarded.  Sessions,
        caches and the accountant are plain objects and need no teardown;
        the engine remains usable for session bookkeeping after ``close``,
        but flushes fall back to inline execution.  The observability hub's
        audit file handle is closed too (the in-memory mirror, metrics and
        completed traces stay readable).  The durable tier is shut down
        last: the snapshotter takes one final snapshot, and the ledger
        store's connection closes — its WAL already holds every charge, so
        ``close`` adds no privacy state, it only releases handles.
        """
        snapshotter, self._snapshotter = self._snapshotter, None
        if snapshotter is not None:
            snapshotter.stop(final_snapshot=True)
        backend, self._execute_backend = self._execute_backend, None
        if backend is not None:
            # Provisional snapshot first (stats readers racing the shutdown
            # must never see zeros), final snapshot after the drain — an
            # in-flight dispatch can still bump the protocol counters while
            # close(wait=True) waits for it.
            self._closed_backend_stats = self._backend_telemetry(backend)
            backend.close(wait=True)
            self._closed_backend_stats = self._backend_telemetry(backend)
        self._observability.close()
        store, self._ledger_store = self._ledger_store, None
        if store is not None:
            store.close()

    def __enter__(self) -> "PrivateQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        backend = getattr(self, "_execute_backend", None)
        if backend is not None:
            backend.close(wait=False)

    def _spawn_flush_rng(self) -> np.random.Generator:
        """Child generator for one flush (caller must hold the queue lock).

        ``Generator.spawn`` needs numpy ≥ 1.25 and a seed sequence; fall back
        to seeding from the parent's stream otherwise.
        """
        try:
            return self._rng.spawn(1)[0]
        except (AttributeError, TypeError, ValueError):
            return np.random.default_rng(int(self._rng.integers(0, 2**63)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrivateQueryEngine(domain={self._database.domain.shape}, "
            f"spent={self._accountant.spent():.6g}/{self._accountant.total_epsilon}, "
            f"sessions={len(self._sessions)})"
        )
