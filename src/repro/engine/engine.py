"""`PrivateQueryEngine` — the budget-managed, plan-cached serving front-end.

The library's mechanisms are one-shot: every call re-derives the policy
transform, re-factorises strategy matrices and spends budget with no session
state.  The engine turns them into a multi-client query-answering service by
separating the **fast answering path** from the **expensive planning path**
(the split HTAP systems make between transactional serving and analytical
maintenance):

1. **Plan cache** — planning artefacts (``PolicyTransform``, spanners,
   strategy factorisations, transformed workloads) are memoised per
   ``(domain, policy, planner-config)`` in a :class:`~repro.engine.PlanCache`,
   so repeated queries skip planning entirely.
2. **Sessions & budget** — each client holds a
   :class:`~repro.engine.ClientSession` whose epsilon allotment is reserved
   from the engine's global :class:`~repro.accounting.PrivacyAccountant`;
   queries are charged per session and refused with a clear
   :class:`~repro.exceptions.PrivacyBudgetError` once the allotment is gone.
3. **Batch executor** — pending queries that agree on
   ``(policy, epsilon, config)`` are answered by **one** vectorised mechanism
   invocation over the stacked workload instead of N scalar runs.
4. **Noisy-answer cache** — re-asked queries replay the already-paid-for
   noisy vector at zero additional budget (post-processing closure), and
   :meth:`PrivateQueryEngine.consolidate` least-squares-reconciles all cached
   answers under a policy, again for free.

Accounting of a batch is conservative: the stacked invocation is a single
ε-release, yet every participating session is charged the full ε of its
query, so per-session budgets never undercount.
"""

from __future__ import annotations

import itertools
import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..accounting.composition import PrivacyAccountant
from ..core.database import Database
from ..core.rng import RandomState, ensure_rng
from ..core.workload import Workload
from ..exceptions import MechanismError, PolicyError, PrivacyBudgetError
from ..policy.graph import PolicyGraph, is_bottom
from .answer_cache import AnswerCache
from .plan_cache import CachedPlan, PlanCache
from .session import ClientSession
from .signature import answer_key, plan_key

PENDING = "pending"
ANSWERED = "answered"
REFUSED = "refused"


@dataclass
class QueryTicket:
    """Handle on one submitted query; resolved by :meth:`PrivateQueryEngine.flush`."""

    ticket_id: int
    client_id: str
    workload: Workload
    policy: PolicyGraph
    epsilon: float
    #: The session the query was submitted under.  Charges always go to THIS
    #: session — closing and reopening a client id between submit and flush
    #: must never bill the new session for the old session's query.
    session: ClientSession = field(repr=False, default=None)  # type: ignore[assignment]
    partition: Optional[frozenset] = None
    status: str = PENDING
    answers: Optional[np.ndarray] = None
    from_cache: bool = False
    error: Optional[str] = None

    def result(self) -> np.ndarray:
        """The noisy answers; raises when the query was refused or is pending."""
        if self.status == ANSWERED:
            assert self.answers is not None
            return self.answers
        if self.status == REFUSED:
            raise PrivacyBudgetError(self.error or "Query was refused")
        raise MechanismError(
            f"Ticket {self.ticket_id} is still pending; call PrivateQueryEngine.flush()"
        )


@dataclass
class EngineStats:
    """Aggregate serving statistics, snapshotted by :attr:`PrivateQueryEngine.stats`."""

    queries_submitted: int = 0
    queries_answered: int = 0
    queries_refused: int = 0
    answer_cache_replays: int = 0
    batches_executed: int = 0
    mechanism_invocations: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    answer_hits: int = 0
    answer_misses: int = 0
    epsilon_spent: float = 0.0
    epsilon_remaining: float = 0.0
    open_sessions: int = 0


class PrivateQueryEngine:
    """A multi-client, budget-managed Blowfish/DP query serving engine.

    Parameters
    ----------
    database:
        The private database the engine serves.  It is held by the trusted
        curator; clients only ever see noisy answers.
    total_epsilon:
        Global privacy budget across *all* sessions (sequential composition).
    default_policy:
        Policy used when a query does not name one.
    plan_cache_size:
        LRU capacity of the plan cache.
    enable_answer_cache:
        When ``True`` (default), repeated queries are replayed for free.
    answer_cache_size:
        LRU capacity of the noisy-answer cache (evicted answers must simply
        be paid for again).
    prefer_data_dependent / consistency:
        Planner configuration forwarded to
        :func:`repro.blowfish.plan_mechanism`.
    random_state:
        Seed or generator for the engine's noise stream.
    """

    def __init__(
        self,
        database: Database,
        total_epsilon: float,
        default_policy: Optional[PolicyGraph] = None,
        plan_cache_size: int = 64,
        enable_answer_cache: bool = True,
        answer_cache_size: int = 1024,
        prefer_data_dependent: bool = True,
        consistency: bool = True,
        random_state: RandomState = None,
    ) -> None:
        self._database = database
        self._accountant = PrivacyAccountant(total_epsilon)
        self._default_policy = default_policy
        if default_policy is not None and default_policy.domain != database.domain:
            raise PolicyError(
                f"Default policy domain {default_policy.domain} does not match the "
                f"database domain {database.domain}"
            )
        self._prefer_data_dependent = bool(prefer_data_dependent)
        self._consistency = bool(consistency)
        self.plan_cache = PlanCache(maxsize=plan_cache_size)
        self.answer_cache: Optional[AnswerCache] = (
            AnswerCache(maxsize=answer_cache_size) if enable_answer_cache else None
        )
        self._rng = ensure_rng(random_state)
        # Serialises every budget/queue mutation (open/submit/flush/close):
        # PrivacyAccountant.charge is check-then-append, so unsynchronised
        # concurrent flushes could overspend a session's allotment.
        self._lock = threading.RLock()
        self._sessions: Dict[str, ClientSession] = {}
        self._pending: List[QueryTicket] = []
        self._ticket_ids = itertools.count(1)
        self._submitted = 0
        self._answered = 0
        self._refused = 0
        self._replays = 0
        self._batches = 0
        self._invocations = 0

    # --------------------------------------------------------------- sessions
    @property
    def database(self) -> Database:
        """The served database."""
        return self._database

    @property
    def accountant(self) -> PrivacyAccountant:
        """The engine-wide accountant that session allotments are reserved from."""
        return self._accountant

    def open_session(self, client_id: str, epsilon_allotment: float) -> ClientSession:
        """Open a budgeted session; the allotment is reserved immediately.

        Raises
        ------
        PrivacyBudgetError
            When the reservation would exceed the engine's remaining global
            budget, or a session with this id is already open.
        """
        client_id = str(client_id)
        with self._lock:
            existing = self._sessions.get(client_id)
            if existing is not None and not existing.closed:
                raise PrivacyBudgetError(f"Session {client_id!r} is already open")
            scope = self._accountant.open_scope(
                f"session:{client_id}", epsilon_allotment
            )
            session = ClientSession(client_id, scope, lock=self._lock)
            self._sessions[client_id] = session
            return session

    def session(self, client_id: str) -> ClientSession:
        """Look up an open session by client id."""
        session = self._sessions.get(str(client_id))
        if session is None:
            raise PolicyError(f"No session open for client {client_id!r}")
        return session

    def close_session(self, client_id: str) -> float:
        """Close a session, refunding its unspent allotment to the global budget."""
        with self._lock:
            return self.session(client_id).close()

    # ---------------------------------------------------------------- queries
    def submit(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph] = None,
        partition: Optional[Sequence] = None,
    ) -> QueryTicket:
        """Queue a query for the next :meth:`flush`; returns its ticket.

        Submission performs validation only — budget is charged when the
        batch executes, and answer-cache replays are never charged at all.

        ``partition``, when given, must be a collection of **domain cell
        indices** covering every cell the workload touches; queries over
        disjoint partitions then compose in parallel within a session.  The
        engine verifies the coverage claim at submit, and at execution it
        additionally requires the planned mechanism to be data *independent*
        (a data-dependent mechanism reads the whole histogram, so the
        parallel-composition discount would be unsound) — partitioned
        queries therefore only make sense on engines configured with
        ``prefer_data_dependent=False``.
        """
        with self._lock:
            return self._submit_locked(client_id, workload, epsilon, policy, partition)

    def _submit_locked(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph],
        partition: Optional[Sequence],
    ) -> QueryTicket:
        session = self.session(client_id)
        if session.closed:
            raise PrivacyBudgetError(f"Session {client_id!r} is closed")
        resolved_policy = policy if policy is not None else self._default_policy
        if resolved_policy is None:
            raise PolicyError("No policy given and the engine has no default policy")
        if workload.domain != self._database.domain:
            raise PolicyError(
                f"Workload domain {workload.domain} does not match the database "
                f"domain {self._database.domain}"
            )
        if resolved_policy.domain != self._database.domain:
            raise PolicyError(
                f"Policy domain {resolved_policy.domain} does not match the database "
                f"domain {self._database.domain}"
            )
        if not math.isfinite(epsilon) or epsilon <= 0:
            raise PrivacyBudgetError(
                f"Query epsilon must be positive and finite, got {epsilon}"
            )
        frozen_partition: Optional[frozenset] = None
        if partition is not None:
            try:
                frozen_partition = frozenset(int(cell) for cell in partition)
            except (TypeError, ValueError) as exc:
                raise PolicyError(
                    "Engine partitions must be collections of domain cell indices"
                ) from exc
            touched = {int(c) for c in workload.touched_columns()}
            uncovered = touched - frozen_partition
            if uncovered:
                raise PrivacyBudgetError(
                    f"Query claims partition of {len(frozen_partition)} cells but "
                    f"touches {len(uncovered)} cells outside it (e.g. "
                    f"{sorted(uncovered)[:5]}); the parallel-composition discount "
                    "only applies to queries confined to their declared partition"
                )
            # Parallel composition further requires the partition to be closed
            # under the policy's edges: a record moving across a crossing edge
            # would change this query's answer AND a query outside the
            # partition, so "disjoint" partitions would not actually isolate
            # the releases.  This mirrors the paper's disjoint *edge groups*.
            crossing = [
                (u, v)
                for u, v in resolved_policy.edges
                if not is_bottom(u)
                and not is_bottom(v)
                and (int(u) in frozen_partition) != (int(v) in frozen_partition)
            ]
            if crossing:
                raise PrivacyBudgetError(
                    f"Partition is not closed under the policy: {len(crossing)} "
                    f"policy edges cross its boundary (e.g. {crossing[:3]}); "
                    "parallel composition requires partitions aligned with "
                    "disjoint groups of policy edges"
                )
        ticket = QueryTicket(
            ticket_id=next(self._ticket_ids),
            client_id=session.client_id,
            workload=workload,
            policy=resolved_policy,
            epsilon=float(epsilon),
            session=session,
            partition=frozen_partition,
        )
        self._pending.append(ticket)
        self._submitted += 1
        return ticket

    @property
    def pending_count(self) -> int:
        """Number of queries waiting for the next flush."""
        return len(self._pending)

    def flush(self, random_state: RandomState = None) -> List[QueryTicket]:
        """Execute all pending queries and return their (resolved) tickets.

        Cache replays are answered first at zero budget, and identical
        queries submitted within the same flush are deduplicated — one ticket
        pays, the duplicates replay its answer for free.  Both behaviours are
        part of the replay semantics controlled by ``enable_answer_cache``:
        with the cache disabled, every ask is deliberately an independent,
        individually paid release (e.g. for averaging repeated noisy draws).
        The remaining
        queries are grouped by ``(policy, epsilon, planner-config)`` and each
        group is answered by **one** vectorised mechanism invocation; every
        member session is charged its query's epsilon (refusals resolve the
        ticket with an error instead of raising, so one exhausted client
        cannot block the batch).
        """
        with self._lock:
            tickets, self._pending = self._pending, []
            rng = self._rng if random_state is None else ensure_rng(random_state)

            to_execute: List[QueryTicket] = []
            followers: Dict[Tuple[str, str, str], List[QueryTicket]] = {}
            seen_keys: Dict[Tuple[str, str, str], QueryTicket] = {}
            for ticket in tickets:
                if self.answer_cache is not None:
                    # Dedup identical queries *within* this flush: one ticket
                    # pays, the rest replay its answer — the same zero-budget
                    # post-processing they would get one flush later.  The
                    # duplicate check comes first so followers never register
                    # a spurious cache miss for an answer the flush will have.
                    key = answer_key(ticket.policy, ticket.workload, ticket.epsilon)
                    if key in seen_keys:
                        followers.setdefault(key, []).append(ticket)
                        continue
                    cached = self.answer_cache.lookup(
                        ticket.policy, ticket.workload, ticket.epsilon
                    )
                    if cached is not None:
                        self._resolve_replay(ticket, cached.answers)
                        continue
                    seen_keys[key] = ticket
                to_execute.append(ticket)

            groups: Dict[tuple, List[QueryTicket]] = {}
            for ticket in to_execute:
                key = plan_key(
                    ticket.policy,
                    ticket.epsilon,
                    self._prefer_data_dependent,
                    self._consistency,
                )
                groups.setdefault(key, []).append(ticket)

            for batch in groups.values():
                if self.answer_cache is None:
                    # Independent-draw semantics: identical queries stacked
                    # into one invocation would yield byte-identical rows —
                    # paid twice, worth once.  Split duplicates into separate
                    # invocations so each paid query gets its own noise draw.
                    for round_batch in self._split_duplicates(batch):
                        self._execute_batch(round_batch, rng)
                else:
                    self._execute_batch(batch, rng)

            # Resolve duplicates: replay from an answered leader for free.  A
            # refused leader must not drag its duplicates down — their own
            # sessions may have budget — so the first duplicate is promoted to
            # leader and executed; any remainder waits for the next round.
            pending_followers = followers
            while pending_followers:
                next_followers: Dict[Tuple[str, str, str], List[QueryTicket]] = {}
                retry: List[QueryTicket] = []
                for key, duplicate_tickets in pending_followers.items():
                    leader = seen_keys[key]
                    if leader.status == ANSWERED:
                        for ticket in duplicate_tickets:
                            # The replay IS a cache hit (the leader's answer
                            # was just stored), so the counters must agree
                            # with the replay counter.
                            if self.answer_cache is not None:
                                self.answer_cache.stats.hits += 1
                            self._resolve_replay(ticket, leader.answers)
                        continue
                    promoted, rest = duplicate_tickets[0], duplicate_tickets[1:]
                    seen_keys[key] = promoted
                    retry.append(promoted)
                    if rest:
                        next_followers[key] = rest
                retry_groups: Dict[tuple, List[QueryTicket]] = {}
                for ticket in retry:
                    key = plan_key(
                        ticket.policy,
                        ticket.epsilon,
                        self._prefer_data_dependent,
                        self._consistency,
                    )
                    retry_groups.setdefault(key, []).append(ticket)
                for batch in retry_groups.values():
                    self._execute_batch(batch, rng)
                pending_followers = next_followers
            return tickets

    def ask(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph] = None,
        partition: Optional[Sequence] = None,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Submit one query and execute it immediately (submit + flush).

        Other queued queries are flushed alongside it, preserving batching.
        """
        ticket = self.submit(
            client_id, workload, epsilon, policy=policy, partition=partition
        )
        self.flush(random_state=random_state)
        return ticket.result()

    # ------------------------------------------------------------ consistency
    def consolidate(self, policy: Optional[PolicyGraph] = None) -> int:
        """Least-squares-reconcile all cached answers under ``policy`` for free.

        Returns the number of cached answer vectors updated; see
        :meth:`repro.engine.AnswerCache.consolidate`.
        """
        if self.answer_cache is None:
            return 0
        resolved = policy if policy is not None else self._default_policy
        if resolved is None:
            raise PolicyError("No policy given and the engine has no default policy")
        return self.answer_cache.consolidate(resolved)

    # ------------------------------------------------------------------ stats
    @property
    def stats(self) -> EngineStats:
        """A snapshot of the engine's serving counters."""
        return EngineStats(
            queries_submitted=self._submitted,
            queries_answered=self._answered,
            queries_refused=self._refused,
            answer_cache_replays=self._replays,
            batches_executed=self._batches,
            mechanism_invocations=self._invocations,
            plan_hits=self.plan_cache.stats.hits,
            plan_misses=self.plan_cache.stats.misses,
            answer_hits=self.answer_cache.stats.hits if self.answer_cache else 0,
            answer_misses=self.answer_cache.stats.misses if self.answer_cache else 0,
            epsilon_spent=self._accountant.spent(),
            epsilon_remaining=self._accountant.remaining(),
            open_sessions=sum(1 for s in self._sessions.values() if not s.closed),
        )

    # ----------------------------------------------------------------- helper
    @staticmethod
    def _split_duplicates(batch: List[QueryTicket]) -> List[List[QueryTicket]]:
        """Partition a batch into rounds with no duplicate query per round."""
        rounds: List[List[QueryTicket]] = []
        occurrence: Dict[Tuple[str, str, str], int] = {}
        for ticket in batch:
            key = answer_key(ticket.policy, ticket.workload, ticket.epsilon)
            index = occurrence.get(key, 0)
            occurrence[key] = index + 1
            while len(rounds) <= index:
                rounds.append([])
            rounds[index].append(ticket)
        return rounds

    def _resolve_replay(self, ticket: QueryTicket, answers: np.ndarray) -> None:
        """Resolve a ticket from an already-paid-for answer vector (zero ε)."""
        ticket.answers = np.asarray(answers, dtype=np.float64).copy()
        ticket.status = ANSWERED
        ticket.from_cache = True
        ticket.session.cache_replays += 1
        ticket.session.queries_answered += 1
        self._replays += 1
        self._answered += 1

    def _execute_batch(
        self, batch: List[QueryTicket], rng: np.random.Generator
    ) -> None:
        """Plan, charge, answer and resolve one compatible group of tickets."""
        try:
            entry: CachedPlan = self.plan_cache.plan_for(
                batch[0].policy,
                batch[0].epsilon,
                prefer_data_dependent=self._prefer_data_dependent,
                consistency=self._consistency,
            )
        except Exception as exc:
            for ticket in batch:
                ticket.status = REFUSED
                ticket.error = f"Planning failed (nothing charged): {exc}"
                ticket.session.queries_refused += 1
                self._refused += 1
            return

        admitted: List[QueryTicket] = []
        charged: List[Tuple[ClientSession, object]] = []
        for ticket in batch:
            session = ticket.session
            label = f"query:{ticket.client_id}:{ticket.ticket_id}"
            # Parallel composition only applies when the release is a function
            # of the declared partition alone.  Data-dependent mechanisms
            # (DAWA) read the whole histogram, so a partitioned query must be
            # served by a data-independent plan — otherwise the discount would
            # undercount the real privacy loss.
            if ticket.partition is not None and entry.plan.algorithm.data_dependent:
                ticket.status = REFUSED
                ticket.error = (
                    f"Query {label!r} claims a partition but the planned mechanism "
                    f"({entry.plan.name!r}) is data dependent and reads the full "
                    "database; re-submit without a partition, or configure the "
                    "engine with prefer_data_dependent=False AND consistency=False "
                    "(the consistency projection also counts as data dependent)"
                )
                session.queries_refused += 1
                self._refused += 1
                continue
            try:
                session.charge(label, ticket.epsilon, ticket.partition)
            except PrivacyBudgetError as exc:
                ticket.status = REFUSED
                ticket.error = str(exc)
                self._refused += 1
                continue
            admitted.append(ticket)
            charged.append((session, session.accountant.operations[-1]))
        if not admitted:
            return

        try:
            workloads = [ticket.workload for ticket in admitted]
            if len(workloads) == 1:
                answers = [
                    entry.plan.algorithm.answer(workloads[0], self._database, rng)
                ]
            else:
                answers = entry.plan.algorithm.answer_batch(
                    workloads, self._database, rng
                )
        except Exception as exc:
            # Nothing was released, so the charges must not stand: roll back
            # every reservation of this batch and resolve its tickets instead
            # of stranding them (or the rest of the flush) behind the raise.
            for session, operation in charged:
                try:
                    session.accountant.operations.remove(operation)
                except ValueError:  # pragma: no cover - defensive
                    pass
            for ticket in admitted:
                ticket.status = REFUSED
                ticket.error = f"Batch execution failed (charge rolled back): {exc}"
                ticket.session.queries_refused += 1
                self._refused += 1
            return
        self._batches += 1
        self._invocations += 1

        for ticket, vector in zip(admitted, answers):
            ticket.answers = np.asarray(vector, dtype=np.float64)
            ticket.status = ANSWERED
            ticket.session.queries_answered += 1
            self._answered += 1
            if self.answer_cache is not None:
                self.answer_cache.store(
                    ticket.policy, ticket.workload, ticket.epsilon, ticket.answers
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PrivateQueryEngine(domain={self._database.domain.shape}, "
            f"spent={self._accountant.spent():.6g}/{self._accountant.total_epsilon}, "
            f"sessions={len(self._sessions)})"
        )
