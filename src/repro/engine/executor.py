"""`BatchingExecutor` — a concurrent, deadline-batched front-end for the engine.

The engine's batching win (one vectorised mechanism invocation per
compatible group) only materialises when queries actually share a flush.
Synchronous callers that ``submit(); flush()`` in their own threads defeat
it: every flush carries one query.  The executor restores the win under real
concurrent load by accumulating ``submit()``\\ s from any number of threads
and flushing on one of two triggers:

* **size** — the pending queue reached ``max_batch_size``.  The flush runs
  *in the submitting thread*, so under heavy load multiple flushes from
  different threads overlap — exactly the concurrency the lock-narrowed
  pipeline (:mod:`repro.engine.pipeline`) was built for.
* **deadline** — the oldest pending query waited ``max_delay`` seconds.  A
  background flusher thread catches these stragglers, bounding latency when
  traffic is light.

Blocking callers use :meth:`ask`, which submits and then waits on the
ticket's thread waiter — resolved by whichever thread's flush picks the
query up.  The size/deadline trigger *policy* lives in
:class:`~repro.engine.waiters.BatchTriggers`, shared with the asyncio
front-end (:class:`~repro.engine.serving.AsyncQueryEngine`); this class
realises it with thread primitives (a condition variable plus a daemon
flusher thread), the asyncio one with ``loop.call_later``.

The executor adds **no privacy semantics**: it only decides *when*
:meth:`PrivateQueryEngine.flush` runs.  Budget checks, replay, dedup and
parallel-composition discounts all live in the engine.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Optional, Sequence

import numpy as np

from ..core.workload import Workload
from ..exceptions import AskTimeoutError, MechanismError
from ..policy.graph import PolicyGraph
from .pipeline import QueryTicket
from .waiters import BatchTriggers

logger = logging.getLogger(__name__)


class BatchingExecutor:
    """Accumulate concurrent submissions; auto-flush on a deadline/size trigger.

    Parameters
    ----------
    engine:
        The engine to serve through.  Several executors may share one engine,
        though one is the normal deployment.
    max_batch_size:
        Pending-queue size that triggers an immediate flush in the submitting
        thread.
    max_delay:
        Upper bound (seconds) on how long a submitted query may wait before
        the background flusher picks it up.
    """

    def __init__(
        self,
        engine,
        max_batch_size: int = 32,
        max_delay: float = 0.02,
    ) -> None:
        self._engine = engine
        self._triggers = BatchTriggers(max_batch_size, max_delay)
        # Trigger counters live in the engine's metrics registry so the
        # executor's batching behaviour (how often size beats deadline, how
        # full triggered batches run) shows up next to the flush latencies.
        observability = getattr(engine, "observability", None)
        if observability is not None and observability.enabled:
            metrics = observability.metrics
            self._c_size_trigger = metrics.counter(
                "executor_flush_triggers_total",
                "Executor flushes by trigger",
                trigger="size",
            )
            self._c_deadline_trigger = metrics.counter(
                "executor_flush_triggers_total",
                "Executor flushes by trigger",
                trigger="deadline",
            )
            self._h_trigger_batch = metrics.histogram(
                "executor_trigger_batch_size",
                "Pending queue depth when a flush trigger fired",
                buckets=tuple(float(2**i) for i in range(11)),
            )
        else:
            self._c_size_trigger = None
            self._c_deadline_trigger = None
            self._h_trigger_batch = None
        self._condition = threading.Condition()
        self._deadline: Optional[float] = None
        self._closed = False
        self._drained = threading.Event()
        #: Size-trigger flushes currently running in submitter threads;
        #: close() waits for them so its drain contract covers every ticket.
        self._inflight_flushes = 0
        self._flusher = threading.Thread(
            target=self._flush_loop, name="repro-engine-flusher", daemon=True
        )
        self._flusher.start()

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Stop the background flusher and drain every queued submission.

        Deterministic teardown contract: when ``close`` returns, the deadline
        flusher has been joined, every in-flight size-trigger flush has
        completed, and every ticket this executor accepted is resolved
        (answered or refused) — a ``submit`` racing ``close`` either lands
        before the closed flag flips (its ticket is drained by an in-flight
        or the final flush) or observes the flag and raises; never a
        stranded ticket.  Concurrent ``close`` callers all block until the
        drain completed, so no caller can observe a half-closed executor.
        """
        with self._condition:
            first_closer = not self._closed
            self._closed = True
            self._condition.notify_all()
        if not first_closer:
            self._drained.wait()
            return
        try:
            self._flusher.join()
            # Size-trigger flushes run in submitter threads; wait them out
            # so "every accepted ticket is resolved" holds when we return.
            with self._condition:
                while self._inflight_flushes:
                    self._condition.wait()
            # The closed flag was set before this flush, and submits check
            # the flag atomically with their enqueue — so this final flush
            # observes every ticket that was ever accepted and not yet
            # resolved by a size-trigger or deadline flush.
            self._engine.flush()
        finally:
            self._drained.set()

    def __enter__(self) -> "BatchingExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """``True`` once :meth:`close` ran; submissions are then rejected."""
        return self._closed

    # ------------------------------------------------------------ submissions
    def submit(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph] = None,
        partition: Optional[Sequence] = None,
        deadline: Optional[float] = None,
    ) -> QueryTicket:
        """Queue a query; returns its ticket immediately.

        The ticket resolves asynchronously — wait on it (``ticket.wait()``)
        or use :meth:`ask` for a blocking round trip.  Raises once the
        executor is closed.  ``deadline`` (absolute ``time.monotonic()``)
        forwards to :meth:`PrivateQueryEngine.submit`: expired tickets are
        dropped before the charge stage at zero ε.
        """
        flush_now = False
        with self._condition:
            # The closed check and the enqueue are atomic under the condition
            # lock: a submit racing close() either lands before close drains
            # the queue (its final flush resolves the ticket) or observes
            # closed and is rejected — never a stranded ticket.
            if self._closed:
                raise MechanismError("BatchingExecutor is closed")
            ticket = self._engine.submit(
                client_id,
                workload,
                epsilon,
                policy=policy,
                partition=partition,
                deadline=deadline,
            )
            if self._deadline is None:
                self._deadline = self._triggers.deadline_from(time.monotonic())
                self._condition.notify_all()
            if self._triggers.size_reached(self._engine.pending_count):
                flush_now = True
                self._inflight_flushes += 1
                if self._c_size_trigger is not None:
                    self._c_size_trigger.inc()
                    self._h_trigger_batch.observe(self._engine.pending_count)
        if flush_now:
            # Size trigger: flush in the submitting thread.  Concurrent
            # submitters each drive their own pipeline run, overlapping
            # mechanism execution across threads.
            try:
                self._engine.flush()
            finally:
                with self._condition:
                    self._inflight_flushes -= 1
                    self._condition.notify_all()
        return ticket

    def ask(
        self,
        client_id: str,
        workload: Workload,
        epsilon: float,
        policy: Optional[PolicyGraph] = None,
        partition: Optional[Sequence] = None,
        timeout: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> np.ndarray:
        """Blocking submit: waits for whichever flush resolves the ticket.

        ``timeout`` bounds the wait in seconds; on expiry an
        :class:`~repro.exceptions.AskTimeoutError` carrying the ticket is
        raised (the ticket stays queued and will still be answered by a
        later flush — re-poll ``exc.ticket``).  ``deadline`` (absolute
        ``time.monotonic()``) instead bounds the *query*: an expired ticket
        resolves to ``"expired"`` at zero ε and ``result()`` raises
        :class:`~repro.exceptions.DeadlineExpiredError`.
        """
        ticket = self.submit(
            client_id,
            workload,
            epsilon,
            policy=policy,
            partition=partition,
            deadline=deadline,
        )
        if not ticket.wait(timeout):
            raise AskTimeoutError(ticket, timeout)
        return ticket.result()

    def flush_now(self) -> None:
        """Flush pending queries immediately, without waiting for a trigger."""
        self._engine.flush()

    # ---------------------------------------------------------------- flusher
    def _flush_loop(self) -> None:
        """Deadline watcher: flush whatever the size trigger did not take."""
        while True:
            with self._condition:
                while not self._closed and self._deadline is None:
                    self._condition.wait()
                if self._closed:
                    return
                now = time.monotonic()
                if now < self._deadline:
                    self._condition.wait(self._deadline - now)
                    continue
                # Deadline reached: clear it before flushing so submissions
                # arriving during the flush start a fresh window.
                self._deadline = None
            pending = self._engine.pending_count
            if pending:
                if self._c_deadline_trigger is not None:
                    self._c_deadline_trigger.inc()
                    self._h_trigger_batch.observe(pending)
                try:
                    self._engine.flush()
                except Exception:
                    # A failing flush must not kill the deadline watcher: the
                    # pipeline resolves per-ticket failures itself, so an
                    # exception here is unexpected (broken backend, fault
                    # injection) — and a dead flusher would strand every
                    # future light-traffic submission unresolved forever.
                    logger.warning(
                        "deadline flush failed; flusher thread stays alive",
                        exc_info=True,
                    )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchingExecutor(max_batch_size={self._triggers.max_batch_size}, "
            f"max_delay={self._triggers.max_delay}, closed={self._closed})"
        )
