"""Domain sharding by connected policy components (scatter/gather execution).

A multi-dimensional Blowfish policy often decomposes into several connected
components — the "sensitive attributes" policies of Appendix E are the
canonical example.  Component membership is disclosed *exactly* by such a
policy, and a record's component can never change across Blowfish neighbors
(neighbors move a record along policy edges, which by definition never cross
components).  Two consequences power this module:

* **Exactness** — a workload whose every query row is confined to one
  component answers identically when evaluated per component on the
  projected sub-histogram: ``W x = Σ_c W[:, cells_c] x[cells_c]`` with each
  row having exactly one non-zero term.
* **Parallel composition** — mechanisms confined to the cells of distinct
  components operate on disjoint record sets, so running one ε-mechanism per
  component releases an ε-Blowfish-private answer overall (the paper's
  disjoint-edge-groups rule).  Scatter/gather therefore costs **no extra
  privacy**: each shard runs at the query's full ε and the engine charges
  exactly what the unsharded path would — byte-identical accounting.

:class:`ShardSet` precomputes the per-component :class:`DomainShard`\\ s
(sub-domain, induced sub-policy, projected sub-database and a dedicated
per-shard :class:`~repro.engine.PlanCache`) and scatters workloads into
per-shard pieces; the flush pipeline executes the pieces and gathers the
noisy rows back into client-facing answer vectors.

Sharding also *smaller* planning problems: strategy construction and
transform factorisation scale superlinearly in the domain size, so planning
two half-size components is cheaper than planning their union — and the
per-shard plan caches keep those artefacts independently evictable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.database import Database
from ..core.domain import Domain
from ..core.workload import Workload
from ..policy.graph import BOTTOM, PolicyGraph, is_bottom
from .plan_cache import PlanCache


@dataclass(frozen=True)
class DomainShard:
    """One connected policy component, packaged for independent execution.

    Attributes
    ----------
    index:
        Position of the shard within its :class:`ShardSet`.
    label:
        The component label (from
        :meth:`~repro.policy.PolicyGraph.component_labels`) this shard owns.
    cells:
        Sorted flat cell indices of the parent domain belonging to the shard.
    domain:
        The shard's own one-dimensional domain of ``len(cells)`` cells;
        shard-local index ``j`` corresponds to parent cell ``cells[j]``.
    policy:
        The induced sub-policy over :attr:`domain` (edges relabelled to
        shard-local indices, ``⊥`` edges preserved).
    database:
        The projected sub-histogram ``counts[cells]``.
    plan_cache:
        A dedicated plan cache: shard plans are keyed per shard, so a hot
        shard never evicts a cold shard's artefacts.
    """

    index: int
    label: int
    cells: np.ndarray = field(repr=False)
    domain: Domain
    policy: PolicyGraph = field(repr=False)
    database: Database = field(repr=False)
    plan_cache: PlanCache = field(repr=False, compare=False)

    @property
    def num_cells(self) -> int:
        """Number of parent-domain cells the shard owns."""
        return int(self.cells.shape[0])


@dataclass(frozen=True)
class ShardPiece:
    """One workload's rows confined to one shard."""

    shard: DomainShard
    rows: np.ndarray = field(repr=False)
    workload: Workload = field(repr=False)


@dataclass(frozen=True)
class ShardScatter:
    """A workload scattered into per-shard pieces (ready to gather back)."""

    num_queries: int
    pieces: Tuple[ShardPiece, ...]

    def gather(self, piece_answers: Sequence[np.ndarray]) -> np.ndarray:
        """Reassemble per-piece noisy answers into the full answer vector.

        Rows never covered by any piece are all-zero queries whose exact
        answer is 0 on every histogram, so the vector starts from zeros.
        """
        answers = np.zeros(self.num_queries, dtype=np.float64)
        for piece, vector in zip(self.pieces, piece_answers):
            answers[piece.rows] = np.asarray(vector, dtype=np.float64).ravel()
        return answers


class ShardSet:
    """The per-component shards of one ``(policy, database)`` pair.

    Built lazily by the engine (one :class:`ShardSet` per distinct policy)
    and consulted on every flush: :meth:`scatter` either splits a workload
    into per-shard pieces or returns ``None``, in which case the pipeline
    falls back to the unsharded execution path for that batch.
    """

    def __init__(
        self,
        policy: PolicyGraph,
        shards: Sequence[DomainShard],
        labels: np.ndarray,
    ) -> None:
        self._policy = policy
        self._shards = list(shards)
        self._labels = labels
        self._shard_by_label: Dict[int, DomainShard] = {
            shard.label: shard for shard in self._shards
        }
        # Scatter decisions are pure functions of the workload content, and
        # the serving path re-submits equal workloads flush after flush —
        # memoise them by signature (None results included: re-deciding that
        # a spanning workload cannot scatter costs the same row scan).
        self._scatter_cache: Dict[str, Optional[ShardScatter]] = {}
        self._scatter_cache_maxsize = 256
        self._scatter_lock = threading.Lock()

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Pickle support: shards and scatter memos travel, the lock does not.

        Shard databases are small and every shard artefact (sub-policy,
        projected histogram, per-shard plan cache) pickles, which is what the
        engine's process-parallel execute backend and plan-store persistence
        rely on.
        """
        with self._scatter_lock:
            scatter_cache = dict(self._scatter_cache)
        state = self.__dict__.copy()
        state["_scatter_cache"] = scatter_cache
        del state["_scatter_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._scatter_lock = threading.Lock()

    # ------------------------------------------------------------- properties
    @property
    def policy(self) -> PolicyGraph:
        """The parent policy the shards partition."""
        return self._policy

    @property
    def shards(self) -> List[DomainShard]:
        """The shards, in component-label order."""
        return list(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    # ------------------------------------------------------------ construction
    @staticmethod
    def build(
        policy: PolicyGraph,
        database: Database,
        plan_cache_size: int = 16,
    ) -> Optional["ShardSet"]:
        """Build the shard set for ``policy``, or ``None`` when unshardable.

        Sharding requires at least two connected components (one component is
        just the unsharded path with extra bookkeeping) and every component
        must carry at least one policy edge: an edgeless singleton cell is
        fully disclosed by the policy and has no transformed coordinates, so
        batches touching it take the unsharded path where the Case II
        machinery handles it uniformly.
        """
        if policy.domain != database.domain:
            return None
        labels = policy.component_labels()
        distinct = [int(label) for label in np.unique(labels)]
        if len(distinct) < 2:
            return None
        labels_with_edges = set()
        for u, v in policy.edges:
            endpoint = v if is_bottom(u) else u
            labels_with_edges.add(int(labels[int(endpoint)]))
        if set(distinct) - labels_with_edges:
            return None

        shards: List[DomainShard] = []
        for index, label in enumerate(sorted(labels_with_edges)):
            cells = np.where(labels == label)[0].astype(np.int64)
            local = {int(cell): position for position, cell in enumerate(cells)}
            sub_domain = Domain((int(cells.shape[0]),))
            sub_edges = []
            for u, v in policy.edges:
                endpoint = v if is_bottom(u) else u
                if int(labels[int(endpoint)]) != label:
                    continue
                nu = BOTTOM if is_bottom(u) else local[int(u)]
                nv = BOTTOM if is_bottom(v) else local[int(v)]
                sub_edges.append((nu, nv))
            base_name = policy.name or "policy"
            sub_policy = PolicyGraph(
                domain=sub_domain, edges=sub_edges, name=f"{base_name}/shard{index}"
            )
            sub_database = Database(
                domain=sub_domain,
                counts=database.counts[cells],
                name=f"{database.name or 'db'}/shard{index}",
            )
            shards.append(
                DomainShard(
                    index=index,
                    label=label,
                    cells=cells,
                    domain=sub_domain,
                    policy=sub_policy,
                    database=sub_database,
                    plan_cache=PlanCache(maxsize=plan_cache_size),
                )
            )
        return ShardSet(policy=policy, shards=shards, labels=labels)

    # --------------------------------------------------------------- scatter
    def scatter(self, workload: Workload) -> Optional[ShardScatter]:
        """Split ``workload`` into per-shard pieces, or ``None`` if impossible.

        A workload scatters exactly when every query row's support lies in a
        single component (checked via
        :meth:`~repro.core.Workload.rows_by_column_label`).  Rows spanning
        two components would need cross-shard noise aggregation — a different
        error profile from the unsharded mechanism — so such workloads fall
        back to unsharded execution instead of silently changing semantics.

        Results are memoised by workload content signature (scatters are
        immutable: pieces are consumed read-only and :meth:`ShardScatter.gather`
        allocates fresh vectors), so re-served workloads skip the row scan.
        """
        key = workload.signature()
        with self._scatter_lock:
            if key in self._scatter_cache:
                return self._scatter_cache[key]
        scatter = self._scatter_uncached(workload)
        with self._scatter_lock:
            if len(self._scatter_cache) >= self._scatter_cache_maxsize:
                self._scatter_cache.clear()
            self._scatter_cache[key] = scatter
        return scatter

    def _scatter_uncached(self, workload: Workload) -> Optional[ShardScatter]:
        groups = workload.rows_by_column_label(self._labels)
        if groups is None:
            return None
        pieces: List[ShardPiece] = []
        for label in sorted(groups):
            shard = self._shard_by_label.get(int(label))
            if shard is None:  # pragma: no cover - build() guarantees coverage
                return None
            rows = np.asarray(groups[label], dtype=np.int64)
            sub_workload = workload.subset(rows.tolist()).restrict_to_columns(
                shard.cells, shard.domain, name=workload.name or "scatter"
            )
            pieces.append(ShardPiece(shard=shard, rows=rows, workload=sub_workload))
        return ShardScatter(num_queries=workload.num_queries, pieces=tuple(pieces))
