"""repro.engine — a budget-managed, plan-cached private query serving engine.

Turns the one-shot mechanisms of :mod:`repro.blowfish` into a multi-client
service: an expensive planning path (memoised in a :class:`PlanCache`), a
fast answering path (batched mechanism invocations, noisy-answer replays at
zero budget), and per-client sessions whose epsilon allotments are reserved
from a global :class:`~repro.accounting.PrivacyAccountant`.

Quick start::

    from repro import Database, Domain, identity_workload, line_policy
    from repro.engine import PrivateQueryEngine

    domain = Domain((64,))
    engine = PrivateQueryEngine(
        database, total_epsilon=4.0, default_policy=line_policy(domain)
    )
    alice = engine.open_session("alice", epsilon_allotment=1.0)
    answers = engine.ask("alice", identity_workload(domain), epsilon=0.5)
    # Re-asking is free: replayed from the noisy-answer cache.
    replay = engine.ask("alice", identity_workload(domain), epsilon=0.5)
"""

from .answer_cache import AnswerCache, AnswerCacheStats, CachedAnswer
from .engine import EngineStats, PrivateQueryEngine, QueryTicket
from .plan_cache import CachedPlan, PlanCache, PlanCacheStats
from .session import ClientSession
from .signature import (
    answer_key,
    domain_signature,
    plan_key,
    policy_signature,
    workload_signature,
)

__all__ = [
    "AnswerCache",
    "AnswerCacheStats",
    "CachedAnswer",
    "CachedPlan",
    "ClientSession",
    "EngineStats",
    "PlanCache",
    "PlanCacheStats",
    "PrivateQueryEngine",
    "QueryTicket",
    "answer_key",
    "domain_signature",
    "plan_key",
    "policy_signature",
    "workload_signature",
]
