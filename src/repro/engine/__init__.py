"""repro.engine — a budget-managed, plan-cached private query serving engine.

Turns the one-shot mechanisms of :mod:`repro.blowfish` into a multi-client
service: an expensive planning path (memoised in a :class:`PlanCache`,
persistable across restarts via ``save_plans``/``load_plans``), a fast
answering path (a staged **plan → charge → execute → resolve** flush
pipeline with lock-free planning and lock-free mechanism execution, batched
invocations, noisy-answer replays at zero budget), per-client sessions whose
epsilon allotments are reserved from a global
:class:`~repro.accounting.PrivacyAccountant`, scatter/gather execution over
per-component :class:`DomainShard`\\ s for multi-component policies (exact
under parallel composition), a multi-core execute stage
(``execute_backend="process"`` ships picklable work units to worker
processes over a **miss-only blob protocol** — steady state sends digests,
not plan/database pickles — and ``"adaptive"`` routes each unit inline /
thread / process by a measured cost model — :mod:`repro.engine.parallel`),
and a :class:`BatchingExecutor`
front-end that accumulates concurrent submissions and auto-flushes on a
deadline/size trigger.

Quick start::

    from repro import Database, Domain, identity_workload, line_policy
    from repro.engine import BatchingExecutor, PrivateQueryEngine

    domain = Domain((64,))
    engine = PrivateQueryEngine(
        database, total_epsilon=4.0, default_policy=line_policy(domain)
    )
    alice = engine.open_session("alice", epsilon_allotment=1.0)
    answers = engine.ask("alice", identity_workload(domain), epsilon=0.5)
    # Re-asking is free: replayed from the noisy-answer cache.
    replay = engine.ask("alice", identity_workload(domain), epsilon=0.5)

    # Under concurrent clients, submit through the batching front-end:
    with BatchingExecutor(engine, max_batch_size=32, max_delay=0.02) as executor:
        answers = executor.ask("alice", identity_workload(domain), epsilon=0.25)
"""

from .answer_cache import (
    AnswerCache,
    AnswerCacheStats,
    CachedAnswer,
    Measurement,
    stack_measurements,
)
from .durability import (
    CRASH_POINTS,
    SERVING_FAULT_POINTS,
    FaultInjector,
    LedgerStore,
    Snapshotter,
    recover_accountant,
)
from .engine import EngineStats, PrivateQueryEngine
from .executor import BatchingExecutor
from .factorisation import (
    FactorisationHandle,
    FactorisationStore,
    FactorisationStoreStats,
    get_store,
    matrix_digest,
    set_store,
    set_store_enabled,
    store_enabled,
)
from .observability import (
    AuditLog,
    MetricsRegistry,
    Observability,
    Span,
    Trace,
    Tracer,
)
from .parallel import (
    AdaptiveExecuteBackend,
    ExecuteCostModel,
    ExecuteUnit,
    ExecuteUnitGroup,
    ProcessExecuteBackend,
    ThreadExecuteBackend,
)
from .pipeline import (
    ANSWERED,
    CANCELLED,
    EXPIRED,
    PENDING,
    REFUSED,
    FlushPipeline,
    QueryTicket,
)
from .plan_cache import PLAN_STORE_FORMAT, CachedPlan, PlanCache, PlanCacheStats
from .session import ClientSession
from .sharding import DomainShard, ShardPiece, ShardScatter, ShardSet
from .signature import (
    answer_key,
    domain_signature,
    plan_key,
    policy_signature,
    workload_signature,
)
from .waiters import BatchTriggers, ThreadTicketWaiter, TicketLifecycle, TicketWaiter

__all__ = [
    "ANSWERED",
    "AdaptiveExecuteBackend",
    "AnswerCache",
    "AnswerCacheStats",
    "AuditLog",
    "BatchTriggers",
    "BatchingExecutor",
    "CANCELLED",
    "CRASH_POINTS",
    "CachedAnswer",
    "CachedPlan",
    "ClientSession",
    "DomainShard",
    "EXPIRED",
    "EngineStats",
    "FaultInjector",
    "LedgerStore",
    "Snapshotter",
    "ExecuteCostModel",
    "ExecuteUnit",
    "ExecuteUnitGroup",
    "FactorisationHandle",
    "FactorisationStore",
    "FactorisationStoreStats",
    "FlushPipeline",
    "Measurement",
    "MetricsRegistry",
    "Observability",
    "PENDING",
    "PLAN_STORE_FORMAT",
    "PlanCache",
    "PlanCacheStats",
    "PrivateQueryEngine",
    "ProcessExecuteBackend",
    "QueryTicket",
    "REFUSED",
    "SERVING_FAULT_POINTS",
    "Span",
    "ThreadExecuteBackend",
    "ThreadTicketWaiter",
    "TicketLifecycle",
    "TicketWaiter",
    "Trace",
    "Tracer",
    "ShardPiece",
    "ShardScatter",
    "ShardSet",
    "answer_key",
    "domain_signature",
    "get_store",
    "matrix_digest",
    "plan_key",
    "policy_signature",
    "recover_accountant",
    "set_store",
    "set_store_enabled",
    "stack_measurements",
    "store_enabled",
    "workload_signature",
]
