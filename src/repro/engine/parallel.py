"""Execute-stage worker backends: thread pool and **process pool**.

The staged pipeline (:mod:`repro.engine.pipeline`) made flushes overlap, but
in one process the GIL still bounds the execute stage: the scipy-sparse
mechanism kernels hold it, so thread workers buy concurrency, not CPU
parallelism.  This module runs the execute stage across **cores** instead,
following the hybrid-engine separation of serving and analytical resources:
mechanism execution is cut into :class:`ExecuteUnit` work units — one per
unsharded batch, one per touched :class:`~repro.engine.DomainShard` of a
sharded batch (shard databases are small and independent) — and a backend
runs them on a pool.

Two backends share one contract — ``submit(unit) -> Future[(List[ndarray],
Optional[NoiseModel])]``, the per-workload answer vectors plus the
invocation's honest noise metadata (which pickles, so it survives the
process round trip byte-identically):

* :class:`ThreadExecuteBackend` — the in-process pool.  No serialisation;
  units execute on shared objects.
* :class:`ProcessExecuteBackend` — a ``ProcessPoolExecutor``.  Every unit is
  shipped as ``(plan key, plan blob, database token, database blob,
  pickled (workloads, rng))``; plan and database *pickling* is memoised on
  both sides (parent keeps blobs, workers keep re-hydrated objects by
  key/token), so a steady-state dispatch serialises only workloads + RNG —
  though the memoised blobs still cross the pipe each dispatch (tasks
  cannot be targeted at a specific worker, so the parent cannot know which
  worker already holds them; a miss-only blob protocol is a road-mapped
  refinement for very large histograms).  All parent-side serialisation
  time is accounted (:attr:`serialization_seconds`, surfaced via
  :attr:`~repro.engine.EngineStats.serialization_seconds`).

Determinism: the backends never touch the noise stream — the pipeline spawns
one RNG child per work unit with the **same derivation on every backend**, so
a seeded engine produces identical draws under ``execute_backend="thread"``
and ``"process"`` (and byte-identical ε ledgers, which never depend on the
backend at all: charges happen before execution).

Worker processes default to the ``spawn`` start method: ``fork`` from an
engine that already runs flusher/worker threads can clone held locks into
the child.  Spawned workers import the library once (~0.5 s) and then
persist across flushes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..core.database import Database
from ..core.workload import Workload
from ..mechanisms.base import NoiseModel
from .plan_cache import CachedPlan
from .signature import PlanKey

__all__ = [
    "ExecuteUnit",
    "ProcessExecuteBackend",
    "ThreadExecuteBackend",
    "create_execute_backend",
    "execute_unit_via",
    "run_unit",
]


@dataclass
class ExecuteUnit:
    """One shippable slice of the execute stage.

    A unit is the quadruple the tentpole names — ``(plan, sub-histogram, ε,
    RNG seed)``: the plan carries its ε in the key, ``database`` is the full
    histogram for unsharded batches or the projected shard histogram for
    per-shard units, and ``rng`` is the unit's own spawned child stream
    (never shared between units).
    """

    plan: CachedPlan
    workloads: List[Workload]
    database: Database
    rng: np.random.Generator = field(repr=False)
    #: Whether to compute the invocation's noise metadata.  The pipeline
    #: clears it when the engine serves without an answer cache — nothing
    #: would store the model, so computing it would be pure waste.
    want_noise: bool = True


def run_unit(
    plan: CachedPlan,
    workloads: List[Workload],
    database: Database,
    rng: np.random.Generator,
    want_noise: bool = True,
) -> Tuple[List[np.ndarray], Optional["NoiseModel"]]:
    """Execute one unit: one vectorised mechanism invocation.

    Shared by every backend (and by the worker-process side), so thread and
    process execution run byte-for-byte the same code on the same inputs.
    Returns the per-workload answer vectors plus the invocation's
    :class:`~repro.mechanisms.base.NoiseModel` (``None`` when the mechanism
    cannot state its noise honestly, or when ``want_noise`` is off) — the
    metadata pickles, so it survives the process-pool round trip
    identically to the thread backend.  The noise draw itself never depends
    on ``want_noise``: the model is computed after the answers, from the
    workload alone.
    """
    algorithm = plan.plan.algorithm
    if len(workloads) == 1:
        vectors = [algorithm.answer(workloads[0], database, rng)]
        model_hook = getattr(algorithm, "noise_model", None) if want_noise else None
        model = model_hook(workloads[0]) if model_hook is not None else None
    elif want_noise:
        batch_hook = getattr(algorithm, "answer_batch_with_noise", None)
        if batch_hook is not None:
            vectors, model = batch_hook(workloads, database, rng)
        else:
            vectors, model = algorithm.answer_batch(workloads, database, rng), None
    else:
        vectors, model = algorithm.answer_batch(workloads, database, rng), None
    return [np.asarray(vector, dtype=np.float64) for vector in vectors], model


def execute_unit_via(backend, unit: ExecuteUnit) -> Tuple[List[np.ndarray], Optional[NoiseModel]]:
    """Run one unit on ``backend``, with the engine-close inline fallback.

    Mirrors the pipeline's per-unit failure semantics for blocking
    single-unit callers (``engine.top_up``).  The pipeline itself keeps its
    own split submit/drain loops — it overlaps many units and layers batch
    rollback bookkeeping on top — so changes to these semantics must be
    applied in both places (`pipeline._execute_on_backend`):

    * ``backend is None`` — execute inline on the calling thread;
    * ``submit`` raising :class:`BrokenExecutor` — the pool *crashed*
      (caught before its ``RuntimeError`` superclass): re-raise, never
      re-run inline — if the unit itself killed a worker, an inline retry
      could take the serving process down with it;
    * ``submit`` raising any other ``RuntimeError`` — the backend was
      closed (engine shutdown mid-call): finish inline so the paid-for
      release still happens;
    * anything raised by the unit's own execution (from ``result()`` or
      the inline run, whatever the type) propagates to the caller, which
      rolls the charge back.
    """
    if backend is not None:
        try:
            future = backend.submit(unit)
        except BrokenExecutor:
            raise
        except RuntimeError:
            future = None
        if future is not None:
            return future.result()
    return run_unit(
        unit.plan, unit.workloads, unit.database, unit.rng, unit.want_noise
    )


# ---------------------------------------------------------------------------
# Worker-process side.
# ---------------------------------------------------------------------------
#: Per-worker memo of re-hydrated plans.  Worker processes persist across
#: flushes, so a hot plan is unpickled once and its internal caches (workload
#: transforms, Gram factorisation) stay warm from then on.
_WORKER_PLANS: "OrderedDict[PlanKey, CachedPlan]" = OrderedDict()
_WORKER_PLANS_MAXSIZE = 32

#: Per-worker memo of re-hydrated databases, keyed by the parent-side token
#: (tokens are unique per backend instance, so a recycled ``id()`` in the
#: parent can never alias a stale histogram here).
_WORKER_DATABASES: "OrderedDict[Tuple[int, int], Database]" = OrderedDict()
_WORKER_DATABASES_MAXSIZE = 64


def _execute_in_worker(
    plan_key: PlanKey,
    plan_blob: bytes,
    database_token: Tuple[int, int],
    database_blob: bytes,
    payload_blob: bytes,
) -> Tuple[List[np.ndarray], Optional[NoiseModel]]:
    """Worker entry point: re-hydrate (or recall) plan + database, run the unit."""
    plan = _WORKER_PLANS.get(plan_key)
    if plan is None:
        plan = pickle.loads(plan_blob)
        _WORKER_PLANS[plan_key] = plan
        while len(_WORKER_PLANS) > _WORKER_PLANS_MAXSIZE:
            _WORKER_PLANS.popitem(last=False)
    else:
        _WORKER_PLANS.move_to_end(plan_key)
    database = _WORKER_DATABASES.get(database_token)
    if database is None:
        database = pickle.loads(database_blob)
        _WORKER_DATABASES[database_token] = database
        while len(_WORKER_DATABASES) > _WORKER_DATABASES_MAXSIZE:
            _WORKER_DATABASES.popitem(last=False)
    else:
        _WORKER_DATABASES.move_to_end(database_token)
    workloads, rng, want_noise = pickle.loads(payload_blob)
    return run_unit(plan, workloads, database, rng, want_noise)


# ---------------------------------------------------------------------------
# Backends.
# ---------------------------------------------------------------------------
class ThreadExecuteBackend:
    """Execute units on an in-process thread pool (concurrency, shared GIL)."""

    name = "thread"

    def __init__(self, max_workers: int) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=int(max_workers),
            thread_name_prefix="repro-engine-execute",
        )
        self._counter_lock = threading.Lock()
        self._dispatches = 0

    @property
    def dispatches(self) -> int:
        """Number of work units handed to the pool so far."""
        with self._counter_lock:
            return self._dispatches

    @property
    def serialization_seconds(self) -> float:
        """Always zero: units execute in-process on shared objects."""
        return 0.0

    def submit(self, unit: ExecuteUnit) -> "Future[Tuple[List[np.ndarray], Optional[NoiseModel]]]":
        """Schedule one unit; raises ``RuntimeError`` once closed."""
        future = self._pool.submit(
            run_unit,
            unit.plan,
            unit.workloads,
            unit.database,
            unit.rng,
            unit.want_noise,
        )
        with self._counter_lock:
            self._dispatches += 1
        return future

    def close(self, wait: bool = True) -> None:
        """Shut the pool down; subsequent submits raise ``RuntimeError``."""
        self._pool.shutdown(wait=wait)


class ProcessExecuteBackend:
    """Execute units on a ``ProcessPoolExecutor`` — real multi-core execution.

    Parameters
    ----------
    max_workers:
        Worker-process count.
    start_method:
        ``multiprocessing`` start method.  The default ``"spawn"`` is safe in
        the presence of engine/executor threads; ``"fork"`` starts faster on
        POSIX but clones the parent's thread-held locks.
    """

    name = "process"

    def __init__(self, max_workers: int, start_method: str = "spawn") -> None:
        context = multiprocessing.get_context(start_method)
        self._pool = ProcessPoolExecutor(
            max_workers=int(max_workers), mp_context=context
        )
        self._counter_lock = threading.Lock()
        self._dispatches = 0
        self._serialization_seconds = 0.0
        # Parent-side memo of plan pickles: a hot plan is serialised once,
        # then every later dispatch reuses the bytes (sending bytes is a
        # memcpy; re-pickling sparse strategy matrices is not).
        self._blob_lock = threading.Lock()
        self._plan_blobs: "OrderedDict[PlanKey, bytes]" = OrderedDict()
        self._plan_blobs_maxsize = _WORKER_PLANS_MAXSIZE
        # Same for databases, which are immutable for the engine's lifetime
        # (full histogram for unsharded units, projected shard histograms
        # otherwise).  Keyed by object identity — each memo entry pins its
        # database, so a recycled id() can never alias — and shipped with a
        # per-backend-unique token the worker memoises re-hydration under.
        self._db_tokens = itertools.count(1)
        self._db_blobs: "OrderedDict[int, Tuple[Database, Tuple[int, int], bytes]]" = (
            OrderedDict()
        )
        self._db_blobs_maxsize = _WORKER_DATABASES_MAXSIZE

    @property
    def dispatches(self) -> int:
        """Number of work units shipped to worker processes so far."""
        with self._counter_lock:
            return self._dispatches

    @property
    def serialization_seconds(self) -> float:
        """Total parent-side wall-clock spent pickling plans and payloads."""
        with self._counter_lock:
            return self._serialization_seconds

    def _plan_blob(self, plan: CachedPlan) -> bytes:
        with self._blob_lock:
            blob = self._plan_blobs.get(plan.key)
            if blob is not None:
                self._plan_blobs.move_to_end(plan.key)
                return blob
        blob = pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL)
        with self._blob_lock:
            self._plan_blobs[plan.key] = blob
            self._plan_blobs.move_to_end(plan.key)
            while len(self._plan_blobs) > self._plan_blobs_maxsize:
                self._plan_blobs.popitem(last=False)
        return blob

    def _database_blob(self, database: Database) -> Tuple[Tuple[int, int], bytes]:
        key = id(database)
        with self._blob_lock:
            entry = self._db_blobs.get(key)
            if entry is not None and entry[0] is database:
                self._db_blobs.move_to_end(key)
                return entry[1], entry[2]
        token = (id(self), next(self._db_tokens))
        blob = pickle.dumps(database, protocol=pickle.HIGHEST_PROTOCOL)
        with self._blob_lock:
            self._db_blobs[key] = (database, token, blob)
            self._db_blobs.move_to_end(key)
            while len(self._db_blobs) > self._db_blobs_maxsize:
                self._db_blobs.popitem(last=False)
        return token, blob

    def submit(self, unit: ExecuteUnit) -> "Future[Tuple[List[np.ndarray], Optional[NoiseModel]]]":
        """Serialise and ship one unit; raises ``RuntimeError`` once closed.

        Plan and database pickles are memoised (both are immutable for the
        engine's lifetime), so a steady-state dispatch serialises only the
        workloads and the RNG child.  Serialisation failures (e.g. a plan
        holding an unpicklable custom estimator factory) raise here, *before*
        anything is scheduled — the pipeline turns that into a rolled-back
        batch, exactly like a mechanism failure.
        """
        started = time.perf_counter()
        plan_blob = self._plan_blob(unit.plan)
        database_token, database_blob = self._database_blob(unit.database)
        payload_blob = pickle.dumps(
            (unit.workloads, unit.rng, unit.want_noise),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        elapsed = time.perf_counter() - started
        future = self._pool.submit(
            _execute_in_worker,
            unit.plan.key,
            plan_blob,
            database_token,
            database_blob,
            payload_blob,
        )
        with self._counter_lock:
            self._dispatches += 1
            self._serialization_seconds += elapsed
        return future

    def close(self, wait: bool = True) -> None:
        """Shut the worker processes down; subsequent submits raise."""
        self._pool.shutdown(wait=wait)


def create_execute_backend(
    backend: str,
    max_workers: int,
    process_start_method: str = "spawn",
) -> Optional[object]:
    """Build the execute backend the engine was configured with.

    Returns ``None`` for ``max_workers`` of 1 or less — the pipeline then
    executes inline on the flushing thread, exactly as without a pool.
    """
    if backend not in ("thread", "process"):
        raise ValueError(
            f"Unknown execute backend {backend!r}; expected 'thread' or 'process'"
        )
    if max_workers is None or int(max_workers) <= 1:
        return None
    if backend == "thread":
        return ThreadExecuteBackend(max_workers=int(max_workers))
    return ProcessExecuteBackend(
        max_workers=int(max_workers), start_method=process_start_method
    )
