"""Execute-stage worker backends: thread pool, **process pool**, adaptive router.

The staged pipeline (:mod:`repro.engine.pipeline`) made flushes overlap, but
in one process the GIL still bounds the execute stage: the scipy-sparse
mechanism kernels hold it, so thread workers buy concurrency, not CPU
parallelism.  This module runs the execute stage across **cores** instead,
following the hybrid-engine separation of serving and analytical resources:
mechanism execution is cut into :class:`ExecuteUnit` work units — one per
unsharded batch, one per touched :class:`~repro.engine.DomainShard` of a
sharded batch (shard databases are small and independent) — and a backend
runs them on a pool.

Three backends share one contract — ``submit(unit) -> future-like`` whose
``result()`` yields ``(List[ndarray], Optional[NoiseModel])``, the
per-workload answer vectors plus the invocation's honest noise metadata
(which pickles, so it survives the process round trip byte-identically):

* :class:`ThreadExecuteBackend` — the in-process pool.  No serialisation;
  units execute on shared objects.
* :class:`ProcessExecuteBackend` — a ``ProcessPoolExecutor`` speaking a
  **miss-only blob protocol**: plans and databases are addressed by content
  digest, workers hold a digest-keyed *resident cache* (preloaded through
  the pool initializer with the engine database and every plan known at
  pool start), and a steady-state dispatch ships only ``(digest, digest,
  workloads + RNG child)`` — never the blobs themselves.  A worker that
  lacks a digest (fresh plan raced to a cold worker, or a respawned worker
  that lost its cache) answers with a miss sentinel and the parent
  resubmits that one unit with the full blobs, which also repopulates the
  worker.  Shipped bytes, cache misses and parent-side serialisation time
  are all observable (:attr:`bytes_shipped`, :attr:`blob_cache_misses`,
  :attr:`serialization_seconds`, surfaced via
  :class:`~repro.engine.EngineStats`).
* :class:`AdaptiveExecuteBackend` — a cost-aware router over an inline
  path, a thread pool and a process pool.  An :class:`ExecuteCostModel`
  keeps an EWMA of per-plan-key kernel seconds and of each pool's observed
  per-dispatch overhead (serialisation + IPC + future round trip); each
  unit then runs wherever it is cheapest — tiny units inline on the
  flushing thread, heavy multi-unit flushes fanned out to processes.

Determinism: the backends never touch the noise stream — the pipeline spawns
one RNG child per work unit with the **same derivation on every backend**, so
a seeded engine produces identical draws under ``execute_backend="thread"``,
``"process"`` and ``"adaptive"`` (and byte-identical ε ledgers, which never
depend on the backend at all: charges happen before execution).  Routing and
the blob protocol only decide *where* a unit runs and *what crosses the
pipe*; the unit's RNG child is fixed before either.

Worker processes default to the ``spawn`` start method: ``fork`` from an
engine that already runs flusher/worker threads can clone held locks into
the child.  Spawned workers import the library once (~0.5 s) and then
persist across flushes; the pool itself is created lazily on first dispatch
so its initializer can preload everything the backend has seen by then.
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.database import Database
from ..core.workload import Workload
from ..mechanisms.base import NoiseModel
from .observability.metrics import DEFAULT_BYTE_BUCKETS, MetricsRegistry
from .plan_cache import CachedPlan
from .signature import PlanKey

logger = logging.getLogger(__name__)

__all__ = [
    "AdaptiveExecuteBackend",
    "ExecuteCostModel",
    "ExecuteUnit",
    "ExecuteUnitGroup",
    "ProcessExecuteBackend",
    "ThreadExecuteBackend",
    "create_execute_backend",
    "execute_unit_via",
    "run_unit",
    "run_unit_group",
]


@dataclass
class ExecuteUnit:
    """One shippable slice of the execute stage.

    A unit is the quadruple the tentpole names — ``(plan, sub-histogram, ε,
    RNG seed)``: the plan carries its ε in the key, ``database`` is the full
    histogram for unsharded batches or the projected shard histogram for
    per-shard units, and ``rng`` is the unit's own spawned child stream
    (never shared between units).
    """

    plan: CachedPlan
    workloads: List[Workload]
    database: Database
    rng: np.random.Generator = field(repr=False)
    #: Whether to compute the invocation's noise metadata.  The pipeline
    #: clears it when the engine serves without an answer cache — nothing
    #: would store the model, so computing it would be pure waste.
    want_noise: bool = True


def run_unit(
    plan: CachedPlan,
    workloads: List[Workload],
    database: Database,
    rng: np.random.Generator,
    want_noise: bool = True,
) -> Tuple[List[np.ndarray], Optional["NoiseModel"]]:
    """Execute one unit: one vectorised mechanism invocation.

    Shared by every backend (and by the worker-process side), so thread and
    process execution run byte-for-byte the same code on the same inputs.
    Returns the per-workload answer vectors plus the invocation's
    :class:`~repro.mechanisms.base.NoiseModel` (``None`` when the mechanism
    cannot state its noise honestly, or when ``want_noise`` is off) — the
    metadata pickles, so it survives the process-pool round trip
    identically to the thread backend.  The noise draw itself never depends
    on ``want_noise``: the model is computed after the answers, from the
    workload alone.
    """
    algorithm = plan.plan.algorithm
    if len(workloads) == 1:
        vectors = [algorithm.answer(workloads[0], database, rng)]
        model_hook = getattr(algorithm, "noise_model", None) if want_noise else None
        model = model_hook(workloads[0]) if model_hook is not None else None
    elif want_noise:
        batch_hook = getattr(algorithm, "answer_batch_with_noise", None)
        if batch_hook is not None:
            vectors, model = batch_hook(workloads, database, rng)
        else:
            vectors, model = algorithm.answer_batch(workloads, database, rng), None
    else:
        vectors, model = algorithm.answer_batch(workloads, database, rng), None
    return [np.asarray(vector, dtype=np.float64) for vector in vectors], model


def execute_unit_via(backend, unit: ExecuteUnit) -> Tuple[List[np.ndarray], Optional[NoiseModel]]:
    """Run one unit on ``backend``, with the engine-close inline fallback.

    Mirrors the pipeline's per-unit failure semantics for blocking
    single-unit callers (``engine.top_up``).  The pipeline itself keeps its
    own split submit/drain loops — it overlaps many units and layers batch
    rollback bookkeeping on top — so changes to these semantics must be
    applied in both places (`pipeline._execute_on_backend`):

    * ``backend is None`` — execute inline on the calling thread;
    * ``submit`` raising :class:`BrokenExecutor` — the pool *crashed*
      (caught before its ``RuntimeError`` superclass): re-raise, never
      re-run inline — if the unit itself killed a worker, an inline retry
      could take the serving process down with it;
    * ``submit`` raising any other ``RuntimeError`` — the backend was
      closed (engine shutdown mid-call): finish inline so the paid-for
      release still happens;
    * anything raised by the unit's own execution (from ``result()`` or
      the inline run, whatever the type) propagates to the caller, which
      rolls the charge back.

    An adaptive backend routes the lone unit by its cost model (a single
    unit has no pool overlap to buy, so it lands inline in practice) — the
    draws are identical either way, because the unit's RNG is fixed by the
    caller.
    """
    if backend is not None:
        try:
            future = backend.submit(unit)
        except BrokenExecutor:
            raise
        except RuntimeError:
            logger.warning(
                "execute backend closed mid-call; finishing unit for plan "
                "%s inline on the calling thread",
                unit.plan.key,
            )
            future = None
        if future is not None:
            return future.result()
    return run_unit(
        unit.plan, unit.workloads, unit.database, unit.rng, unit.want_noise
    )


@dataclass(frozen=True)
class ExecuteUnitGroup:
    """Several compatible units fused into **one** backend dispatch.

    Fusion coalesces *dispatch and transport only* — queue hops, pickles,
    IPC round trips, future bookkeeping — never the mechanism math: inside
    the group each member unit still runs its own stacked ``answer_batch``
    kernel with its **own** RNG child (spawned by the pipeline in sorted
    shard order *before* any grouping), in member order.  Seeded draws and
    ε ledgers are therefore byte-identical to ungrouped execution; only the
    per-unit dispatch overhead disappears.  Members are compatible when
    they share a planner config (same ε and planning flags in their plan
    keys) and the same ``want_noise``.
    """

    units: Tuple[ExecuteUnit, ...]

    def __len__(self) -> int:
        return len(self.units)


#: One fused member's outcome: ``("ok", vectors, model)`` or
#: ``("error", message)``.  Errors are carried per member (not raised), so a
#: failing unit rolls back only its own batch — identical semantics to
#: per-unit dispatch — and the tuple form pickles across the process pool.
GroupOutcome = Tuple


def run_unit_group(
    group: ExecuteUnitGroup,
) -> Tuple[List[GroupOutcome], List[Optional[float]]]:
    """Run a fused group's members back-to-back on the calling thread.

    Shared by every backend (inline fallback, thread pool, worker process),
    so fused execution is byte-for-byte the same code everywhere.  Returns
    per-member outcomes plus per-member kernel seconds (``None`` for a
    member that raised) — the split the dispatcher hands back to the
    pipeline, which reassembles answers, noise models and kernel-seconds
    observations exactly as if each unit had been dispatched alone.
    """
    outcomes: List[GroupOutcome] = []
    kernels: List[Optional[float]] = []
    for unit in group.units:
        started = time.perf_counter()
        try:
            vectors, model = run_unit(
                unit.plan, unit.workloads, unit.database, unit.rng, unit.want_noise
            )
        except Exception as exc:
            outcomes.append(("error", f"{type(exc).__name__}: {exc}"))
            kernels.append(None)
        else:
            outcomes.append(("ok", vectors, model))
            kernels.append(time.perf_counter() - started)
    return outcomes, kernels


class _GroupHandle:
    """Future-like handle for fused dispatches on in-process pools.

    ``result()`` yields the per-member outcome list; per-member kernel
    seconds and any protocol hops ride along afterwards
    (:attr:`kernel_seconds_list`, :attr:`protocol_hops`), mirroring the
    per-unit dispatch attributes the pipeline's observability reads.
    """

    __slots__ = ("_future", "_resolved", "kernel_seconds_list", "protocol_hops")

    def __init__(self, future) -> None:
        self._future = future
        self._resolved: Optional[list] = None
        self.kernel_seconds_list: Optional[List[Optional[float]]] = None
        self.protocol_hops: List[dict] = []

    @classmethod
    def resolved(cls, outcomes, kernels, span: Optional[dict] = None) -> "_GroupHandle":
        future: Future = Future()
        future.set_result((outcomes, kernels, span))
        return cls(future)

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None):
        if self._resolved is not None:
            return self._resolved
        outcomes, kernels, span = self._future.result(timeout)
        self.kernel_seconds_list = kernels
        if span is not None:
            self.protocol_hops.append(dict(span))
        self._resolved = outcomes
        return outcomes


# ---------------------------------------------------------------------------
# Cost model.
# ---------------------------------------------------------------------------
class ExecuteCostModel:
    """EWMA cost model driving the adaptive backend's per-unit routing.

    Two families of observations feed it:

    * **kernel seconds** per plan key — how long one mechanism invocation
      under that plan actually takes, measured wherever the unit ran
      (inline, thread worker, or inside the worker process — the process
      protocol ships the measurement back with the answers);
    * **per-dispatch overhead** per pool — everything a dispatch pays on
      top of the kernel: serialisation, IPC, queueing and the future round
      trip, measured parent-side as (round-trip wall-clock − kernel
      seconds).

    Until a pool has been observed its overhead starts from a prior
    (processes cost milliseconds, threads tens of microseconds), so the
    router is usable from the first flush; until a *plan* has been observed
    its units run inline — the observation itself then seeds the estimate.
    ``default_kernel_seconds`` overrides that bootstrap for tests and
    benchmarks that need decisions forced in a known direction.

    **Warm-up discount** (``warmup_discount``, default on): a plan's first
    invocation absorbs one-off lazy work — the Gram/SuperLU factorisation
    the data-dependent strategies build on first contact — so the first
    kernel sample over-states every later one, sometimes by an order of
    magnitude, and the EWMA then over-routes the plan to the process pool
    until enough samples wash the spike out.  The first sample therefore
    only *provisionally* seeds the estimate (the router needs something),
    and the second sample — the first warm one — **replaces** it outright
    instead of blending; EWMA smoothing starts from the third sample.

    Overhead observations include honest congestion (queue wait behind
    sibling units), which can transiently poison the estimate high — and a
    pool the router then avoids would never be re-measured.  Two guards
    keep routing from sticking: the dispatch that *created* the lazy
    process pool is never observed (worker spawn is a one-off, not a
    per-dispatch cost), and every inline routing decision decays the
    overhead estimates a small step back toward their priors
    (``prior_reversion``), so an avoided pool is eventually retried and
    re-measured.

    All methods are thread-safe: concurrent flushes observe and route
    through one shared model.
    """

    def __init__(
        self,
        alpha: float = 0.25,
        thread_overhead_prior: float = 2e-4,
        process_overhead_prior: float = 4e-3,
        dispatch_margin: float = 2.0,
        default_kernel_seconds: Optional[float] = None,
        prior_reversion: float = 0.02,
        warmup_discount: bool = True,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if dispatch_margin < 1.0:
            raise ValueError(
                f"dispatch_margin must be >= 1 (dispatch only when the kernel "
                f"clearly dominates the overhead), got {dispatch_margin}"
            )
        if not 0.0 <= prior_reversion <= 1.0:
            raise ValueError(
                f"prior_reversion must be in [0, 1], got {prior_reversion}"
            )
        self._alpha = float(alpha)
        self._margin = float(dispatch_margin)
        self._default_kernel = (
            float(default_kernel_seconds)
            if default_kernel_seconds is not None
            else None
        )
        self._reversion = float(prior_reversion)
        self._warmup_discount = bool(warmup_discount)
        self._lock = threading.Lock()
        self._kernels: Dict[PlanKey, float] = {}
        #: Plan keys whose only sample so far is the (factorisation-tainted)
        #: first one — the next observation replaces rather than blends.
        self._warming: set = set()
        self._overhead_priors: Dict[str, float] = {
            "thread": float(thread_overhead_prior),
            "process": float(process_overhead_prior),
        }
        self._overheads: Dict[str, float] = dict(self._overhead_priors)

    # ----------------------------------------------------------- observations
    def observe_kernel(self, plan_key: PlanKey, seconds: float) -> None:
        """Fold one measured kernel wall-clock into the plan key's EWMA.

        With ``warmup_discount`` on, the first sample seeds the estimate
        provisionally and the second sample replaces it (see the class
        docstring); blending starts from the third.
        """
        seconds = max(0.0, float(seconds))
        with self._lock:
            current = self._kernels.get(plan_key)
            if current is None:
                self._kernels[plan_key] = seconds
                if self._warmup_discount:
                    self._warming.add(plan_key)
            elif plan_key in self._warming:
                self._warming.discard(plan_key)
                self._kernels[plan_key] = seconds
            else:
                self._kernels[plan_key] = (
                    self._alpha * seconds + (1.0 - self._alpha) * current
                )

    def observe_overhead(self, backend_name: str, seconds: float) -> None:
        """Fold one measured per-dispatch overhead into the pool's EWMA."""
        seconds = max(0.0, float(seconds))
        with self._lock:
            current = self._overheads.get(backend_name)
            self._overheads[backend_name] = (
                seconds
                if current is None
                else self._alpha * seconds + (1.0 - self._alpha) * current
            )

    # -------------------------------------------------------------- estimates
    def kernel_seconds(self, plan_key: PlanKey) -> Optional[float]:
        """Estimated kernel seconds for one invocation under ``plan_key``.

        ``None`` means "never observed" (and no default configured) — the
        router then runs the unit inline to take the first measurement.
        """
        with self._lock:
            estimate = self._kernels.get(plan_key)
        return estimate if estimate is not None else self._default_kernel

    def overhead_seconds(self, backend_name: str) -> float:
        """Estimated per-dispatch overhead of ``backend_name`` (prior or EWMA)."""
        with self._lock:
            return self._overheads.get(backend_name, 0.0)

    # ---------------------------------------------------------------- routing
    def route(self, plan_key: PlanKey, flush_units: int) -> str:
        """Where one unit of a ``flush_units``-unit flush should run.

        Returns ``"inline"``, ``"thread"`` or ``"process"``.  A lone unit
        always runs inline (the pool buys overlap between units; with one
        unit there is nothing to overlap, only overhead to pay), an
        unobserved plan runs inline to seed its estimate, and otherwise the
        kernel estimate must beat ``dispatch_margin ×`` a pool's overhead
        to be dispatched there — processes preferred (they alone escape the
        GIL), threads as the cheap fallback for mid-weight units.
        """
        if flush_units <= 1:
            return "inline"
        estimate = self.kernel_seconds(plan_key)
        if estimate is None:
            return "inline"
        if estimate >= self._margin * self.overhead_seconds("process"):
            return "process"
        if estimate >= self._margin * self.overhead_seconds("thread"):
            return "thread"
        # Routing inline means the pools go unmeasured: decay their
        # overhead estimates a step toward the priors so a congestion
        # spike cannot lock the router out of a now-idle pool forever.
        if self._reversion > 0.0:
            with self._lock:
                for name, prior in self._overhead_priors.items():
                    current = self._overheads.get(name, prior)
                    self._overheads[name] = current + self._reversion * (
                        prior - current
                    )
        return "inline"

    def snapshot(self) -> dict:
        """Debug/benchmark view: current estimates, keyed by plan key string."""
        with self._lock:
            return {
                "kernel_seconds": {str(key): value for key, value in self._kernels.items()},
                "overhead_seconds": dict(self._overheads),
                "dispatch_margin": self._margin,
            }


# ---------------------------------------------------------------------------
# Worker-process side.
# ---------------------------------------------------------------------------
#: Per-worker resident cache of re-hydrated plans *and* databases, keyed by
#: the content digest of their pickle.  Worker processes persist across
#: flushes, so a hot object is unpickled once and its internal caches
#: (workload transforms, Gram factorisation) stay warm from then on.
_WORKER_RESIDENT: "OrderedDict[str, object]" = OrderedDict()
_WORKER_RESIDENT_MAXSIZE = 128

#: The preload the pool initializer ran with — kept so a simulated respawn
#: (:func:`_reset_worker_resident`) restores exactly the initializer state.
_WORKER_PRELOAD: List[Tuple[str, bytes]] = []


def _blob_digest(blob: bytes) -> str:
    """Content digest a blob is addressed by across the process boundary."""
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


class _PlanSerialisationError(Exception):
    """The *plan* itself cannot be pickled for the process boundary.

    Distinguished from per-unit payload failures (an unpicklable workload,
    say) so the adaptive router blacklists only plans that can genuinely
    never cross — a bad payload must not demote every later unit of an
    innocent plan to the thread pool.
    """


@dataclass(frozen=True)
class _BlobMiss:
    """Worker → parent sentinel: these digests are not resident here.

    The worker returns it *before* touching the unit's RNG payload, so the
    parent's resubmission (with full blobs) draws exactly the noise the
    first attempt would have drawn.
    """

    missing: Tuple[str, ...]


def _preload_worker(resident: List[Tuple[str, bytes]]) -> None:
    """Pool initializer: make every ``(digest, blob)`` pair resident.

    Every worker the pool ever spawns — including respawns after a crash —
    runs this with the same arguments, so the engine database and the plans
    known at pool creation are *always* resident and can never miss.
    """
    global _WORKER_PRELOAD
    _WORKER_PRELOAD = list(resident)
    _WORKER_RESIDENT.clear()
    for digest, blob in resident:
        _WORKER_RESIDENT[digest] = pickle.loads(blob)


def _reset_worker_resident() -> bool:
    """Drop this worker's resident cache and re-run its preload.

    Test/benchmark hook simulating a worker respawn (a real respawn re-runs
    :func:`_preload_worker` and loses everything shipped since) without the
    platform-dependent machinery of actually killing the process.
    """
    _preload_worker(_WORKER_PRELOAD)
    return True


def _resident_get(digest: str, blob: Optional[bytes]):
    """Recall a resident object, re-hydrating from ``blob`` when shipped."""
    obj = _WORKER_RESIDENT.get(digest)
    if obj is not None:
        _WORKER_RESIDENT.move_to_end(digest)
        return obj
    if blob is None:
        return None
    obj = pickle.loads(blob)
    _WORKER_RESIDENT[digest] = obj
    while len(_WORKER_RESIDENT) > _WORKER_RESIDENT_MAXSIZE:
        _WORKER_RESIDENT.popitem(last=False)
    return obj


def _execute_shipped(
    plan_digest: str,
    plan_blob: Optional[bytes],
    db_digest: str,
    db_blob: Optional[bytes],
    payload_blob: bytes,
):
    """Worker entry point of the miss-only protocol.

    Recalls (or re-hydrates) the plan and database by digest, then runs the
    unit.  When a digest is neither resident nor shipped, returns a
    :class:`_BlobMiss` **without running anything** — the parent resubmits
    with full blobs, and because the RNG payload was never unpickled here,
    the retry draws identical noise.  Successful runs return ``(vectors,
    model, kernel_seconds, span)``: the kernel wall-clock feeds the
    parent-side cost model, and the span — the kernel's boundaries on the
    epoch clock both processes share, stamped with the worker pid — lets
    the parent's tracer nest the worker-measured execution under its own
    unit span (the PR 5 kernel-seconds return channel, extended).
    """
    plan = _resident_get(plan_digest, plan_blob)
    database = _resident_get(db_digest, db_blob)
    missing = []
    if plan is None:
        missing.append("plan")
    if database is None:
        missing.append("database")
    if missing:
        return _BlobMiss(tuple(missing))
    workloads, rng, want_noise = pickle.loads(payload_blob)
    wall_started = time.time()
    started = time.perf_counter()
    vectors, model = run_unit(plan, workloads, database, rng, want_noise)
    kernel = time.perf_counter() - started
    span = {
        "kind": "worker",
        "pid": os.getpid(),
        "start": wall_started,
        "end": wall_started + kernel,
    }
    return vectors, model, kernel, span


def _execute_shipped_group(
    members: Tuple[Tuple[str, Optional[bytes], str, Optional[bytes]], ...],
    payload_blob: bytes,
):
    """Worker entry point for a fused group: one hop, many kernels.

    ``members`` carries ``(plan digest, plan blob?, db digest, db blob?)``
    per member.  Residency of **every** digest is checked (and shipped blobs
    re-hydrated) before the RNG payload is unpickled, so a miss on any
    member returns a :class:`_BlobMiss` naming the missing *digests* without
    consuming anything — the parent's full-blob resubmission then draws
    exactly the noise this attempt would have.  Successful runs return
    ``(outcomes, kernels, span)``: per-member outcome tuples and kernel
    wall-clocks (split back per unit by the parent) under one group-wide
    worker span.
    """
    resolved: Dict[str, object] = {}
    missing: List[str] = []
    for plan_digest, plan_blob, db_digest, db_blob in members:
        for digest, blob in ((plan_digest, plan_blob), (db_digest, db_blob)):
            if digest in resolved:
                continue
            obj = _resident_get(digest, blob)
            resolved[digest] = obj
            if obj is None:
                missing.append(digest)
    if missing:
        return _BlobMiss(tuple(missing))
    payloads = pickle.loads(payload_blob)
    wall_started = time.time()
    outcomes: List[tuple] = []
    kernels: List[Optional[float]] = []
    for (plan_digest, _, db_digest, _), (workloads, rng, want_noise) in zip(
        members, payloads
    ):
        started = time.perf_counter()
        try:
            vectors, model = run_unit(
                resolved[plan_digest], workloads, resolved[db_digest], rng, want_noise
            )
        except Exception as exc:
            outcomes.append(("error", f"{type(exc).__name__}: {exc}"))
            kernels.append(None)
        else:
            outcomes.append(("ok", vectors, model))
            kernels.append(time.perf_counter() - started)
    span = {
        "kind": "worker",
        "pid": os.getpid(),
        "start": wall_started,
        "end": time.time(),
        "fused_units": len(members),
    }
    return outcomes, kernels, span


def _worker_factorisation_stats() -> dict:
    """This worker's factorisation-store counters (test/benchmark hook).

    Each worker process holds its own
    :class:`~repro.engine.factorisation.FactorisationStore`; re-hydrated
    plans resolve against it by content digest, so two plans sharing a
    policy share one factorisation per worker no matter how many blob
    digests they arrived under.
    """
    from .factorisation import get_store

    stats = get_store().stats()
    return {
        "pid": os.getpid(),
        "hits": stats.hits,
        "misses": stats.misses,
        "build_seconds": stats.build_seconds,
        "entries": stats.entries,
    }


# ---------------------------------------------------------------------------
# Backends.
# ---------------------------------------------------------------------------
class ThreadExecuteBackend:
    """Execute units on an in-process thread pool (concurrency, shared GIL)."""

    name = "thread"
    #: Pipeline hint: this backend accepts fused :class:`ExecuteUnitGroup`
    #: dispatches via :meth:`submit_group`.
    fuses_units = True

    def __init__(
        self,
        max_workers: int,
        observe: Optional[Callable[[PlanKey, float, float], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._max_workers = int(max_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=int(max_workers),
            thread_name_prefix="repro-engine-execute",
        )
        self._counter_lock = threading.Lock()
        self._dispatches = 0
        #: Optional cost-model hook, ``observe(plan_key, kernel_seconds,
        #: dispatch_overhead_seconds)`` — wired by the adaptive backend.
        self._observe = observe
        self._queue_wait = (
            metrics.histogram(
                "engine_execute_queue_wait_seconds",
                "Wait between unit submission and a worker slot starting it",
                backend=self.name,
            )
            if metrics is not None
            else None
        )

    @property
    def dispatches(self) -> int:
        """Number of work units handed to the pool so far."""
        with self._counter_lock:
            return self._dispatches

    @property
    def serialization_seconds(self) -> float:
        """Always zero: units execute in-process on shared objects."""
        return 0.0

    @property
    def fusion_slots(self) -> int:
        """Pool width the pipeline balances fused groups across."""
        return self._max_workers

    def _run_observed(self, unit: ExecuteUnit, submitted_at: float):
        # Queue wait is the thread pool's whole dispatch overhead: there is
        # no serialisation and no IPC, only waiting for a worker slot.
        waited = time.perf_counter() - submitted_at
        if self._queue_wait is not None:
            self._queue_wait.observe(waited)
        started = time.perf_counter()
        result = run_unit(
            unit.plan, unit.workloads, unit.database, unit.rng, unit.want_noise
        )
        if self._observe is not None:
            self._observe(unit.plan.key, time.perf_counter() - started, waited)
        return result

    def submit(self, unit: ExecuteUnit) -> "Future[Tuple[List[np.ndarray], Optional[NoiseModel]]]":
        """Schedule one unit; raises ``RuntimeError`` once closed."""
        if self._observe is not None or self._queue_wait is not None:
            future = self._pool.submit(self._run_observed, unit, time.perf_counter())
        else:
            future = self._pool.submit(
                run_unit,
                unit.plan,
                unit.workloads,
                unit.database,
                unit.rng,
                unit.want_noise,
            )
        with self._counter_lock:
            self._dispatches += 1
        return future

    def _run_group(self, group: ExecuteUnitGroup, submitted_at: float):
        waited = time.perf_counter() - submitted_at
        if self._queue_wait is not None:
            self._queue_wait.observe(waited)
        outcomes, kernels = run_unit_group(group)
        if self._observe is not None:
            for index, (unit, kernel) in enumerate(zip(group.units, kernels)):
                if kernel is not None:
                    # The group's single queue wait is the whole dispatch
                    # overhead; attributing it once keeps the cost model's
                    # per-dispatch EWMA honest about what fusion amortises.
                    self._observe(unit.plan.key, kernel, waited if index == 0 else 0.0)
        return outcomes, kernels, None

    def submit_group(self, group: ExecuteUnitGroup) -> _GroupHandle:
        """Schedule one fused group as a single pool task.

        The members run back-to-back on one worker thread — one queue hop
        instead of ``len(group)`` — each on its own RNG child, so answers
        are bit-identical to per-unit submission.
        """
        future = self._pool.submit(self._run_group, group, time.perf_counter())
        with self._counter_lock:
            self._dispatches += 1
        return _GroupHandle(future)

    def close(self, wait: bool = True) -> None:
        """Shut the pool down; subsequent submits raise ``RuntimeError``."""
        self._pool.shutdown(wait=wait)


class _ProcessDispatch:
    """Future-like handle hiding the miss-only blob protocol from callers.

    ``result()`` transparently recovers a worker-side blob miss (resubmit
    with full blobs) and strips the protocol's kernel-seconds measurement
    before handing ``(vectors, model)`` to the caller — so the pipeline and
    ``execute_unit_via`` treat process dispatches exactly like thread
    futures.

    The protocol's observability rides along after resolution:
    :attr:`kernel_seconds` is the worker-measured kernel wall-clock and
    :attr:`protocol_hops` the unit's cross-process itinerary — one dict per
    hop (``kind`` of ``"blob-miss"``, ``"worker"`` or ``"inline"``, with
    epoch-clock ``start``/``end``), so a recovered blob miss reports *both*
    hops: the refused round trip and the execution that followed.
    """

    __slots__ = (
        "_backend",
        "_unit",
        "_future",
        "_submitted_at",
        "_submitted_wall",
        "_done_at",
        "_observe",
        "_resolved",
        "kernel_seconds",
        "protocol_hops",
    )

    def __init__(
        self,
        backend: "ProcessExecuteBackend",
        unit: ExecuteUnit,
        future,
        submitted_at: float,
        observe: bool = True,
    ) -> None:
        self._backend = backend
        self._unit = unit
        self._future = future
        self._submitted_at = submitted_at
        self._submitted_wall = time.time()
        self._done_at: Optional[float] = None
        #: False for the dispatch that created the lazy pool: its round
        #: trip absorbs worker spawn (a one-off), which must not poison the
        #: cost model's per-dispatch overhead EWMA.
        self._observe = observe
        self._resolved: Optional[tuple] = None
        self.kernel_seconds: Optional[float] = None
        self.protocol_hops: List[dict] = []
        future.add_done_callback(self._stamp_done)

    def _stamp_done(self, _future) -> None:
        self._done_at = time.perf_counter()

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None):
        # Idempotent like a real Future: the raw future keeps holding the
        # _BlobMiss sentinel after a recovery, so a second result() call
        # must serve the recovered value instead of re-running the unit.
        if self._resolved is not None:
            return self._resolved
        value = self._backend._await_future(self._future, timeout)
        if isinstance(value, _BlobMiss):
            self.protocol_hops.append(
                {
                    "kind": "blob-miss",
                    "missing": list(value.missing),
                    "start": self._submitted_wall,
                    "end": time.time(),
                }
            )
            # The recovery round trips inherit the caller's timeout per hop
            # (an approximate rather than a total bound, but a wedged pool
            # can never turn a bounded wait into an unbounded one).
            value = self._backend._recover_miss(
                self._unit, value, self, timeout=timeout
            )
        vectors, model, kernel_seconds, span = value
        self.kernel_seconds = kernel_seconds
        if span is not None:
            self.protocol_hops.append(dict(span))
        if self._observe:
            self._backend._observe_dispatch(
                self._unit.plan.key, kernel_seconds, self
            )
        self._resolved = (vectors, model)
        return self._resolved


class _ProcessGroupDispatch:
    """Future-like handle for one fused group shipped to the worker pool.

    Same protocol duties as :class:`_ProcessDispatch` — transparent
    blob-miss recovery, kernel-seconds return channel, protocol hops — but
    for a whole :class:`ExecuteUnitGroup`: ``result()`` yields the
    per-member outcome list and :attr:`kernel_seconds_list` the per-member
    kernel wall-clocks measured in the worker.
    """

    __slots__ = (
        "_backend",
        "_group",
        "_future",
        "_submitted_at",
        "_submitted_wall",
        "_done_at",
        "_observe",
        "_resolved",
        "kernel_seconds_list",
        "protocol_hops",
    )

    def __init__(
        self,
        backend: "ProcessExecuteBackend",
        group: ExecuteUnitGroup,
        future,
        submitted_at: float,
        observe: bool = True,
    ) -> None:
        self._backend = backend
        self._group = group
        self._future = future
        self._submitted_at = submitted_at
        self._submitted_wall = time.time()
        self._done_at: Optional[float] = None
        self._observe = observe
        self._resolved: Optional[list] = None
        self.kernel_seconds_list: Optional[List[Optional[float]]] = None
        self.protocol_hops: List[dict] = []
        future.add_done_callback(self._stamp_done)

    def _stamp_done(self, _future) -> None:
        self._done_at = time.perf_counter()

    def done(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None):
        if self._resolved is not None:
            return self._resolved
        value = self._backend._await_future(self._future, timeout)
        if isinstance(value, _BlobMiss):
            self.protocol_hops.append(
                {
                    "kind": "blob-miss",
                    "missing": list(value.missing),
                    "start": self._submitted_wall,
                    "end": time.time(),
                }
            )
            value = self._backend._recover_group_miss(
                self._group, value, self, timeout=timeout
            )
        outcomes, kernels, span = value
        self.kernel_seconds_list = kernels
        if span is not None:
            self.protocol_hops.append(dict(span))
        if self._observe and self._backend._observe is not None:
            done_at = self._done_at
            if done_at is None:  # pragma: no cover - result() implies done
                done_at = time.perf_counter()
            total_kernel = sum(k for k in kernels if k is not None)
            overhead = max(0.0, done_at - self._submitted_at - total_kernel)
            for index, (unit, kernel) in enumerate(zip(self._group.units, kernels)):
                if kernel is not None:
                    # One dispatch, one overhead: attributed once, so the
                    # cost model sees fusion's amortisation honestly.
                    self._backend._observe(
                        unit.plan.key, kernel, overhead if index == 0 else 0.0
                    )
        self._resolved = outcomes
        return self._resolved


class ProcessExecuteBackend:
    """Execute units on a ``ProcessPoolExecutor`` — real multi-core execution.

    Dispatches speak the **miss-only blob protocol**: plans and databases
    cross the pipe as content digests, not blobs.  Workers keep a
    digest-keyed resident cache, preloaded through the pool initializer
    with ``preload`` (typically the engine database) plus every plan blob
    memoised before the pool starts (the pool is created lazily on the
    first dispatch, so the first unit's plan is always preloaded).  A blob
    first seen *after* pool creation is shipped eagerly exactly once — it
    lands on one worker; any other worker that draws a later digest-only
    dispatch answers with a miss sentinel and the parent resubmits that one
    unit with full blobs (also how a respawned worker repopulates).  Steady
    state therefore ships only the workloads and the RNG child.

    Parameters
    ----------
    max_workers:
        Worker-process count.
    start_method:
        ``multiprocessing`` start method.  The default ``"spawn"`` is safe in
        the presence of engine/executor threads; ``"fork"`` starts faster on
        POSIX but clones the parent's thread-held locks.
    preload:
        Objects every worker must hold resident from birth (the engine
        passes its database).  Pickled once here; respawned workers re-run
        the initializer, so preloaded digests can never miss.
    blob_protocol:
        ``"miss-only"`` (default) as above; ``"always"`` re-ships the
        memoised blobs on every dispatch — the PR 3 behaviour, kept as the
        honest baseline ``benchmarks/bench_ipc.py`` measures the protocol
        against.
    observe:
        Optional cost-model hook ``observe(plan_key, kernel_seconds,
        dispatch_overhead_seconds)``, wired by the adaptive backend.
    metrics:
        Optional :class:`~repro.engine.observability.MetricsRegistry`;
        when set, each dispatch feeds per-dispatch bytes-shipped and
        serialisation-seconds histograms (the aggregate counters above
        stay available either way).
    respawn_budget / respawn_backoff:
        Broken-pool degradation policy: how many times a pool whose worker
        died (OOM-kill, SIGKILL) is replaced by a fresh one — re-preloading
        the memoised blobs through the pool initializer — and how long (in
        seconds, scaled by the attempt number) to back off before the
        replacement, so a crash loop cannot hot-spin worker spawns.  Past
        the budget the backend stops building pools and every unit runs
        inline on the flushing thread, permanently.  The dispatch that hit
        the broken pool still fails (its batch rolls back — re-running a
        unit that may have killed its worker inline could take the serving
        process down); the respawn serves *subsequent* flushes.
    """

    name = "process"
    #: Pipeline hint: this backend accepts fused :class:`ExecuteUnitGroup`
    #: dispatches via :meth:`submit_group`.
    fuses_units = True

    def __init__(
        self,
        max_workers: int,
        start_method: str = "spawn",
        preload: Sequence[object] = (),
        blob_protocol: str = "miss-only",
        observe: Optional[Callable[[PlanKey, float, float], None]] = None,
        metrics: Optional[MetricsRegistry] = None,
        respawn_budget: int = 1,
        respawn_backoff: float = 0.5,
    ) -> None:
        if blob_protocol not in ("miss-only", "always"):
            raise ValueError(
                f"Unknown blob protocol {blob_protocol!r}; "
                "expected 'miss-only' or 'always'"
            )
        self._max_workers = int(max_workers)
        self._context = multiprocessing.get_context(start_method)
        self._ship_always = blob_protocol == "always"
        self._observe = observe
        if metrics is not None:
            self._h_bytes = metrics.histogram(
                "engine_ipc_bytes_shipped",
                "Bytes handed to the worker pool per dispatch",
                buckets=DEFAULT_BYTE_BUCKETS,
                backend=self.name,
            )
            self._h_serialization = metrics.histogram(
                "engine_ipc_serialization_seconds",
                "Parent-side pickling time per dispatch",
                backend=self.name,
            )
        else:
            self._h_bytes = None
            self._h_serialization = None
        # The pool is created lazily (first dispatch) so its initializer can
        # preload everything memoised by then — see _ensure_pool.
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._closed = False
        # Broken-pool degradation: a pool whose worker died (OOM-kill,
        # SIGKILL, interpreter abort) is retired and — while the budget
        # lasts — lazily respawned by the next _ensure_pool, whose
        # initializer re-preloads the memoised blobs into every fresh
        # worker.  Once the budget is spent the backend refuses further
        # pools (RuntimeError from _ensure_pool), which the pipeline treats
        # like an engine close: units run inline, permanently.
        self._respawn_budget = max(0, int(respawn_budget))
        self._respawn_backoff = max(0.0, float(respawn_backoff))
        self._respawns = 0
        self._broken = False
        self._counter_lock = threading.Lock()
        self._dispatches = 0
        self._serialization_seconds = 0.0
        self._bytes_shipped = 0
        self._preload_bytes = 0
        self._blob_cache_misses = 0
        self._resubmits = 0
        # Parent-side memo of plan pickles: a hot plan is serialised once,
        # then every later dispatch reuses the digest (and, under the
        # miss-only protocol, ships only that).
        self._blob_lock = threading.Lock()
        self._plan_blobs: "OrderedDict[PlanKey, Tuple[str, bytes]]" = OrderedDict()
        self._plan_blobs_maxsize = 32
        # Same for databases, which are immutable for the engine's lifetime
        # (full histogram for unsharded units, projected shard histograms
        # otherwise).  Keyed by object identity — each memo entry pins its
        # database, so a recycled id() can never alias.
        self._db_blobs: "OrderedDict[int, Tuple[Database, str, bytes]]" = OrderedDict()
        self._db_blobs_maxsize = 64
        #: Digests known to be resident somewhere in the pool: preloaded
        #: into every worker, or eagerly shipped to one.  Digest-only
        #: dispatches of anything else would miss deterministically, so the
        #: first dispatch of a new digest always carries its blob.
        self._shipped_digests: set = set()
        #: Preload objects are pickled lazily at pool creation, not here —
        #: an engine whose workload never earns a process dispatch must not
        #: pay a full-histogram pickle at construction time (and when it is
        #: paid, it is accounted in serialization_seconds like every other
        #: parent-side pickle).
        self._pending_preload: List[object] = list(preload)
        #: Preloads that are not databases still reach every worker through
        #: the initializer, they just cannot be recalled via _db_entry.
        self._extra_preload: List[Tuple[str, bytes]] = []

    # ------------------------------------------------------------- telemetry
    @property
    def dispatches(self) -> int:
        """Number of work units shipped to worker processes so far
        (protocol resubmits after a blob miss are counted separately)."""
        with self._counter_lock:
            return self._dispatches

    @property
    def serialization_seconds(self) -> float:
        """Total parent-side wall-clock spent pickling plans and payloads."""
        with self._counter_lock:
            return self._serialization_seconds

    @property
    def bytes_shipped(self) -> int:
        """Total bytes handed to the pool across all dispatches and
        resubmits (pool-initializer preload bytes are counted separately —
        they are paid per worker spawn, not per dispatch)."""
        with self._counter_lock:
            return self._bytes_shipped

    @property
    def preload_bytes(self) -> int:
        """Bytes each spawned worker re-hydrates via the pool initializer."""
        with self._counter_lock:
            return self._preload_bytes

    @property
    def blob_cache_misses(self) -> int:
        """Worker-side resident-cache misses (one per missing blob kind)."""
        with self._counter_lock:
            return self._blob_cache_misses

    @property
    def resubmits(self) -> int:
        """Dispatches re-sent with full blobs after a worker-side miss."""
        with self._counter_lock:
            return self._resubmits

    @property
    def pool_respawns(self) -> int:
        """Times a broken worker pool was replaced by a fresh one."""
        with self._pool_lock:
            return self._respawns

    @property
    def fusion_slots(self) -> int:
        """Pool width the pipeline balances fused groups across."""
        return self._max_workers

    # ------------------------------------------------------------------ blobs
    def _plan_entry(self, plan: CachedPlan) -> Tuple[str, bytes]:
        with self._blob_lock:
            entry = self._plan_blobs.get(plan.key)
            if entry is not None:
                self._plan_blobs.move_to_end(plan.key)
                return entry
        try:
            blob = pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise _PlanSerialisationError(
                f"plan {plan.key!r} cannot cross the process boundary: {exc}"
            ) from exc
        digest = _blob_digest(blob)
        with self._blob_lock:
            self._plan_blobs[plan.key] = (digest, blob)
            self._plan_blobs.move_to_end(plan.key)
            while len(self._plan_blobs) > self._plan_blobs_maxsize:
                self._plan_blobs.popitem(last=False)
        return digest, blob

    def _db_entry(self, database: Database) -> Tuple[str, bytes]:
        key = id(database)
        with self._blob_lock:
            entry = self._db_blobs.get(key)
            if entry is not None and entry[0] is database:
                self._db_blobs.move_to_end(key)
                return entry[1], entry[2]
        blob = pickle.dumps(database, protocol=pickle.HIGHEST_PROTOCOL)
        digest = _blob_digest(blob)
        with self._blob_lock:
            self._db_blobs[key] = (database, digest, blob)
            self._db_blobs.move_to_end(key)
            while len(self._db_blobs) > self._db_blobs_maxsize:
                self._db_blobs.popitem(last=False)
        return digest, blob

    def _ensure_pool(self) -> Tuple[ProcessPoolExecutor, bool]:
        """The worker pool (plus whether this call created it).

        Lazy creation is what makes the initializer useful: by the first
        dispatch the blob memos already hold the engine database and the
        first unit's plan, so every worker the pool ever spawns —
        including crash respawns — starts with them resident.  The creation
        flag lets the creating dispatch skip its cost-model overhead
        observation (worker spawn is a one-off cost, not a per-dispatch
        one).
        """
        with self._pool_lock:
            if self._closed:
                raise RuntimeError("cannot schedule new futures after shutdown")
            if self._broken:
                # Plain RuntimeError, NOT BrokenExecutor: the pipeline maps
                # this to its closed-backend path — run the unit inline —
                # which is the permanent fallback the budget exhaustion
                # demands (the charge stands either way).
                raise RuntimeError(
                    "process worker pool broke and its respawn budget "
                    f"({self._respawn_budget}) is exhausted; executing inline"
                )
            created = self._pool is None
            if created:
                self._materialise_preload()
                with self._blob_lock:
                    resident = (
                        [(digest, blob) for digest, blob in self._plan_blobs.values()]
                        + [
                            (digest, blob)
                            for _, digest, blob in self._db_blobs.values()
                        ]
                        + list(self._extra_preload)
                    )
                self._pool = ProcessPoolExecutor(
                    max_workers=self._max_workers,
                    mp_context=self._context,
                    initializer=_preload_worker,
                    initargs=(resident,),
                )
                preloaded = sum(len(blob) for _, blob in resident)
                with self._counter_lock:
                    self._preload_bytes = preloaded
                self._shipped_digests.update(digest for digest, _ in resident)
            return self._pool, created

    def _materialise_preload(self) -> None:
        """Pickle any still-pending preload objects into the blob memos.

        Runs once, at pool creation (caller holds the pool lock).  A
        preload database the first dispatch already memoised via
        ``_db_entry`` is a no-op here — entries are keyed by object
        identity, so nothing is pickled twice.
        """
        pending, self._pending_preload = self._pending_preload, []
        if not pending:
            return
        started = time.perf_counter()
        for obj in pending:
            if isinstance(obj, Database):
                self._db_entry(obj)
            else:
                blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
                self._extra_preload.append((_blob_digest(blob), blob))
        with self._counter_lock:
            self._serialization_seconds += time.perf_counter() - started

    def _note_broken_pool(self) -> None:
        """React to a ``BrokenExecutor``: retire the pool, maybe respawn.

        Every in-flight future of a broken pool raises, so this runs once
        per *pool*, not once per failure: the first caller retires the pool
        (and pays the backoff); latecomers find it already gone and return.
        The retired workers took their resident blob caches with them, so
        the shipped-digest memo is cleared — the next dispatch to a fresh
        pool re-ships eagerly, and the pool initializer re-preloads every
        memoised blob anyway.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
            if pool is None or self._closed or self._broken:
                backoff = 0.0
            elif self._respawns < self._respawn_budget:
                self._respawns += 1
                backoff = self._respawn_backoff * self._respawns
                logger.warning(
                    "process worker pool broke; respawning (attempt %d of "
                    "%d) after %.2fs backoff",
                    self._respawns,
                    self._respawn_budget,
                    backoff,
                )
            else:
                self._broken = True
                backoff = 0.0
                logger.warning(
                    "process worker pool broke with the respawn budget "
                    "(%d) exhausted; falling back to inline execution "
                    "permanently",
                    self._respawn_budget,
                )
        if pool is not None:
            pool.shutdown(wait=False)
            with self._blob_lock:
                self._shipped_digests.clear()
        if backoff > 0.0:
            time.sleep(backoff)

    def _await_future(self, future, timeout: Optional[float] = None):
        """``future.result`` that retires the pool on ``BrokenExecutor``."""
        try:
            return future.result(timeout)
        except BrokenExecutor:
            self._note_broken_pool()
            raise

    def _ship_blob(self, digest: str, blob: bytes) -> Optional[bytes]:
        """Decide whether this dispatch carries the blob or the digest alone."""
        if self._ship_always:
            return blob
        with self._blob_lock:
            if digest in self._shipped_digests:
                return None
            self._shipped_digests.add(digest)
        return blob

    # ----------------------------------------------------------------- submit
    def submit(self, unit: ExecuteUnit) -> _ProcessDispatch:
        """Serialise and ship one unit; raises ``RuntimeError`` once closed.

        Plan and database pickles are memoised (both are immutable for the
        engine's lifetime) and, under the miss-only protocol, cross the pipe
        at most once — a steady-state dispatch serialises and ships only
        the workloads and the RNG child.  Serialisation failures (e.g. a
        plan holding an unpicklable custom estimator factory) raise here,
        *before* anything is scheduled — the pipeline turns that into a
        rolled-back batch, exactly like a mechanism failure.
        """
        started = time.perf_counter()
        plan_digest, plan_blob = self._plan_entry(unit.plan)
        db_digest, db_blob = self._db_entry(unit.database)
        payload_blob = pickle.dumps(
            (unit.workloads, unit.rng, unit.want_noise),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        elapsed = time.perf_counter() - started
        pool, pool_created = self._ensure_pool()  # first pool preloads the memos
        ship_plan = self._ship_blob(plan_digest, plan_blob)
        ship_db = self._ship_blob(db_digest, db_blob)
        try:
            future = pool.submit(
                _execute_shipped,
                plan_digest,
                ship_plan,
                db_digest,
                ship_db,
                payload_blob,
            )
        except BrokenExecutor:
            self._note_broken_pool()
            raise
        shipped = (
            len(payload_blob)
            + len(plan_digest)
            + len(db_digest)
            + (len(ship_plan) if ship_plan is not None else 0)
            + (len(ship_db) if ship_db is not None else 0)
        )
        with self._counter_lock:
            self._dispatches += 1
            self._serialization_seconds += elapsed
            self._bytes_shipped += shipped
        if self._h_bytes is not None:
            self._h_bytes.observe(shipped)
            self._h_serialization.observe(elapsed)
        return _ProcessDispatch(self, unit, future, started, observe=not pool_created)

    def submit_group(self, group: ExecuteUnitGroup) -> _ProcessGroupDispatch:
        """Serialise and ship one fused group as a single worker task.

        One IPC round trip executes every member kernel back-to-back in one
        worker — the per-unit protocol cost (payload pickle framing, queue
        hop, future round trip) is paid once per group instead of once per
        unit.  Plans and databases still cross as content digests under the
        miss-only protocol; each distinct blob is shipped at most once even
        when several members share it.
        """
        started = time.perf_counter()
        metas: List[Tuple[str, str]] = []
        blobs: Dict[str, bytes] = {}
        for unit in group.units:
            plan_digest, plan_blob = self._plan_entry(unit.plan)
            db_digest, db_blob = self._db_entry(unit.database)
            metas.append((plan_digest, db_digest))
            blobs.setdefault(plan_digest, plan_blob)
            blobs.setdefault(db_digest, db_blob)
        payload_blob = pickle.dumps(
            [(unit.workloads, unit.rng, unit.want_noise) for unit in group.units],
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        elapsed = time.perf_counter() - started
        pool, pool_created = self._ensure_pool()
        to_ship = {
            digest: blob
            for digest, blob in blobs.items()
            if self._ship_blob(digest, blob) is not None
        }
        members = tuple(
            (plan_digest, to_ship.get(plan_digest), db_digest, to_ship.get(db_digest))
            for plan_digest, db_digest in metas
        )
        try:
            future = pool.submit(_execute_shipped_group, members, payload_blob)
        except BrokenExecutor:
            self._note_broken_pool()
            raise
        shipped = (
            len(payload_blob)
            + sum(len(plan_digest) + len(db_digest) for plan_digest, db_digest in metas)
            + sum(len(blob) for blob in to_ship.values())
        )
        with self._counter_lock:
            self._dispatches += 1
            self._serialization_seconds += elapsed
            self._bytes_shipped += shipped
        if self._h_bytes is not None:
            self._h_bytes.observe(shipped)
            self._h_serialization.observe(elapsed)
        return _ProcessGroupDispatch(
            self, group, future, started, observe=not pool_created
        )

    # --------------------------------------------------------------- protocol
    def _recover_miss(
        self,
        unit: ExecuteUnit,
        miss: _BlobMiss,
        dispatch: _ProcessDispatch,
        timeout: Optional[float] = None,
    ):
        """Resubmit one missed unit with blobs (the slow, corrective path).

        The worker refused before unpickling the RNG payload, so re-sending
        the identical payload draws exactly the noise the first attempt
        would have — determinism never depends on the miss path.  The first
        resubmission ships only the blobs the worker reported missing (a
        respawned worker keeps its initializer preload — re-shipping a
        multi-megabyte database it still holds would double the recovery
        cost for nothing); on a multi-worker pool it may land on a worker
        missing the *other* blob, so a second miss escalates to shipping
        everything — two rounds guarantee progress.  Each resubmission also
        re-populates whichever worker picks it up.
        """
        logger.info(
            "blob miss on process dispatch for plan %s (missing: %s); "
            "resubmitting with full blobs",
            unit.plan.key,
            ", ".join(miss.missing),
        )
        started = time.perf_counter()
        plan_digest, plan_blob = self._plan_entry(unit.plan)
        db_digest, db_blob = self._db_entry(unit.database)
        payload_blob = pickle.dumps(
            (unit.workloads, unit.rng, unit.want_noise),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with self._counter_lock:
            self._serialization_seconds += time.perf_counter() - started
        rounds = (
            (
                plan_blob if "plan" in miss.missing else None,
                db_blob if "database" in miss.missing else None,
            ),
            (plan_blob, db_blob),
        )
        for ship_plan, ship_db in rounds:
            round_wall = time.time()
            with self._counter_lock:
                self._blob_cache_misses += len(miss.missing)
                self._resubmits += 1
            with self._blob_lock:
                # The miss proves a worker dropped (or never had) these
                # digests: forget they were shipped, so after this recovery
                # the next regular dispatch re-ships them eagerly — one
                # fat hop — instead of risking another two-hop miss round
                # trip (the thrashing regime when the working set outgrows
                # the worker resident cache).
                if "plan" in miss.missing:
                    self._shipped_digests.discard(plan_digest)
                if "database" in miss.missing:
                    self._shipped_digests.discard(db_digest)
            try:
                pool, _ = self._ensure_pool()
                future = pool.submit(
                    _execute_shipped,
                    plan_digest,
                    ship_plan,
                    db_digest,
                    ship_db,
                    payload_blob,
                )
            except BrokenExecutor:
                self._note_broken_pool()
                raise
            except RuntimeError:
                # Backend closed between the miss and the resubmit: the
                # charge already stands, so the paid-for release happens
                # inline (same engine-close semantics as execute_unit_via).
                logger.warning(
                    "process backend closed during blob-miss recovery; "
                    "running unit for plan %s inline on the calling thread",
                    unit.plan.key,
                )
                inline_wall = time.time()
                inline_started = time.perf_counter()
                vectors, model = run_unit(
                    unit.plan,
                    unit.workloads,
                    unit.database,
                    unit.rng,
                    unit.want_noise,
                )
                kernel = time.perf_counter() - inline_started
                span = {
                    "kind": "inline",
                    "pid": os.getpid(),
                    "start": inline_wall,
                    "end": inline_wall + kernel,
                }
                return vectors, model, kernel, span
            future.add_done_callback(dispatch._stamp_done)
            with self._counter_lock:
                self._bytes_shipped += (
                    len(payload_blob)
                    + len(plan_digest)
                    + len(db_digest)
                    + (len(ship_plan) if ship_plan is not None else 0)
                    + (len(ship_db) if ship_db is not None else 0)
                )
            value = self._await_future(future, timeout)
            if not isinstance(value, _BlobMiss):
                return value
            miss = value
            dispatch.protocol_hops.append(
                {
                    "kind": "blob-miss",
                    "missing": list(miss.missing),
                    "start": round_wall,
                    "end": time.time(),
                }
            )
        raise RuntimeError(  # pragma: no cover - protocol invariant
            f"worker reported {miss.missing} missing although every blob was "
            "shipped with the final resubmission"
        )

    def _recover_group_miss(
        self,
        group: ExecuteUnitGroup,
        miss: _BlobMiss,
        dispatch: _ProcessGroupDispatch,
        timeout: Optional[float] = None,
    ):
        """Resubmit one missed group with every blob attached.

        Group misses name the missing *digests*.  Unlike the per-unit
        recovery's two-round escalation, a group touches many digests at
        once, so the single corrective round ships **all** of them — a
        worker holding everything it is handed cannot miss again.  The RNG
        payload of the first attempt was never unpickled, so the retry
        draws identical noise.
        """
        logger.info(
            "blob miss on fused process dispatch of %d units (missing %d "
            "digests); resubmitting with full blobs",
            len(group.units),
            len(miss.missing),
        )
        started = time.perf_counter()
        members = []
        for unit in group.units:
            plan_digest, plan_blob = self._plan_entry(unit.plan)
            db_digest, db_blob = self._db_entry(unit.database)
            members.append((plan_digest, plan_blob, db_digest, db_blob))
        payload_blob = pickle.dumps(
            [(unit.workloads, unit.rng, unit.want_noise) for unit in group.units],
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with self._counter_lock:
            self._serialization_seconds += time.perf_counter() - started
            self._blob_cache_misses += len(miss.missing)
            self._resubmits += 1
        with self._blob_lock:
            # Same thrash-avoidance as the per-unit recovery: the missing
            # digests re-ship eagerly on the next regular dispatch too.
            for digest in miss.missing:
                self._shipped_digests.discard(digest)
        try:
            pool, _ = self._ensure_pool()
            future = pool.submit(_execute_shipped_group, tuple(members), payload_blob)
        except BrokenExecutor:
            self._note_broken_pool()
            raise
        except RuntimeError:
            # Backend closed between the miss and the resubmit: finish the
            # paid-for group inline (same engine-close semantics as the
            # per-unit path).
            logger.warning(
                "process backend closed during fused blob-miss recovery; "
                "running %d units inline on the calling thread",
                len(group.units),
            )
            inline_wall = time.time()
            outcomes, kernels = run_unit_group(group)
            span = {
                "kind": "inline",
                "pid": os.getpid(),
                "start": inline_wall,
                "end": time.time(),
                "fused_units": len(group.units),
            }
            return outcomes, kernels, span
        future.add_done_callback(dispatch._stamp_done)
        with self._counter_lock:
            self._bytes_shipped += len(payload_blob) + sum(
                len(plan_digest) + len(plan_blob) + len(db_digest) + len(db_blob)
                for plan_digest, plan_blob, db_digest, db_blob in members
            )
        value = self._await_future(future, timeout)
        if isinstance(value, _BlobMiss):  # pragma: no cover - protocol invariant
            raise RuntimeError(
                f"worker reported {value.missing} missing although every blob "
                "was shipped with the fused resubmission"
            )
        return value

    def _observe_dispatch(
        self, plan_key: PlanKey, kernel_seconds: float, dispatch: _ProcessDispatch
    ) -> None:
        """Feed the cost model (when wired): kernel EWMA + dispatch overhead."""
        if self._observe is None:
            return
        done_at = dispatch._done_at
        if done_at is None:  # pragma: no cover - result() implies done
            done_at = time.perf_counter()
        overhead = max(0.0, done_at - dispatch._submitted_at - kernel_seconds)
        self._observe(plan_key, kernel_seconds, overhead)

    # -------------------------------------------------------------- lifecycle
    def reset_resident_caches(self) -> int:
        """Drop worker resident caches back to their initializer preload.

        Test/benchmark hook simulating worker respawns (what really happens
        after a crash): everything shipped since pool creation is forgotten
        by the workers and must be recovered through the miss path — the
        parent, like with a real respawn, keeps dispatching digest-only
        until a miss corrects it.  One reset task is submitted per worker;
        an idle pool may run several on the same worker, so the simulation
        is only deterministic with ``max_workers=1``.  Returns the number
        of reset tasks run.
        """
        pool, _ = self._ensure_pool()
        futures = [
            pool.submit(_reset_worker_resident) for _ in range(self._max_workers)
        ]
        # The parent's shipped-digest memo is deliberately NOT touched: a
        # real respawn is invisible to the parent too, so later dispatches
        # keep going digest-only and recover through the miss path — which
        # is exactly what this hook exists to exercise.
        return sum(1 for future in futures if future.result())

    def close(self, wait: bool = True) -> None:
        """Shut the worker processes down; subsequent submits raise.

        Also drops the parent-side blob memos: the database memo pins
        :class:`~repro.core.database.Database` objects (and their
        histograms), which must not outlive the backend.
        """
        with self._pool_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait)
        with self._blob_lock:
            self._plan_blobs.clear()
            self._db_blobs.clear()
            self._pending_preload.clear()
            self._extra_preload.clear()
            self._shipped_digests.clear()


class AdaptiveExecuteBackend:
    """Cost-aware router: each unit runs inline, on threads, or on processes.

    ``execute_backend="adaptive"`` makes dispatch a *measured* decision
    instead of a static configuration: an :class:`ExecuteCostModel` tracks
    how long each plan's kernels actually take (EWMA per plan key, observed
    wherever units run — the process protocol ships the measurement back
    with the answers) and what each pool's dispatches actually cost on top
    (serialisation + IPC + future round trip).  A unit is dispatched only
    when its estimated kernel clearly dominates the pool's overhead;
    otherwise it runs inline on the flushing thread — so tiny units never
    pay IPC, heavy sharded batches still fan out across cores, and the
    choice keeps tracking the workload as it shifts.

    Determinism is untouched: routing picks *where* a unit runs after its
    RNG child is already fixed, so a seeded engine draws bit-identical
    noise under ``"adaptive"``, ``"thread"``, ``"process"`` and inline —
    and ε ledgers never depend on the backend at all.

    The inner process pool inherits ``preload`` (the engine database) and
    the miss-only blob protocol; both pools are created lazily, so an
    adaptive engine whose workload never earns a dispatch never pays for
    worker processes.
    """

    name = "adaptive"
    #: Pipeline hint: submit every unit (even a lone one) through this
    #: backend with the ``flush_units`` context, instead of short-circuiting
    #: single-unit flushes inline — the router decides, observes and counts.
    routes_units = True
    #: Pipeline hint: this backend accepts fused :class:`ExecuteUnitGroup`
    #: dispatches via :meth:`submit_group`.
    fuses_units = True

    def __init__(
        self,
        max_workers: int,
        start_method: str = "spawn",
        preload: Sequence[object] = (),
        cost_model: Optional[ExecuteCostModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cost_model = cost_model if cost_model is not None else ExecuteCostModel()
        self._max_workers = int(max_workers)
        self._thread = ThreadExecuteBackend(
            int(max_workers), observe=self._observe_thread, metrics=metrics
        )
        self._process = ProcessExecuteBackend(
            int(max_workers),
            start_method=start_method,
            preload=preload,
            observe=self._observe_process,
            metrics=metrics,
        )
        self._counter_lock = threading.Lock()
        self._inline_runs = 0
        #: Plan keys whose own pickle failed once: re-attempting the
        #: (expensive, sparse-matrix) serialisation on every dispatch would
        #: lose the whole point of routing — they go straight to the thread
        #: pool.  Per-unit payload failures are NOT memoised here.
        self._process_rejected: set = set()
        self._closed = False

    # ------------------------------------------------------- cost-model wires
    def _observe_thread(self, plan_key: PlanKey, kernel: float, overhead: float) -> None:
        self.cost_model.observe_kernel(plan_key, kernel)
        self.cost_model.observe_overhead("thread", overhead)

    def _observe_process(self, plan_key: PlanKey, kernel: float, overhead: float) -> None:
        self.cost_model.observe_kernel(plan_key, kernel)
        self.cost_model.observe_overhead("process", overhead)

    # ------------------------------------------------------------- telemetry
    @property
    def fusion_slots(self) -> int:
        """Parallelism the pipeline's fusion pass should fill (worker count)."""
        return self._max_workers

    @property
    def dispatches(self) -> int:
        """Units handed to either pool (inline runs are counted separately)."""
        return self._thread.dispatches + self._process.dispatches

    @property
    def serialization_seconds(self) -> float:
        """Parent-side pickling time of the process-routed dispatches."""
        return self._process.serialization_seconds

    @property
    def bytes_shipped(self) -> int:
        """Bytes shipped by the process-routed dispatches."""
        return self._process.bytes_shipped

    @property
    def blob_cache_misses(self) -> int:
        """Worker resident-cache misses of the process-routed dispatches."""
        return self._process.blob_cache_misses

    @property
    def pool_respawns(self) -> int:
        """Broken-pool respawns of the inner process backend."""
        return self._process.pool_respawns

    @property
    def adaptive_inline(self) -> int:
        """Units the router kept on the flushing thread."""
        with self._counter_lock:
            return self._inline_runs

    @property
    def adaptive_dispatched(self) -> int:
        """Units the router fanned out to a pool (thread or process).

        Derived from the pools' own dispatch counters rather than tallied
        separately — two counters for one fact would only invite drift.
        """
        return self.dispatches

    # ----------------------------------------------------------------- submit
    def submit(self, unit: ExecuteUnit, flush_units: int = 1):
        """Route one unit of a ``flush_units``-unit flush and return a future.

        Inline-routed units execute synchronously on the calling thread —
        by construction they are cheaper than a dispatch, so the pipeline's
        submit loop loses nothing — and come back as an already-resolved
        future, keeping one contract for every route.  Raises
        ``RuntimeError`` once closed; a crashed process pool raises
        :class:`BrokenExecutor` exactly like the static backend.
        """
        if self._closed:
            raise RuntimeError("cannot schedule new futures after shutdown")
        route = self.cost_model.route(unit.plan.key, flush_units)
        if route == "process":
            with self._counter_lock:
                if unit.plan.key in self._process_rejected:
                    route = "thread"
        if route == "process":
            try:
                return self._process.submit(unit)
            except BrokenExecutor:
                raise
            except RuntimeError:
                raise
            except _PlanSerialisationError as exc:
                # The plan itself cannot cross the process boundary — ever.
                # Remember it so later dispatches skip the doomed (and
                # expensive) pickle attempt; the thread pool executes on
                # shared objects, so the unit is still servable.
                logger.warning(
                    "plan %s cannot cross the process boundary; routing it "
                    "to the thread pool from now on: %s",
                    unit.plan.key,
                    exc,
                )
                with self._counter_lock:
                    self._process_rejected.add(unit.plan.key)
                route = "thread"
            except Exception as exc:
                # Per-unit serialisation failure (workload/RNG payload):
                # degrade this unit to the thread pool without poisoning
                # the plan's process route.
                logger.warning(
                    "unit payload for plan %s failed to serialise; degrading "
                    "this unit to the thread pool: %s",
                    unit.plan.key,
                    exc,
                )
                route = "thread"
        if route == "thread":
            return self._thread.submit(unit)
        started = time.perf_counter()
        resolved: Future = Future()
        try:
            value = run_unit(
                unit.plan, unit.workloads, unit.database, unit.rng, unit.want_noise
            )
        except BaseException as exc:
            resolved.set_exception(exc)
        else:
            self.cost_model.observe_kernel(
                unit.plan.key, time.perf_counter() - started
            )
            resolved.set_result(value)
        with self._counter_lock:
            self._inline_runs += 1
        return resolved

    def submit_group(self, group: ExecuteUnitGroup, flush_units: int = 1):
        """Route one fused group of a ``flush_units``-unit flush.

        The group was fused precisely because the flush is oversubscribed,
        so the members share one routing decision (made on the first
        member's plan — fusion groups are config-compatible and in practice
        plan-homogeneous).  Inline-routed groups execute synchronously and
        come back as a resolved group handle; serialisation failures degrade
        the whole group to the thread pool, mirroring :meth:`submit`.
        """
        if self._closed:
            raise RuntimeError("cannot schedule new futures after shutdown")
        route = self.cost_model.route(group.units[0].plan.key, flush_units)
        if route == "process":
            with self._counter_lock:
                if any(
                    unit.plan.key in self._process_rejected for unit in group.units
                ):
                    route = "thread"
        if route == "process":
            try:
                return self._process.submit_group(group)
            except BrokenExecutor:
                raise
            except RuntimeError:
                raise
            except _PlanSerialisationError as exc:
                logger.warning(
                    "a plan in a fused group of %d units cannot cross the "
                    "process boundary; routing the group to the thread pool: %s",
                    len(group.units),
                    exc,
                )
                route = "thread"
            except Exception as exc:
                logger.warning(
                    "payload of a fused group of %d units failed to "
                    "serialise; degrading the group to the thread pool: %s",
                    len(group.units),
                    exc,
                )
                route = "thread"
        if route == "thread":
            return self._thread.submit_group(group)
        outcomes, kernels = run_unit_group(group)
        for unit, kernel in zip(group.units, kernels):
            if kernel is not None:
                self.cost_model.observe_kernel(unit.plan.key, kernel)
        with self._counter_lock:
            self._inline_runs += len(group.units)
        return _GroupHandle.resolved(outcomes, kernels)

    def close(self, wait: bool = True) -> None:
        """Shut both pools down; subsequent submits raise ``RuntimeError``."""
        self._closed = True
        self._thread.close(wait=wait)
        self._process.close(wait=wait)


def create_execute_backend(
    backend: str,
    max_workers: int,
    process_start_method: str = "spawn",
    preload: Sequence[object] = (),
    cost_model: Optional[ExecuteCostModel] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Optional[object]:
    """Build the execute backend the engine was configured with.

    Returns ``None`` for ``max_workers`` of 1 or less — the pipeline then
    executes inline on the flushing thread, exactly as without a pool.
    ``preload`` (the engine database) and ``cost_model`` only apply to the
    process-capable backends; ``metrics`` wires per-dispatch histograms
    (queue wait, bytes shipped, serialisation time) into whichever backend
    is built.
    """
    if backend not in ("thread", "process", "adaptive"):
        raise ValueError(
            f"Unknown execute backend {backend!r}; "
            "expected 'thread', 'process' or 'adaptive'"
        )
    if max_workers is None or int(max_workers) <= 1:
        return None
    if backend == "thread":
        return ThreadExecuteBackend(max_workers=int(max_workers), metrics=metrics)
    if backend == "process":
        return ProcessExecuteBackend(
            max_workers=int(max_workers),
            start_method=process_start_method,
            preload=preload,
            metrics=metrics,
        )
    return AdaptiveExecuteBackend(
        max_workers=int(max_workers),
        start_method=process_start_method,
        preload=preload,
        cost_model=cost_model,
        metrics=metrics,
    )
