"""The four-stage flush pipeline: **plan → charge → execute → resolve**.

PR 1's engine held one big lock across the whole flush — sound, but fully
serialising: under concurrent clients the batch executor's throughput win
evaporated because planning *and* mechanism execution sat inside the critical
section.  This module narrows the locking to the transactional parts only,
mirroring the HTAP separation of transactional and analytical paths:

1. **plan** — lock-free.  Plans are memoised in signature-keyed caches
   (:class:`~repro.engine.PlanCache`, per-shard caches) whose internal locks
   cover only the dict lookup; actual planning runs outside any lock.  The
   sharded scatter decision (:mod:`repro.engine.sharding`) happens here too.
2. **charge** — under the *narrowed accountant lock* (the per-ledger lock
   inside :class:`~repro.accounting.PrivacyAccountant`), held only for the
   microseconds of a check-then-append.  Refusals resolve tickets
   immediately; admissions record the charged operation for rollback.
3. **execute** — outside any lock.  ``Mechanism.answer_batch`` runs on the
   flushing thread, or the batch work is cut into
   :class:`~repro.engine.parallel.ExecuteUnit` work units (one per unsharded
   batch, one per touched shard of a sharded batch) and dispatched to the
   engine's execute backend — an in-process thread pool, a **process
   pool** that runs mechanism kernels across cores, or the **adaptive
   router** that sends each unit wherever its measured cost model says it
   runs cheapest (:mod:`repro.engine.parallel`).  Every unit gets its own
   spawned RNG
   child stream with the same derivation on every backend, so a seeded
   engine draws identical noise under ``"thread"`` and ``"process"``.  A
   failure here rolls every charge of the batch back via
   :meth:`~repro.accounting.PrivacyAccountant.rollback` — nothing was
   released, so nothing may be billed.
4. **resolve** — back under the (stats/cache) locks: ticket statuses, session
   counters, answer-cache writes tagged with the batch's draw id, and the
   per-stage timing accumulators.

Concurrent flushes are linearised only where they must be: budget ledgers
(accountant lock), cache maps (their own locks) and counters (stats lock).
Two racing flushes may both *pay* for the same never-before-seen query — a
cache-miss race costs budget efficiency, never privacy, and the
deadline-batched front-end (:class:`~repro.engine.BatchingExecutor`) makes it
rare by funnelling concurrent submissions into shared flushes.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.workload import Workload
from ..exceptions import (
    DeadlineExpiredError,
    MechanismError,
    PrivacyBudgetError,
    QueryCancelledError,
)
from ..mechanisms.base import NoiseModel
from ..policy.graph import PolicyGraph
from .durability.faults import fault_point
from .parallel import ExecuteUnit, ExecuteUnitGroup, run_unit, run_unit_group
from .plan_cache import CachedPlan
from .session import ClientSession
from .sharding import ShardScatter, ShardSet
from .signature import answer_key, plan_key
from .waiters import TicketLifecycle, TicketWaiter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .engine import PrivateQueryEngine
    from .observability import Trace

logger = logging.getLogger(__name__)

PENDING = "pending"
ANSWERED = "answered"
REFUSED = "refused"
#: Terminal status of a ticket the client gave up on (:meth:`QueryTicket.cancel`).
#: Work already charged keeps its ε; not-yet-charged work spends nothing.
CANCELLED = "cancelled"
#: Terminal status of a ticket whose deadline passed before the charge stage.
#: Always zero ε: the pipeline drops expired tickets *before* charging.
EXPIRED = "expired"

#: The stages whose wall-clock is tracked by :class:`~repro.engine.EngineStats`.
STAGES = ("plan", "charge", "execute", "resolve")


@dataclass
class QueryTicket:
    """Handle on one submitted query; resolved by :meth:`PrivateQueryEngine.flush`.

    Tickets are also the synchronisation point of the concurrent front-ends.
    Completion notification is waiter-abstracted
    (:class:`~repro.engine.waiters.TicketLifecycle`): :meth:`wait` blocks a
    thread on the lazily-created thread waiter — how
    :meth:`BatchingExecutor.ask` turns deadline-batched execution back into a
    blocking call — while an event-loop front-end attaches a
    :class:`~repro.engine.serving.LoopTicketWaiter` via :meth:`add_waiter`
    and awaits the resolution instead of parking a thread on it.
    """

    ticket_id: int
    client_id: str
    workload: Workload
    policy: PolicyGraph
    epsilon: float
    #: The session the query was submitted under.  Charges always go to THIS
    #: session — closing and reopening a client id between submit and flush
    #: must never bill the new session for the old session's query.
    session: ClientSession = field(repr=False, default=None)  # type: ignore[assignment]
    partition: Optional[frozenset] = None
    status: str = PENDING
    answers: Optional[np.ndarray] = None
    from_cache: bool = False
    error: Optional[str] = None
    #: Identifier of the mechanism invocation that produced the answer.
    #: Batch-mates share a draw id because their noise came from one
    #: invocation — the correlation the road-mapped GLS consolidation needs.
    #: Set whenever the answer came from exactly one invocation (unsharded,
    #: or sharded touching a single shard — then it equals that shard's
    #: entry in the mapping below); ``None`` only for answers gathered from
    #: several per-shard invocations, where no single draw exists.
    draw_id: Optional[int] = None
    #: Sharded answers: ``{shard index: draw id}`` — one id per per-shard
    #: mechanism invocation.  Batch-mates touching the same shard share that
    #: shard's id; the per-shard resolution is exactly what generalised
    #: least squares over the draw correlation structure needs.
    shard_draw_ids: Optional[Dict[int, int]] = None
    #: ``perf_counter`` stamp taken at submit — the queue-wait metric
    #: (submission → flush pickup) is derived from it when observability is
    #: enabled.  Zero for tickets constructed outside the engine.
    submitted_at: float = 0.0
    #: Absolute ``time.monotonic()`` deadline (``None`` = no deadline).  The
    #: pipeline drops tickets whose deadline passed *before* the charge
    #: stage, so an expired query spends zero ε.
    deadline: Optional[float] = None
    #: Engine counter bumped by :meth:`cancel` — stamped at submit so the
    #: ticket can count its own cancellation without holding an engine ref.
    _cancel_counter: Optional[object] = field(default=None, repr=False, compare=False)
    _lifecycle: TicketLifecycle = field(
        default_factory=TicketLifecycle, repr=False, compare=False
    )

    def done(self) -> bool:
        """``True`` once the ticket reached a terminal status."""
        return self._lifecycle.resolved

    def expired(self, now: Optional[float] = None) -> bool:
        """``True`` when the ticket carries a deadline that has passed."""
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline

    def _claim(self) -> bool:
        """Reserve the right to resolve this ticket; first finisher wins."""
        return self._lifecycle.claim()

    def cancel(self) -> bool:
        """Resolve the ticket to ``cancelled``; ``False`` when too late.

        Cancellation races the flush pipeline through the lifecycle's claim
        latch: whoever claims first owns the resolution.  A successful
        cancel guarantees the query will never be charged (the pipeline
        skips unclaimable tickets before the charge stage); a ``False``
        return means the pipeline already owns the ticket — it may be
        mid-charge or resolved, and any ε it spends stands.  No refunds:
        the ledger never rewinds for a bored caller.
        """
        if not self._lifecycle.claim():
            return False
        self.status = CANCELLED
        self.error = (
            f"Ticket {self.ticket_id} (client {self.client_id!r}) was "
            "cancelled by the client before it resolved"
        )
        counter = self._cancel_counter
        if counter is not None:
            counter.inc()
        self._lifecycle.resolve()
        return True

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the ticket is resolved; returns :meth:`done`."""
        return self._lifecycle.thread_waiter().wait(timeout)

    def add_waiter(self, waiter: TicketWaiter) -> bool:
        """Attach a completion waiter; ``True`` when it was notified inline.

        Each attached waiter's ``notify`` is delivered exactly once, on
        whichever thread's flush resolves the ticket (immediately when the
        ticket already resolved).  This is the hook the asyncio front-end
        uses to await tickets without a thread per client.
        """
        return self._lifecycle.add_waiter(waiter)

    def _notify_resolved(self) -> None:
        """Terminal-status latch: wake every waiter exactly once."""
        self._lifecycle.resolve()

    def result(self) -> np.ndarray:
        """The noisy answers; raises when the query was refused or is pending."""
        if self.status == ANSWERED:
            assert self.answers is not None
            return self.answers
        if self.status == REFUSED:
            raise PrivacyBudgetError(
                self.error
                or f"Query was refused (ticket {self.ticket_id}, "
                f"client {self.client_id!r})"
            )
        if self.status == CANCELLED:
            raise QueryCancelledError(self)
        if self.status == EXPIRED:
            raise DeadlineExpiredError(self)
        raise MechanismError(
            f"Ticket {self.ticket_id} is still pending; call PrivateQueryEngine.flush()"
        )


AnswerKeyT = Tuple[str, str, str]


@dataclass
class TicketNoise:
    """One ticket's slice of its invocation(s)' honest noise metadata.

    ``stds`` covers the ticket's full answer vector; ``basis`` is the
    unsharded invocation's factor rows, ``shard_bases`` maps shard index →
    factor rows (each shard invocation has its own independent factor
    space).  Factor columns are shared with batch-mates of the same
    invocation, which is what lets the answer cache correlate them.
    """

    stds: np.ndarray
    basis: Optional[sp.csr_matrix] = None
    shard_bases: Optional[Dict[int, sp.csr_matrix]] = None


@dataclass
class PlannedBatch:
    """One compatible ``(policy, epsilon, config)`` group moving through the stages."""

    tickets: List[QueryTicket]
    epsilon: float
    #: Unsharded plan (set when the batch takes the unsharded path).
    entry: Optional[CachedPlan] = None
    #: Sharded path: the policy's shard set plus one scatter per ticket.
    shard_set: Optional[ShardSet] = None
    scatters: Optional[Dict[int, ShardScatter]] = None
    #: Set when planning itself failed — every ticket refuses, nothing charges.
    plan_error: Optional[str] = None
    admitted: List[QueryTicket] = field(default_factory=list)
    charged: List[Tuple[ClientSession, object]] = field(default_factory=list)
    #: Set when execution failed — charges roll back, admitted tickets refuse.
    execute_error: Optional[str] = None
    #: Per-admitted-ticket answer vectors (aligned with ``admitted``).
    results: Optional[List[np.ndarray]] = None
    #: Per-admitted-ticket honest noise metadata (aligned with ``admitted``;
    #: ``None`` entries mark tickets whose mechanism declared no model).
    noise: Optional[List[Optional[TicketNoise]]] = None
    invocations: int = 0
    #: Sharded path: the sorted shard indices that were invoked, in the
    #: order execution ran them — one draw id is allocated per entry at
    #: resolve time.
    shard_indices: Optional[List[int]] = None

    @property
    def sharded(self) -> bool:
        """``True`` when the batch executes via scatter/gather."""
        return self.scatters is not None


class FlushPipeline:
    """Stage driver for one engine; stateless between flushes.

    All mutable state lives on the engine (counters, caches, accountants) or
    on the tickets themselves, so any number of threads may run pipelines
    concurrently.
    """

    def __init__(self, engine: "PrivateQueryEngine") -> None:
        self._engine = engine

    # --------------------------------------------------------- observability
    def _obs_flush_begin(self, tickets: List[QueryTicket]):
        """Strippable flush-observation hook: queue waits + open the trace.

        Returns ``None`` when observability is disabled (the single branch a
        disabled engine pays here) or a ``(trace, perf_counter start)``
        context otherwise.  ``bench_observability.py`` subclasses the
        pipeline with this hook (and :meth:`_obs_flush_end`) stubbed out to
        measure the instrumentation's true floor.
        """
        obs = self._engine._observability
        if obs is None or not obs.enabled:
            return None
        started = time.perf_counter()
        queue_wait = self._engine._h_queue_wait
        for ticket in tickets:
            if ticket.submitted_at:
                queue_wait.observe(max(0.0, started - ticket.submitted_at))
        return obs.start_trace("flush", tickets=len(tickets)), started

    def _obs_flush_end(self, context) -> None:
        """Close the flush trace and record the flush-latency sample."""
        if context is None:
            return
        trace, started = context
        self._engine._h_flush.observe(time.perf_counter() - started)
        if trace is not None:
            trace.finish()

    def _obs_unit_done(
        self,
        trace: Optional["Trace"],
        unit: ExecuteUnit,
        submitted_wall: float,
        future,
        parent=None,
    ) -> None:
        """Record one executed unit: kernel-seconds sample + unit span tree.

        The histogram is keyed by a short plan-signature label; the sample
        is the worker-measured kernel when the future carries one (process
        dispatches ship it back), the parent-observed round trip otherwise.
        The unit span adopts any protocol hops the dispatch accumulated —
        worker execution, blob-miss round trips, closed-pool inline runs —
        as child spans, which is how worker-process spans join the flush's
        tree.
        """
        obs = self._engine._observability
        if obs is None or not obs.enabled:
            return
        end_wall = time.time()
        key = unit.plan.key
        label = f"{key[1][:12]}/{key[2]}"
        kernel = getattr(future, "kernel_seconds", None) if future is not None else None
        obs.metrics.histogram(
            "engine_unit_kernel_seconds",
            "Per-unit kernel seconds, keyed by plan signature",
            plan=label,
        ).observe(kernel if kernel is not None else max(0.0, end_wall - submitted_wall))
        if trace is None:
            return
        span = trace.add_span(
            "unit",
            submitted_wall,
            end_wall,
            parent=parent,
            plan=label,
            workloads=len(unit.workloads),
        )
        hops = getattr(future, "protocol_hops", None) if future is not None else None
        for hop in hops or ():
            attributes = {
                k: v for k, v in hop.items() if k not in ("kind", "start", "end")
            }
            trace.add_span(hop["kind"], hop["start"], hop["end"], parent=span, **attributes)

    # ---------------------------------------------------------------- driver
    def run(self, tickets: List[QueryTicket], rng: np.random.Generator) -> None:
        """Resolve every ticket: replays first, then staged batch execution."""
        engine = self._engine
        engine._c_flushes.inc()
        context = self._obs_flush_begin(tickets)
        trace = context[0] if context is not None else None
        try:
            self._run_flush(tickets, rng, trace)
        finally:
            self._obs_flush_end(context)

    def _run_flush(
        self,
        tickets: List[QueryTicket],
        rng: np.random.Generator,
        trace: Optional["Trace"],
    ) -> None:
        engine = self._engine
        to_execute: List[QueryTicket] = []
        followers: Dict[AnswerKeyT, List[QueryTicket]] = {}
        seen_keys: Dict[AnswerKeyT, QueryTicket] = {}
        #: Replays resolved by this flush — recorded on the trace so a
        #: replay-only flush reads as "all served from cache", not as an
        #: empty tree.
        replays = 0
        now = time.monotonic()
        for ticket in tickets:
            if ticket.done():
                # Cancelled (or otherwise finished) before pickup: nothing
                # to plan, and crucially nothing to charge.
                continue
            if ticket.expired(now):
                # Dropping expired tickets here — before grouping — keeps
                # batch composition (and therefore per-batch RNG child
                # derivation) identical to a run where the expired queries
                # were never submitted.
                if ticket._claim():
                    self._resolve_expired(ticket, trace)
                continue
            if engine.answer_cache is not None:
                # Dedup identical queries *within* this flush: one ticket
                # pays, the rest replay its answer — the same zero-budget
                # post-processing they would get one flush later.  The
                # duplicate check comes first so followers never register
                # a spurious cache miss for an answer the flush will have.
                key = answer_key(ticket.policy, ticket.workload, ticket.epsilon)
                if key in seen_keys:
                    followers.setdefault(key, []).append(ticket)
                    continue
                cached = engine.answer_cache.lookup(
                    ticket.policy, ticket.workload, ticket.epsilon
                )
                if cached is not None:
                    if ticket._claim():
                        self._resolve_replay(
                            ticket, cached.answers, cached.draw_id, cached.shard_draw_ids
                        )
                        replays += 1
                    continue
                seen_keys[key] = ticket
            to_execute.append(ticket)

        self._run_round(to_execute, rng, trace)

        # Resolve duplicates: replay from an answered leader for free.  A
        # refused leader must not drag its duplicates down — their own
        # sessions may have budget — so the first duplicate is promoted to
        # leader and executed; any remainder waits for the next round.
        pending_followers = followers
        while pending_followers:
            next_followers: Dict[AnswerKeyT, List[QueryTicket]] = {}
            retry: List[QueryTicket] = []
            for key, duplicate_tickets in pending_followers.items():
                leader = seen_keys[key]
                if leader.status == ANSWERED:
                    for ticket in duplicate_tickets:
                        if not ticket._claim():
                            continue
                        # The replay IS a cache hit (the leader's answer was
                        # just stored), so the counters must agree with the
                        # replay counter.
                        if engine.answer_cache is not None:
                            engine.answer_cache.count_follower_hit()
                        self._resolve_replay(
                            ticket,
                            leader.answers,
                            leader.draw_id,
                            leader.shard_draw_ids,
                        )
                        replays += 1
                    continue
                promoted, rest = duplicate_tickets[0], duplicate_tickets[1:]
                seen_keys[key] = promoted
                retry.append(promoted)
                if rest:
                    next_followers[key] = rest
            self._run_round(retry, rng, trace)
            pending_followers = next_followers

        if trace is not None and replays:
            trace.attributes["replays"] = replays

    def _run_round(
        self,
        tickets: List[QueryTicket],
        rng: np.random.Generator,
        trace: Optional["Trace"] = None,
    ) -> None:
        """Group tickets and push every group through the four stages."""
        if not tickets:
            return
        engine = self._engine
        timings = dict.fromkeys(STAGES, 0.0)

        # ---- stage 1: plan (lock-free; caches lock internally only briefly)
        started = time.perf_counter()
        wall = time.time() if trace is not None else 0.0
        groups: Dict[tuple, List[QueryTicket]] = {}
        for ticket in tickets:
            key = plan_key(
                ticket.policy,
                ticket.epsilon,
                engine._prefer_data_dependent,
                engine._consistency,
            )
            groups.setdefault(key, []).append(ticket)
        batches: List[PlannedBatch] = []
        for group in groups.values():
            if engine.answer_cache is None:
                # Independent-draw semantics: identical queries stacked into
                # one invocation would yield byte-identical rows — paid
                # twice, worth once.  Split duplicates into separate rounds
                # so each paid query gets its own noise draw.
                rounds = self._split_duplicates(group)
            else:
                rounds = [group]
            for round_tickets in rounds:
                batches.append(self._plan_batch(round_tickets))
        timings["plan"] = time.perf_counter() - started
        if trace is not None:
            trace.add_span("plan", wall, time.time(), batches=len(batches))

        # ---- stage 2: charge (narrowed accountant lock, per ledger append)
        started = time.perf_counter()
        wall = time.time() if trace is not None else 0.0
        for batch in batches:
            self._charge_batch(batch, trace)
        timings["charge"] = time.perf_counter() - started
        if trace is not None:
            trace.add_span("charge", wall, time.time())

        # ---- stage 3: execute (no locks held; optionally on worker threads)
        started = time.perf_counter()
        if trace is not None:
            # The stage span opens before the units run so their spans (and
            # the worker spans shipped back by the process protocol) can
            # nest under it — one coherent tree per flush.
            with trace.span("execute") as execute_span:
                self._execute_batches(batches, rng, trace, execute_span)
        else:
            self._execute_batches(batches, rng, None, None)
        timings["execute"] = time.perf_counter() - started

        # ---- stage 4: resolve (stats/cache locks only)
        # "pre-resolve" sits after every mechanism ran but before any answer
        # reaches a client: a crash here spends noise draws the clients never
        # saw — the durable ledger still counts them (over-count, allowed).
        fault_point("pre-resolve")
        started = time.perf_counter()
        wall = time.time() if trace is not None else 0.0
        for batch in batches:
            self._resolve_batch(batch, trace)
        timings["resolve"] = time.perf_counter() - started
        if trace is not None:
            trace.add_span("resolve", wall, time.time())

        engine._record_stage_timings(timings)

    # ----------------------------------------------------------------- stages
    def _plan_batch(self, tickets: List[QueryTicket]) -> PlannedBatch:
        """Stage 1 for one group: sharded scatter when exact, else one plan."""
        engine = self._engine
        batch = PlannedBatch(tickets=tickets, epsilon=tickets[0].epsilon)
        policy = tickets[0].policy
        try:
            shard_set = engine._shard_set_for(policy)
            if shard_set is not None:
                planned = self._plan_sharded(batch, shard_set)
                if planned:
                    return batch
            batch.entry = engine.plan_cache.plan_for(
                policy,
                batch.epsilon,
                prefer_data_dependent=engine._prefer_data_dependent,
                consistency=engine._consistency,
            )
        except Exception as exc:
            batch.plan_error = f"Planning failed (nothing charged): {exc}"
        return batch

    def _plan_sharded(self, batch: PlannedBatch, shard_set: ShardSet) -> bool:
        """Try the scatter/gather path; ``False`` falls back to unsharded.

        Scattering is exact only when every workload in the batch splits
        component-wise, and per-shard planning must succeed for every touched
        shard — any failure falls back to the single-plan path rather than
        refusing queries the unsharded engine could answer.
        """
        engine = self._engine
        scatters: Dict[int, ShardScatter] = {}
        for ticket in batch.tickets:
            scatter = shard_set.scatter(ticket.workload)
            if scatter is None:
                return False
            scatters[ticket.ticket_id] = scatter
        try:
            touched = {
                piece.shard.index: piece.shard
                for scatter in scatters.values()
                for piece in scatter.pieces
            }
            for shard in touched.values():
                shard.plan_cache.plan_for(
                    shard.policy,
                    batch.epsilon,
                    prefer_data_dependent=engine._prefer_data_dependent,
                    consistency=engine._consistency,
                )
        except Exception:
            return False
        batch.shard_set = shard_set
        batch.scatters = scatters
        return True

    def _charge_batch(
        self, batch: PlannedBatch, trace: Optional["Trace"] = None
    ) -> None:
        """Stage 2: admit or refuse each ticket; record charges for rollback.

        When an audit stream is installed, each ticket's charge attempt runs
        under an ambient audit context carrying the flush's trace id and the
        ticket/client ids — so the accountant's own charge/rollback events
        (emitted two layers down, where no ticket is known) still land in
        the stream fully attributed.
        """
        engine = self._engine
        if batch.plan_error is not None:
            for ticket in batch.tickets:
                if ticket._claim():
                    self._refuse(
                        ticket, batch.plan_error, count_session=True, trace=trace
                    )
            return
        audit = engine._audit
        trace_id = trace.trace_id if trace is not None else None
        for ticket in batch.tickets:
            if audit is not None:
                with audit.context(
                    trace_id=trace_id,
                    ticket_id=ticket.ticket_id,
                    client_id=ticket.client_id,
                ):
                    self._charge_ticket(batch, ticket, trace)
            else:
                self._charge_ticket(batch, ticket, trace)

    def _charge_ticket(
        self, batch: PlannedBatch, ticket: QueryTicket, trace: Optional["Trace"]
    ) -> None:
        """Admit or refuse one ticket (stage 2 body, per ticket)."""
        # Last line of defence for the zero-ε guarantee: a ticket whose
        # deadline passed since pickup, or that a client cancelled mid-plan,
        # stops HERE — strictly before the accountant sees the charge.
        if ticket.expired():
            if ticket._claim():
                self._resolve_expired(ticket, trace)
            return
        if not ticket._claim():
            # A concurrent canceller won the claim: the ticket is (being)
            # resolved as cancelled and must not be charged.
            return
        session = ticket.session
        label = f"query:{ticket.client_id}:{ticket.ticket_id}"
        # Parallel composition only applies when the release is a function
        # of the declared partition alone.  On the unsharded path a
        # data-dependent mechanism (DAWA, consistency projections) reads
        # the whole histogram, so the discount would be unsound.  On the
        # *sharded* path a data-dependent invocation reads its whole
        # shard, so the discount additionally requires every
        # data-dependent shard the ticket touches to lie inside the
        # declared partition.  (The submit-time edge-closure check skips
        # ``⊥`` edges — cells related only through ``⊥`` share a
        # component yet may be split by a valid partition, so "partition
        # ⊇ touched cells" does not imply "partition ⊇ touched shards".)
        partition_error = self._partition_discount_error(batch, ticket, label)
        if partition_error is not None:
            self._refuse(ticket, partition_error, count_session=True, trace=trace)
            return
        # Crash points bracketing the durable append: "pre-charge" crashes
        # lose a charge the client never saw answered (nothing spent, nothing
        # recorded — safe), "post-charge" crashes leave a durably journalled
        # charge for an answer that never shipped (over-count — the allowed
        # direction).  Both are no-ops unless a FaultInjector is installed.
        fault_point("pre-charge")
        try:
            operation = session.charge(label, ticket.epsilon, ticket.partition)
        except PrivacyBudgetError as exc:
            # session.charge already counted the session-level refusal.
            self._refuse(ticket, str(exc), count_session=False, trace=trace)
            return
        fault_point("post-charge")
        batch.admitted.append(ticket)
        batch.charged.append((session, operation))

    def _partition_discount_error(
        self, batch: PlannedBatch, ticket: QueryTicket, label: str
    ) -> Optional[str]:
        """Why this ticket's partition discount would be unsound (or ``None``).

        The discount requires the release to be a function of the declared
        partition alone: a data-*independent* release depends only on the
        cells the workload touches (⊆ partition, checked at submit), while a
        data-dependent one reads the full histogram its invocation sees —
        the whole database unsharded, the whole shard sharded.
        """
        if ticket.partition is None:
            return None
        engine = self._engine
        if not batch.sharded:
            assert batch.entry is not None
            if not batch.entry.plan.algorithm.data_dependent:
                return None
            return (
                f"Query {label!r} claims a partition but the planned mechanism "
                f"({batch.entry.plan.name!r}) is data dependent and reads the "
                "full database; re-submit without a partition, configure the "
                "engine with prefer_data_dependent=False AND consistency=False "
                "(the consistency projection also counts as data dependent), "
                "or use a sharded multi-component policy"
            )
        assert batch.scatters is not None
        for piece in batch.scatters[ticket.ticket_id].pieces:
            shard = piece.shard
            plan = shard.plan_cache.plan_for(  # memoised in the plan stage
                shard.policy,
                batch.epsilon,
                prefer_data_dependent=engine._prefer_data_dependent,
                consistency=engine._consistency,
            )
            if not plan.plan.algorithm.data_dependent:
                continue
            outside = [
                int(cell)
                for cell in shard.cells
                if int(cell) not in ticket.partition
            ]
            if outside:
                return (
                    f"Query {label!r} claims a partition but its shard "
                    f"{shard.index} runs the data-dependent plan "
                    f"({plan.plan.name!r}) over {len(outside)} cells outside "
                    f"the partition (e.g. {outside[:5]}); the release then "
                    "depends on undeclared cells, so the parallel-composition "
                    "discount would be unsound — declare the whole component "
                    "or re-submit without a partition"
                )
        return None

    def _execute_batches(
        self,
        batches: List[PlannedBatch],
        rng: np.random.Generator,
        trace: Optional["Trace"] = None,
        stage_span=None,
    ) -> None:
        """Stage 3: run every batch's mechanism work outside all locks."""
        engine = self._engine
        runnable = [batch for batch in batches if batch.admitted]
        if not runnable:
            return
        backend = engine._execute_backend
        if backend is None:
            for batch in runnable:
                self._execute_one(batch, rng, trace, stage_span)
            return
        self._execute_on_backend(backend, runnable, rng, trace, stage_span)

    def _execute_on_backend(
        self,
        backend,
        runnable: List[PlannedBatch],
        rng: np.random.Generator,
        trace: Optional["Trace"] = None,
        stage_span=None,
    ) -> None:
        """Cut batches into work units and run them on the execute backend.

        The RNG derivation is backend-independent: one child stream per
        runnable batch (in batch order), and per-shard grandchildren (in
        sorted shard order) for sharded batches — so a seeded engine draws
        identical noise whether units run on threads or worker processes.
        """
        child_rngs = self._spawn_children(rng, len(runnable))
        units_by_batch: List[Tuple[PlannedBatch, List[Tuple[ExecuteUnit, Optional[list]]]]] = []
        for batch, child in zip(runnable, child_rngs):
            try:
                units_by_batch.append((batch, self._units_for(batch, child)))
            except Exception as exc:
                batch.execute_error = (
                    f"Batch execution failed (charge rolled back): {exc}"
                )
        total_units = sum(len(units) for _, units in units_by_batch)
        # An adaptive backend routes (and observes) every unit itself — even
        # a lone one, which its cost model sends inline anyway, but *through*
        # the backend so the kernel is measured and the decision counted.
        routes_units = getattr(backend, "routes_units", False)
        if total_units <= 1 and not routes_units:
            # A lone unit gains nothing from the pool but pays its full
            # dispatch cost (pickling + IPC on the process backend): run it
            # here.  The derivation above already fixed the unit's RNG, so
            # draws do not depend on where it executes.
            for batch, units in units_by_batch:
                results = []
                try:
                    for unit, entries in units:
                        unit_wall = time.time() if trace is not None else 0.0
                        vectors, model = run_unit(
                            unit.plan,
                            unit.workloads,
                            unit.database,
                            unit.rng,
                            unit.want_noise,
                        )
                        results.append((entries, vectors, model))
                        self._obs_unit_done(
                            trace, unit, unit_wall, None, parent=stage_span
                        )
                except Exception as exc:
                    batch.execute_error = (
                        f"Batch execution failed (charge rolled back): {exc}"
                    )
                    continue
                self._assemble_batch(batch, results)
            return

        # (batch, unit, gather bookkeeping, future-or-None, submit wall-clock)
        # per work unit.
        submissions: List[
            Tuple[PlannedBatch, ExecuteUnit, Optional[list], object, float]
        ] = []
        # (members, group handle-or-None, submit wall-clock) per fused group,
        # members being (batch, unit, entries) triples in dispatch order.
        group_submissions: List[
            Tuple[List[Tuple[PlannedBatch, ExecuteUnit, Optional[list]]], object, float]
        ] = []

        def submit_unit(
            batch: PlannedBatch, unit: ExecuteUnit, entries: Optional[list]
        ) -> None:
            unit_wall = time.time() if trace is not None else 0.0
            try:
                future = (
                    backend.submit(unit, flush_units=total_units)
                    if routes_units
                    else backend.submit(unit)
                )
            except BrokenExecutor as exc:
                # A crashed worker pool is NOT the engine-close case
                # (BrokenProcessPool subclasses RuntimeError): re-running
                # the unit inline could re-crash the serving process if
                # the unit itself killed the worker.  Roll the batch back
                # with a clear error instead.
                batch.execute_error = (
                    f"Batch execution failed (charge rolled back): "
                    f"execute worker pool broke: {exc}"
                )
                return
            except RuntimeError:
                # engine.close() shut the backend down mid-flush: finish
                # inline so every charge still reaches execute/rollback
                # and every ticket resolves.
                logger.warning(
                    "execute backend closed mid-flush; finishing unit for "
                    "plan %s inline on the flushing thread",
                    unit.plan.key,
                )
                future = None
            except Exception as exc:
                # Serialisation failure (process backend): the batch
                # rolls back exactly like a mechanism failure.
                batch.execute_error = (
                    f"Batch execution failed (charge rolled back): {exc}"
                )
                return
            submissions.append((batch, unit, entries, future, unit_wall))

        fusion_chunks = self._fusion_plan(backend, units_by_batch, total_units)
        if fusion_chunks is None:
            for batch, units in units_by_batch:
                for unit, entries in units:
                    if batch.execute_error is not None:
                        break
                    submit_unit(batch, unit, entries)
        else:
            for members in fusion_chunks:
                members = [m for m in members if m[0].execute_error is None]
                if not members:
                    continue
                if len(members) == 1:
                    submit_unit(*members[0])
                    continue
                group = ExecuteUnitGroup(
                    units=tuple(unit for _, unit, _ in members)
                )
                unit_wall = time.time() if trace is not None else 0.0
                try:
                    handle = (
                        backend.submit_group(group, flush_units=total_units)
                        if routes_units
                        else backend.submit_group(group)
                    )
                except BrokenExecutor as exc:
                    for batch, _, _ in members:
                        batch.execute_error = (
                            f"Batch execution failed (charge rolled back): "
                            f"execute worker pool broke: {exc}"
                        )
                    continue
                except RuntimeError:
                    logger.warning(
                        "execute backend closed mid-flush; finishing fused "
                        "group of %d units inline on the flushing thread",
                        len(members),
                    )
                    handle = None
                except Exception as exc:
                    # Group serialisation failed for *some* member; resubmit
                    # them singly so only the offending unit's batch rolls
                    # back — fusion never widens an error's blast radius.
                    logger.debug(
                        "fused dispatch of %d units failed (%s); "
                        "resubmitting its members per-unit",
                        len(members),
                        exc,
                    )
                    for batch, unit, entries in members:
                        if batch.execute_error is None:
                            submit_unit(batch, unit, entries)
                    continue
                self._engine._c_fused.inc(len(members))
                group_submissions.append((members, handle, unit_wall))

        unit_results: Dict[
            int, List[Tuple[Optional[list], List[np.ndarray], Optional[NoiseModel]]]
        ] = {}
        for batch, unit, entries, future, unit_wall in submissions:
            if batch.execute_error is not None:
                if future is not None:
                    try:
                        future.result()  # drain; result is discarded
                    except Exception:
                        pass
                continue
            try:
                vectors, model = (
                    future.result()
                    if future is not None
                    else run_unit(
                        unit.plan,
                        unit.workloads,
                        unit.database,
                        unit.rng,
                        unit.want_noise,
                    )
                )
            except Exception as exc:
                batch.execute_error = (
                    f"Batch execution failed (charge rolled back): {exc}"
                )
                continue
            unit_results.setdefault(id(batch), []).append((entries, vectors, model))
            self._obs_unit_done(trace, unit, unit_wall, future, parent=stage_span)

        for members, handle, unit_wall in group_submissions:
            if handle is None:
                # Backend closed mid-flush: run the fused group inline —
                # the members' RNG children are already fixed, so the draws
                # match a dispatched run exactly.
                outcomes, kernels = run_unit_group(
                    ExecuteUnitGroup(units=tuple(unit for _, unit, _ in members))
                )
                hops: list = []
            else:
                try:
                    outcomes = handle.result()
                except Exception as exc:
                    for batch, _, _ in members:
                        if batch.execute_error is None:
                            batch.execute_error = (
                                f"Batch execution failed (charge rolled back): {exc}"
                            )
                    continue
                kernels = handle.kernel_seconds_list or [None] * len(members)
                hops = handle.protocol_hops
            for index, ((batch, unit, entries), outcome) in enumerate(
                zip(members, outcomes)
            ):
                if batch.execute_error is not None:
                    continue
                if outcome[0] == "error":
                    batch.execute_error = (
                        f"Batch execution failed (charge rolled back): {outcome[1]}"
                    )
                    continue
                _, vectors, model = outcome
                unit_results.setdefault(id(batch), []).append(
                    (entries, vectors, model)
                )
                # Per-member observability shim: each member reports its own
                # worker-measured kernel; the group's protocol hops (worker
                # span, blob-miss round trips) attach to the first member so
                # the trace shows them once per dispatch.
                shim = SimpleNamespace(
                    kernel_seconds=kernels[index] if index < len(kernels) else None,
                    protocol_hops=hops if index == 0 else None,
                )
                self._obs_unit_done(trace, unit, unit_wall, shim, parent=stage_span)

        for batch in runnable:
            if batch.execute_error is not None:
                continue
            self._assemble_batch(batch, unit_results.get(id(batch), []))

    def _fusion_plan(
        self,
        backend,
        units_by_batch: List[Tuple[PlannedBatch, List[Tuple[ExecuteUnit, Optional[list]]]]],
        total_units: int,
    ) -> Optional[List[List[Tuple[PlannedBatch, ExecuteUnit, Optional[list]]]]]:
        """Cut an oversubscribed flush into fused dispatch chunks (or ``None``).

        Fusion only fires when the flush holds more units than the backend
        has parallel slots (``fusion_slots``, the worker count) — below that
        every unit already gets its own worker and fusing would only
        *serialise* work that could run concurrently.  Units are grouped by
        compatibility — same planner config string (ε, planning flags) and
        same ``want_noise`` — then each group is split into at most
        ``fusion_slots`` balanced contiguous chunks.  RNG children were
        spawned before this pass, so chunking changes dispatch shape only,
        never draws.  Returns ``None`` when fusion is off, unsupported by
        the backend, or not worthwhile; chunks of size 1 are submitted
        per-unit by the caller.
        """
        engine = self._engine
        if not engine._execute_fusion:
            return None
        if not getattr(backend, "fuses_units", False):
            return None
        slots = int(getattr(backend, "fusion_slots", 0) or 0)
        if slots <= 0 or total_units <= slots:
            return None
        flat = [
            (batch, unit, entries)
            for batch, units in units_by_batch
            if batch.execute_error is None
            for unit, entries in units
        ]
        if len(flat) <= 1:
            return None
        groups: Dict[Tuple[str, bool], List[Tuple[PlannedBatch, ExecuteUnit, Optional[list]]]] = {}
        for item in flat:
            unit = item[1]
            groups.setdefault((unit.plan.key[2], unit.want_noise), []).append(item)
        if len(groups) > 1:
            logger.debug(
                "unit fusion: %d units fall into %d incompatible ε/config "
                "groups; fusing within each group only",
                len(flat),
                len(groups),
            )
        chunks: List[List[Tuple[PlannedBatch, ExecuteUnit, Optional[list]]]] = []
        for members in groups.values():
            n_chunks = min(len(members), slots)
            base, extra = divmod(len(members), n_chunks)
            start = 0
            for i in range(n_chunks):
                size = base + (1 if i < extra else 0)
                chunks.append(members[start : start + size])
                start += size
        return chunks

    def _units_for(
        self, batch: PlannedBatch, rng: np.random.Generator
    ) -> List[Tuple[ExecuteUnit, Optional[list]]]:
        """Build the work units of one batch (and their gather bookkeeping).

        Unsharded batches become one unit over the full database, executing
        on ``rng`` itself; sharded batches one unit per touched shard, each
        with its own child stream spawned in sorted shard order (on every
        backend, inline included, so the derivation is backend-independent).
        The second tuple element carries the ``(ticket position, piece
        index)`` entries needed to gather shard results, ``None`` for
        unsharded units.
        """
        engine = self._engine
        # Without an answer cache nothing stores noise metadata, so units
        # skip computing it (the draws themselves never depend on this).
        want_noise = engine.answer_cache is not None
        if not batch.sharded:
            assert batch.entry is not None
            unit = ExecuteUnit(
                plan=batch.entry,
                workloads=[ticket.workload for ticket in batch.admitted],
                database=engine._database,
                rng=rng,
                want_noise=want_noise,
            )
            return [(unit, None)]
        assert batch.scatters is not None
        jobs: Dict[int, List[Tuple[int, int, object]]] = {}
        for position, ticket in enumerate(batch.admitted):
            scatter = batch.scatters[ticket.ticket_id]
            for piece_index, piece in enumerate(scatter.pieces):
                jobs.setdefault(piece.shard.index, []).append(
                    (position, piece_index, piece)
                )
        shard_order = sorted(jobs)
        batch.shard_indices = list(shard_order)
        shard_rngs = self._spawn_children(rng, len(shard_order))
        units: List[Tuple[ExecuteUnit, Optional[list]]] = []
        for shard_index, shard_rng in zip(shard_order, shard_rngs):
            entries = jobs[shard_index]
            shard = entries[0][2].shard  # type: ignore[attr-defined]
            plan = shard.plan_cache.plan_for(  # memoised in the plan stage
                shard.policy,
                batch.epsilon,
                prefer_data_dependent=engine._prefer_data_dependent,
                consistency=engine._consistency,
            )
            unit = ExecuteUnit(
                plan=plan,
                workloads=[piece.workload for _, _, piece in entries],  # type: ignore[attr-defined]
                database=shard.database,
                rng=shard_rng,
                want_noise=want_noise,
            )
            units.append((unit, entries))
        return units

    def _assemble_batch(
        self,
        batch: PlannedBatch,
        results: List[Tuple[Optional[list], List[np.ndarray], Optional[NoiseModel]]],
    ) -> None:
        """Reassemble a batch's unit results into per-ticket answer vectors.

        Alongside the answers, each invocation's :class:`NoiseModel` is cut
        into per-ticket :class:`TicketNoise` slices — batch-mates keep
        referring to their shared factor columns, so the answer cache can
        later rebuild the exact cross-entry covariance of the shared draw.
        """
        if not results:
            batch.execute_error = "Batch execution produced no results"
            return
        if not batch.sharded:
            _, vectors, model = results[0]
            batch.results, batch.invocations = list(vectors), 1
            batch.noise = self._slice_unsharded_noise(batch, model)
            return
        assert batch.scatters is not None
        piece_vectors: Dict[Tuple[int, int], np.ndarray] = {}
        piece_noise: Dict[Tuple[int, int], Tuple[object, Optional[NoiseModel]]] = {}
        for entries, vectors, model in results:
            assert entries is not None
            unit_rows = sum(
                piece.workload.num_queries  # type: ignore[attr-defined]
                for _, _, piece in entries
            )
            if model is not None and model.num_rows != unit_rows:
                # Mis-sized metadata is a mechanism bug, but metadata is
                # advisory: degrade this unit to the proxy model rather
                # than slicing rows that belong to a different layout.
                logger.warning(
                    "noise model reports %d rows but its sharded unit has %d; "
                    "degrading the unit to the proxy noise model",
                    model.num_rows,
                    unit_rows,
                )
                model = None
            start = 0
            for (position, piece_index, piece), vector in zip(entries, vectors):
                piece_vectors[(position, piece_index)] = np.asarray(vector)
                rows = piece.workload.num_queries  # type: ignore[attr-defined]
                sliced = (
                    model.rows(slice(start, start + rows))
                    if model is not None
                    else None
                )
                piece_noise[(position, piece_index)] = (piece, sliced)
                start += rows
        gathered: List[np.ndarray] = []
        noise: List[Optional[TicketNoise]] = []
        for position, ticket in enumerate(batch.admitted):
            scatter = batch.scatters[ticket.ticket_id]
            vectors = [
                piece_vectors[(position, piece_index)]
                for piece_index in range(len(scatter.pieces))
            ]
            gathered.append(scatter.gather(vectors))
            noise.append(
                self._gather_shard_noise(ticket.workload.num_queries, scatter, position, piece_noise)
            )
        batch.results, batch.invocations = gathered, len(results)
        batch.noise = noise

    @staticmethod
    def _slice_unsharded_noise(
        batch: PlannedBatch, model: Optional[NoiseModel]
    ) -> Optional[List[Optional[TicketNoise]]]:
        """Cut one unsharded invocation's model into per-ticket slices."""
        if model is None:
            return None
        total = sum(ticket.workload.num_queries for ticket in batch.admitted)
        if model.num_rows != total:
            # A mechanism that mis-sizes its metadata is a bug, but metadata
            # is advisory: degrade to the proxy model, never refuse answers.
            logger.warning(
                "noise model reports %d rows but the batch has %d; degrading "
                "the batch to the proxy noise model",
                model.num_rows,
                total,
            )
            return None
        noise: List[Optional[TicketNoise]] = []
        start = 0
        for ticket in batch.admitted:
            rows = ticket.workload.num_queries
            sliced = model.rows(slice(start, start + rows))
            noise.append(TicketNoise(stds=sliced.stds, basis=sliced.basis))
            start += rows
        return noise

    @staticmethod
    def _gather_shard_noise(
        num_queries: int,
        scatter,
        position: int,
        piece_noise: Dict[Tuple[int, int], Tuple[object, Optional[NoiseModel]]],
    ) -> Optional[TicketNoise]:
        """Gather per-piece noise slices into one full-row ticket model.

        Every touched piece must carry a model (a single shard without one
        leaves the correlation structure unknowable, so the whole ticket
        degrades to the proxy).  Rows no piece covers are all-zero queries:
        exact zeros with zero noise.
        """
        stds = np.zeros(num_queries, dtype=np.float64)
        shard_bases: Dict[int, sp.csr_matrix] = {}
        bases_complete = True
        for piece_index, piece in enumerate(scatter.pieces):
            stored = piece_noise.get((position, piece_index))
            if stored is None:
                return None
            _, sliced = stored
            if sliced is None:
                return None
            stds[piece.rows] = sliced.stds
            if sliced.basis is None:
                bases_complete = False
                continue
            # Expand the piece's basis rows into full-ticket row space.
            selector = sp.csr_matrix(
                (
                    np.ones(len(piece.rows)),
                    (np.asarray(piece.rows, dtype=np.intp), np.arange(len(piece.rows))),
                ),
                shape=(num_queries, len(piece.rows)),
            )
            shard_bases[piece.shard.index] = sp.csr_matrix(selector @ sliced.basis)
        # A factor model must describe the WHOLE vector or none of it: with
        # any shard's basis missing, keep the honest diagonal stds only.
        return TicketNoise(
            stds=stds, shard_bases=shard_bases if bases_complete and shard_bases else None
        )

    def _execute_one(
        self,
        batch: PlannedBatch,
        rng: np.random.Generator,
        trace: Optional["Trace"] = None,
        stage_span=None,
    ) -> None:
        """Inline execute: the backends' unit/gather code, run sequentially.

        One code path for every backend — the same :meth:`_units_for` cuts
        the batch, the same :func:`run_unit` answers each unit, the same
        :meth:`_assemble_batch` gathers — so inline and pooled engines can
        never diverge in scatter/gather semantics.
        """
        try:
            units = self._units_for(batch, rng)
            results = []
            for unit, entries in units:
                unit_wall = time.time() if trace is not None else 0.0
                vectors, model = run_unit(
                    unit.plan,
                    unit.workloads,
                    unit.database,
                    unit.rng,
                    unit.want_noise,
                )
                results.append((entries, vectors, model))
                self._obs_unit_done(trace, unit, unit_wall, None, parent=stage_span)
            self._assemble_batch(batch, results)
        except Exception as exc:
            batch.execute_error = (
                f"Batch execution failed (charge rolled back): {exc}"
            )

    def _resolve_batch(
        self, batch: PlannedBatch, trace: Optional["Trace"] = None
    ) -> None:
        """Stage 4: rollbacks for failures, then answers, counters and caches."""
        engine = self._engine
        if not batch.admitted:
            return
        if batch.execute_error is not None or batch.results is None:
            # Nothing was released, so the charges must not stand: roll back
            # every reservation of this batch and resolve its tickets instead
            # of stranding them (or the rest of the flush) behind the raise.
            error = batch.execute_error or "Batch execution produced no results"
            audit = engine._audit
            trace_id = trace.trace_id if trace is not None else None
            # batch.charged is index-aligned with batch.admitted (both are
            # appended together at admission), so the zip attributes each
            # rollback's audit event to the right ticket.
            for (session, operation), ticket in zip(batch.charged, batch.admitted):
                if audit is not None:
                    with audit.context(
                        trace_id=trace_id,
                        ticket_id=ticket.ticket_id,
                        client_id=ticket.client_id,
                    ):
                        session.accountant.rollback(operation)
                else:
                    session.accountant.rollback(operation)
            for ticket in batch.admitted:
                self._refuse(ticket, error, count_session=True, trace=trace)
            return
        engine._c_batches.inc()
        if batch.invocations:
            engine._c_invocations.inc(batch.invocations)
        if batch.sharded:
            engine._c_sharded_batches.inc()
        if batch.sharded and batch.shard_indices:
            # One draw id per per-shard mechanism invocation: batch-mates
            # touching the same shard share that shard's id, and a ticket's
            # gathered answer records exactly which draws it mixes.
            shard_ids = {
                index: engine._next_draw_id() for index in batch.shard_indices
            }
            for position, (ticket, vector) in enumerate(
                zip(batch.admitted, batch.results)
            ):
                assert batch.scatters is not None
                mapping = {
                    piece.shard.index: shard_ids[piece.shard.index]
                    for piece in batch.scatters[ticket.ticket_id].pieces
                }
                single = next(iter(mapping.values())) if len(mapping) == 1 else None
                ticket_noise = batch.noise[position] if batch.noise else None
                noise_stds = ticket_noise.stds if ticket_noise is not None else None
                noise_bases = None
                if ticket_noise is not None and ticket_noise.shard_bases:
                    # Re-key the per-shard factor bases by the draw ids just
                    # allocated — the labels the answer cache correlates on.
                    noise_bases = {
                        shard_ids[shard_index]: basis
                        for shard_index, basis in ticket_noise.shard_bases.items()
                    }
                self._resolve_answer(
                    ticket,
                    vector,
                    single,
                    shard_draw_ids=mapping,
                    noise_stds=noise_stds,
                    noise_bases=noise_bases,
                )
            return
        draw_id = engine._next_draw_id()
        for position, (ticket, vector) in enumerate(zip(batch.admitted, batch.results)):
            ticket_noise = batch.noise[position] if batch.noise else None
            noise_stds = ticket_noise.stds if ticket_noise is not None else None
            noise_bases = (
                {draw_id: ticket_noise.basis}
                if ticket_noise is not None and ticket_noise.basis is not None
                else None
            )
            self._resolve_answer(
                ticket, vector, draw_id, noise_stds=noise_stds, noise_bases=noise_bases
            )

    # ------------------------------------------------------------ resolutions
    def _resolve_replay(
        self,
        ticket: QueryTicket,
        answers: np.ndarray,
        draw_id: Optional[int],
        shard_draw_ids: Optional[Dict[int, int]] = None,
    ) -> None:
        """Resolve a ticket from an already-paid-for answer vector (zero ε)."""
        engine = self._engine
        ticket.answers = np.asarray(answers, dtype=np.float64).copy()
        ticket.status = ANSWERED
        ticket.from_cache = True
        ticket.draw_id = draw_id
        ticket.shard_draw_ids = dict(shard_draw_ids) if shard_draw_ids else None
        with ticket.session.accountant.lock:
            ticket.session.cache_replays += 1
            ticket.session.queries_answered += 1
        engine._c_replays.inc()
        engine._c_answered.inc()
        ticket._notify_resolved()

    def _resolve_answer(
        self,
        ticket: QueryTicket,
        vector: np.ndarray,
        draw_id: Optional[int],
        shard_draw_ids: Optional[Dict[int, int]] = None,
        noise_stds: Optional[np.ndarray] = None,
        noise_bases: Optional[Dict[int, sp.csr_matrix]] = None,
    ) -> None:
        engine = self._engine
        ticket.answers = np.asarray(vector, dtype=np.float64)
        ticket.status = ANSWERED
        ticket.draw_id = draw_id
        ticket.shard_draw_ids = dict(shard_draw_ids) if shard_draw_ids else None
        with ticket.session.accountant.lock:
            ticket.session.queries_answered += 1
        engine._c_answered.inc()
        if engine.answer_cache is not None:
            engine.answer_cache.store(
                ticket.policy,
                ticket.workload,
                ticket.epsilon,
                ticket.answers,
                draw_id=draw_id,
                shard_draw_ids=ticket.shard_draw_ids,
                noise_stds=noise_stds,
                noise_bases=noise_bases,
            )
        ticket._notify_resolved()

    def _resolve_expired(
        self, ticket: QueryTicket, trace: Optional["Trace"] = None
    ) -> None:
        """Resolve an expired ticket: zero ε spent, waiters woken, counted.

        The caller must hold the ticket's claim.  Runs strictly before the
        charge stage, so neither the session budget nor the durable ledger
        ever sees the query — the privacy win that makes deadlines more
        than a latency feature.
        """
        engine = self._engine
        ticket.status = EXPIRED
        ticket.error = (
            f"Ticket {ticket.ticket_id} (client {ticket.client_id!r}) "
            "expired before its charge stage; zero epsilon was spent"
        )
        engine._c_expired.inc()
        audit = engine._audit
        if audit is not None:
            audit.emit(
                "expired",
                trace_id=trace.trace_id if trace is not None else None,
                ticket_id=ticket.ticket_id,
                client_id=ticket.client_id,
                epsilon=ticket.epsilon,
            )
        ticket._notify_resolved()

    def _refuse(
        self,
        ticket: QueryTicket,
        error: str,
        count_session: bool,
        trace: Optional["Trace"] = None,
    ) -> None:
        engine = self._engine
        ticket.status = REFUSED
        ticket.error = error
        if count_session:
            with ticket.session.accountant.lock:
                ticket.session.queries_refused += 1
        engine._c_refused.inc()
        audit = engine._audit
        if audit is not None:
            # Explicit ids are redundant under _charge_batch's ambient
            # context (emit drops the None trace_id rather than masking an
            # ambient one) but make refusals from other paths — plan
            # failures, execute rollbacks — equally attributable.
            audit.emit(
                "refusal",
                trace_id=trace.trace_id if trace is not None else None,
                ticket_id=ticket.ticket_id,
                client_id=ticket.client_id,
                epsilon=ticket.epsilon,
                error=error[:200],
            )
        ticket._notify_resolved()

    # ----------------------------------------------------------------- helper
    @staticmethod
    def _spawn_children(
        rng: np.random.Generator, count: int
    ) -> List[np.random.Generator]:
        """Derive ``count`` independent child generators from ``rng``.

        ``Generator.spawn`` needs numpy ≥ 1.25 (AttributeError below that)
        and a seed sequence (generators built from a bare bit-generator
        state lack one), so fall back to seeding children from the parent's
        stream.
        """
        try:
            return list(rng.spawn(count))
        except (AttributeError, TypeError, ValueError):
            return [
                np.random.default_rng(int(rng.integers(0, 2**63)))
                for _ in range(count)
            ]

    @staticmethod
    def _split_duplicates(batch: List[QueryTicket]) -> List[List[QueryTicket]]:
        """Partition a batch into rounds with no duplicate query per round."""
        rounds: List[List[QueryTicket]] = []
        occurrence: Dict[AnswerKeyT, int] = {}
        for ticket in batch:
            key = answer_key(ticket.policy, ticket.workload, ticket.epsilon)
            index = occurrence.get(key, 0)
            occurrence[key] = index + 1
            while len(rounds) <= index:
                rounds.append([])
            rounds[index].append(ticket)
        return rounds
