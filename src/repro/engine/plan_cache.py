"""Plan cache: memoised policy planning for the serving engine.

Planning a Blowfish query is expensive: it derives the policy transform
``P_G`` (and lazily factorises its Gram matrix), detects tree / θ-threshold /
grid structure, builds spanner approximations, and assembles strategy
matrices.  None of that depends on the data or on the noise, so a serving
engine should do it **once** per ``(domain, policy, planner-config)`` and
reuse the result for every subsequent query — which is exactly what
:class:`PlanCache` provides, with LRU eviction and hit/miss counters.

Repeated queries also skip the sparse product ``W_G = W' P_G``: the cached
mechanisms key their internal workload caches by content signature, so an
equal-but-distinct :class:`~repro.core.Workload` object (what a serving
engine sees on every client request) hits.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..blowfish.planner import Plan, plan_mechanism
from ..policy.graph import PolicyGraph
from ..policy.transform import PolicyTransform
from .signature import PlanKey, plan_key


@dataclass
class CachedPlan:
    """One memoised planning result: the plan plus its shared transform."""

    key: PlanKey
    policy: PolicyGraph
    plan: Plan
    transform: PolicyTransform


@dataclass
class PlanCacheStats:
    """Hit/miss counters of a :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """LRU cache of :class:`CachedPlan` entries, safe for concurrent readers.

    Parameters
    ----------
    maxsize:
        Maximum number of distinct ``(domain, policy, config)`` entries kept.
        The per-workload sub-caches ride along with their entry.
    """

    def __init__(self, maxsize: int = 64) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: "OrderedDict[PlanKey, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def plan_for(
        self,
        policy: PolicyGraph,
        epsilon: float,
        prefer_data_dependent: bool = True,
        consistency: bool = True,
    ) -> CachedPlan:
        """Return the cached plan for ``policy``, planning on first use.

        On a miss this runs :func:`repro.blowfish.plan_mechanism` with a
        freshly built :class:`PolicyTransform` that is *shared* with the
        constructed mechanism, so the mechanism's later answers reuse the
        transform's factorisation instead of re-deriving it.
        """
        key = plan_key(policy, epsilon, prefer_data_dependent, consistency)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return entry
            self.stats.misses += 1
        # Plan outside the lock: planning can be slow and must not serialise
        # unrelated lookups.  A racing thread may plan the same key twice; the
        # second insert below simply wins, which is harmless (plans are
        # interchangeable).
        transform = PolicyTransform(policy)
        plan = plan_mechanism(
            policy,
            epsilon,
            prefer_data_dependent=prefer_data_dependent,
            consistency=consistency,
            transform=transform,
        )
        entry = CachedPlan(key=key, policy=policy, plan=plan, transform=transform)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def peek(self, key: PlanKey) -> Optional[CachedPlan]:
        """Return the entry under ``key`` without planning or touching LRU order."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()
