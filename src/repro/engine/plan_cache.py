"""Plan cache: memoised policy planning for the serving engine.

Planning a Blowfish query is expensive: it derives the policy transform
``P_G`` (and lazily factorises its Gram matrix), detects tree / θ-threshold /
grid structure, builds spanner approximations, and assembles strategy
matrices.  None of that depends on the data or on the noise, so a serving
engine should do it **once** per ``(domain, policy, planner-config)`` and
reuse the result for every subsequent query — which is exactly what
:class:`PlanCache` provides, with LRU eviction and hit/miss counters.

Repeated queries also skip the sparse product ``W_G = W' P_G``: the cached
mechanisms key their internal workload caches by content signature, so an
equal-but-distinct :class:`~repro.core.Workload` object (what a serving
engine sees on every client request) hits.

Plans are **serialisable**: every artefact inside a :class:`CachedPlan`
(transform, spanner, strategy, mechanism) pickles, which powers two engine
features — shipping plans to worker processes (the process-parallel execute
backend of :mod:`repro.engine.parallel`) and **persistence**
(:meth:`PlanCache.save` / :meth:`PlanCache.load`), so a restarted server
skips cold planning entirely.  Persisted stores are versioned: the file
carries a format version, and entries are keyed by content signatures
(domain, policy, planner config), so a store saved under one workload/policy
mix simply never hits for another — stale entries are inert, not wrong.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..blowfish.planner import Plan, plan_mechanism
from ..exceptions import MechanismError, PlanStoreError
from ..policy.graph import PolicyGraph
from ..policy.transform import PolicyTransform
from .signature import PlanKey, plan_key

#: On-disk format version of persisted plan stores.  Bump on any change to
#: the pickled layout that a loader cannot transparently absorb.
#: Version 2 (PR 7): transforms/mechanisms persist factorisation *digests*
#: instead of private factorisation slots and re-resolve artifacts through
#: the process-wide store on load.
PLAN_STORE_FORMAT = 2

#: Format versions :func:`read_plan_store` still absorbs.  Version-1 stores
#: carry pre-store pickles whose ``__setstate__`` drops the legacy private
#: slots, so they load cleanly and re-factorise (at most once per digest)
#: through the store.
PLAN_STORE_COMPAT_FORMATS = frozenset({1, PLAN_STORE_FORMAT})


@dataclass
class CachedPlan:
    """One memoised planning result: the plan plus its shared transform.

    The whole bundle pickles (the transform drops its lazy Gram factorisation
    and re-derives it on first use), so cached plans can cross process
    boundaries and process restarts.
    """

    key: PlanKey
    policy: PolicyGraph
    plan: Plan
    transform: PolicyTransform


@dataclass
class PlanCacheStats:
    """Hit/miss counters of a :class:`PlanCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PlanCache:
    """LRU cache of :class:`CachedPlan` entries, safe for concurrent readers.

    Parameters
    ----------
    maxsize:
        Maximum number of distinct ``(domain, policy, config)`` entries kept.
        The per-workload sub-caches ride along with their entry.
    metrics:
        Optional :class:`~repro.engine.observability.MetricsRegistry`; when
        given, lookups additionally bump ``engine_plan_cache_lookups_total``
        counters (labelled ``result="hit"``/``"miss"``).  The cache's own
        :attr:`stats` counts either way.  The registry reference never
        pickles (see :meth:`__getstate__`) — an unpickled cache is silent.
    """

    def __init__(self, maxsize: int = 64, metrics=None) -> None:
        if maxsize <= 0:
            raise ValueError(f"maxsize must be positive, got {maxsize}")
        self._maxsize = int(maxsize)
        self._entries: "OrderedDict[PlanKey, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()
        self._bind_metrics(metrics)

    def _bind_metrics(self, metrics) -> None:
        """Pre-bind the registry counters (or None-out when unmetered)."""
        if metrics is None:
            self._m_hits = self._m_misses = None
        else:
            self._m_hits = metrics.counter(
                "engine_plan_cache_lookups_total",
                "Plan-cache lookups by result",
                result="hit",
            )
            self._m_misses = metrics.counter(
                "engine_plan_cache_lookups_total",
                "Plan-cache lookups by result",
                result="miss",
            )

    def __len__(self) -> int:
        return len(self._entries)

    def plan_for(
        self,
        policy: PolicyGraph,
        epsilon: float,
        prefer_data_dependent: bool = True,
        consistency: bool = True,
    ) -> CachedPlan:
        """Return the cached plan for ``policy``, planning on first use.

        On a miss this runs :func:`repro.blowfish.plan_mechanism` with a
        freshly built :class:`PolicyTransform` that is *shared* with the
        constructed mechanism, so the mechanism's later answers reuse the
        transform's factorisation instead of re-deriving it.
        """
        key = plan_key(policy, epsilon, prefer_data_dependent, consistency)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                if self._m_hits is not None:
                    self._m_hits.inc()
                return entry
            self.stats.misses += 1
            if self._m_misses is not None:
                self._m_misses.inc()
        # Plan outside the lock: planning can be slow and must not serialise
        # unrelated lookups.  A racing thread may plan the same key twice; the
        # second insert below simply wins, which is harmless (plans are
        # interchangeable).
        transform = PolicyTransform(policy)
        plan = plan_mechanism(
            policy,
            epsilon,
            prefer_data_dependent=prefer_data_dependent,
            consistency=consistency,
            transform=transform,
        )
        entry = CachedPlan(key=key, policy=policy, plan=plan, transform=transform)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return entry

    def peek(self, key: PlanKey) -> Optional[CachedPlan]:
        """Return the entry under ``key`` without planning or touching LRU order."""
        with self._lock:
            return self._entries.get(key)

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------ persistence
    def export_entries(self) -> List[Tuple[PlanKey, CachedPlan]]:
        """Snapshot the entries in LRU order (oldest first), for persistence."""
        with self._lock:
            return list(self._entries.items())

    def absorb(self, entries: List[Tuple[PlanKey, CachedPlan]]) -> int:
        """Insert pre-planned entries, evicting LRU-style past ``maxsize``.

        Existing entries under the same key are left in place (they are
        interchangeable — plans are deterministic functions of the key).
        Returns the number of inserted entries that actually *survived*:
        absorbing a store larger than ``maxsize`` reports only what the
        cache can serve warm, not what it momentarily held.
        """
        inserted: List[PlanKey] = []
        with self._lock:
            for key, entry in entries:
                if key in self._entries:
                    continue
                self._entries[key] = entry
                self._entries.move_to_end(key)
                inserted.append(key)
                while len(self._entries) > self._maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
            return sum(1 for key in inserted if key in self._entries)

    def save(self, path: str) -> int:
        """Persist every cached plan to ``path``; returns the entry count.

        The write is atomic (temp file + rename), so a crashed save never
        leaves a truncated store behind.  Counters are not persisted — a
        fresh process starts its hit/miss statistics from zero.
        """
        entries = self.export_entries()
        payload = {"format": PLAN_STORE_FORMAT, "entries": entries}
        write_plan_store(path, payload)
        return len(entries)

    def load(self, path: str) -> int:
        """Load a persisted store into this cache; returns entries absorbed.

        Raises :class:`~repro.exceptions.MechanismError` on a missing file or
        a format-version mismatch (a store from an incompatible library
        version must fail loudly, not plan subtly differently).
        """
        payload = read_plan_store(path)
        return self.absorb(payload["entries"])

    # -------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        """Pickle support: entries and counters travel; the lock and the
        metrics binding (process-local registry objects) do not."""
        with self._lock:
            return {
                "_maxsize": self._maxsize,
                "_entries": OrderedDict(self._entries),
                "stats": PlanCacheStats(
                    hits=self.stats.hits,
                    misses=self.stats.misses,
                    evictions=self.stats.evictions,
                ),
            }

    def __setstate__(self, state: dict) -> None:
        self._maxsize = state["_maxsize"]
        self._entries = OrderedDict(state["_entries"])
        self.stats = state["stats"]
        self._lock = threading.Lock()
        self._bind_metrics(None)


# ---------------------------------------------------------------------------
# Shared on-disk helpers (also used by the engine's combined plan store,
# which persists the per-shard caches alongside the main one).
# ---------------------------------------------------------------------------
def write_plan_store(path: str, payload: dict) -> None:
    """Atomically pickle ``payload`` to ``path`` (temp file + rename).

    The temp name is unique per process, thread and call, so concurrent
    saves to the same path (periodic checkpointers, racing admin calls)
    never truncate each other mid-write — last rename wins atomically.
    """
    directory = os.path.dirname(os.path.abspath(path))
    temp_path = os.path.join(
        directory,
        f".{os.path.basename(path)}.tmp."
        f"{os.getpid()}.{threading.get_ident()}.{os.urandom(4).hex()}",
    )
    try:
        with open(temp_path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp_path, path)
    finally:
        if os.path.exists(temp_path):  # pragma: no cover - crash cleanup
            os.unlink(temp_path)


def read_plan_store(path: str) -> dict:
    """Read a persisted plan store, validating its format version.

    .. warning::
       Stores are pickle files: loading one executes whatever it encodes,
       *before* any format check can run.  Only load stores this engine
       deployment wrote itself (treat the store path like the database
       file, not like client input).
    """
    if not os.path.exists(path):
        raise MechanismError(f"Plan store {path!r} does not exist")
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (
        pickle.UnpicklingError,
        EOFError,
        AttributeError,
        ImportError,
        # A truncated or garbled pickle can also surface as these (e.g.
        # "pickle data was truncated" is a ValueError, an index past a
        # cut-off memo table an IndexError, a clobbered container a
        # KeyError/TypeError) — a corrupt store must never escape as a raw
        # unpickling exception.
        ValueError,
        IndexError,
        KeyError,
        TypeError,
    ) as exc:
        raise PlanStoreError(
            f"Plan store {path!r} is corrupt (truncated or garbled pickle): "
            f"{exc}",
            path=path,
        ) from exc
    if (
        not isinstance(payload, dict)
        or payload.get("format") not in PLAN_STORE_COMPAT_FORMATS
    ):
        found = payload.get("format") if isinstance(payload, dict) else None
        raise PlanStoreError(
            f"Plan store {path!r} has format version {found!r}; this library "
            f"reads versions {sorted(PLAN_STORE_COMPAT_FORMATS)} — re-save "
            "the store with the current version instead of mixing formats",
            path=path,
            format_version=found,
        )
    if "entries" not in payload or not isinstance(payload["entries"], list):
        raise PlanStoreError(
            f"Plan store {path!r} is corrupt: format "
            f"{payload.get('format')!r} payload carries no entry list",
            path=path,
            format_version=payload.get("format"),
        )
    return payload
