"""repro — policy-aware differentially private algorithms (Blowfish privacy).

A faithful, from-scratch reproduction of

    Samuel Haney, Ashwin Machanavajjhala, Bolin Ding.
    "Design of Policy-Aware Differentially Private Algorithms", VLDB 2015.

The package is organised as follows:

``repro.core``
    Domains, histogram databases, workloads (identity, cumulative, range
    queries), sensitivity and error metrics.
``repro.policy``
    Blowfish policy graphs, the transform ``P_G`` (Section 4.4), tree
    transforms (Theorem 4.3), spanning-tree approximations (Lemma 4.5) and
    policy metrics.
``repro.mechanisms``
    Standard differentially private mechanisms used as substrates and
    baselines: Laplace, geometric, exponential, matrix mechanism, hierarchical,
    Privelet (wavelet), DAWA.
``repro.postprocess``
    Consistency and least-squares post-processing.
``repro.blowfish``
    The paper's policy-aware mechanisms: policy matrix mechanisms
    (Theorem 4.1), tree-transform mechanisms with data-dependent plug-ins
    (Theorem 4.3, Section 5.4), the Section 5 strategies for histograms and
    range queries, and the policy-aware planner.
``repro.bounds``
    Analytic error bounds (Figure 3) and the Li–Miklau SVD lower bound
    transferred to Blowfish (Appendix A, Figure 10).
``repro.data``
    Synthetic dataset catalogue calibrated to Table 1.
``repro.experiments``
    Runners that regenerate every table and figure of the paper.
``repro.engine``
    A budget-managed, plan-cached private query **serving engine** layered on
    top of the reproduction: :class:`~repro.engine.PrivateQueryEngine` holds
    the private database, opens per-client sessions whose epsilon allotments
    are reserved from a global :class:`~repro.accounting.PrivacyAccountant`,
    memoises policy planning (``P_G`` construction, spanner approximations,
    strategy factorisations) in an LRU plan cache, answers compatible pending
    queries with one vectorised mechanism invocation, and replays re-asked
    queries from a noisy-answer cache at zero additional budget — optionally
    least-squares-consolidated across all paid-for measurements.
"""

from __future__ import annotations

import logging

from . import core, policy
from .core import (
    Database,
    Domain,
    RangeQuery,
    Workload,
    cumulative_workload,
    identity_workload,
    random_range_queries_workload,
)
from .policy import (
    BOTTOM,
    PolicyGraph,
    PolicyTransform,
    TreeTransform,
    grid_policy,
    line_policy,
    threshold_policy,
)
from .engine import ClientSession, PrivateQueryEngine

# Library logging etiquette: degradation events (backend fallbacks, noise
# model downgrades, blob-miss recoveries) are emitted on module loggers under
# the "repro" namespace at WARNING/INFO; attach handlers to opt in.
logging.getLogger("repro").addHandler(logging.NullHandler())

__version__ = "1.1.0"

__all__ = [
    "BOTTOM",
    "ClientSession",
    "Database",
    "Domain",
    "PolicyGraph",
    "PolicyTransform",
    "PrivateQueryEngine",
    "RangeQuery",
    "TreeTransform",
    "Workload",
    "core",
    "cumulative_workload",
    "grid_policy",
    "identity_workload",
    "line_policy",
    "policy",
    "random_range_queries_workload",
    "threshold_policy",
    "__version__",
]
